// RIPPER (Cohen 1995): the paper's primary baseline, reimplemented from the
// published algorithm description.
//
// For the binary rare-class setting RIPPER learns rules for the minority
// (target) class with "not target" as the default. Each rule is grown on a
// random 2/3 of the remaining data (maximizing FOIL information gain) and
// immediately pruned on the other 1/3 (maximizing (p - n) / (p + n));
// rule addition stops via the 64-bit MDL window, and k global optimization
// passes (k = 2, i.e. RIPPER2) revise or replace each rule. See DESIGN.md
// for the documented simplifications relative to Cohen's C implementation.

#ifndef PNR_RIPPER_RIPPER_H_
#define PNR_RIPPER_RIPPER_H_

#include <cstdint>
#include <string>

#include <vector>

#include "eval/classifier.h"
#include "rules/compiled_rule_set.h"
#include "rules/rule_set.h"

namespace pnr {

/// RIPPER parameters (defaults follow the recommended settings the paper
/// says it used for the comparison).
struct RipperConfig {
  /// Number of global optimization passes (2 == RIPPER2, Cohen's default).
  size_t optimization_passes = 2;

  /// Fraction of the remaining data used to grow a rule; the rest prunes it.
  double grow_fraction = 2.0 / 3.0;

  /// MDL stop window in bits.
  double mdl_window_bits = 64.0;

  /// A pruned rule whose error rate on the prune set exceeds this is
  /// rejected and rule addition stops.
  double max_prune_error_rate = 0.5;

  /// Seed for the grow/prune splits.
  uint64_t seed = 42;

  /// Safety cap on the number of rules.
  size_t max_rules = 256;

  /// Threads used by the condition-search engine during rule growth:
  /// 1 = serial, 0 = hardware concurrency. Any value produces bit-identical
  /// models (deterministic parallel reduction).
  size_t num_threads = 1;

  Status Validate() const;
};

/// A trained RIPPER model: an ordered rule list for the target class with an
/// implicit negative default.
class RipperClassifier : public BinaryClassifier {
 public:
  explicit RipperClassifier(RuleSet rules);

  /// Laplace-smoothed training precision of the first matching rule;
  /// 0 when no rule matches (default class).
  double Score(const Dataset& dataset, RowId row) const override;

  /// Compiled fast path: block-wise first match through the matcher
  /// program, then a per-rule score table lookup. Bit-identical to Score.
  void ScoreBatch(const Dataset& dataset, const RowId* rows, size_t count,
                  double* out,
                  const BatchScoreOptions& options = {}) const override;

  std::string Describe(const Schema& schema) const override;

  const RuleSet& rules() const { return rules_; }

 private:
  RuleSet rules_;
  CompiledRuleSet compiled_;          ///< matcher program for rules_
  std::vector<double> rule_scores_;   ///< per-rule Laplace precision
};

/// Trains RIPPER models.
class RipperLearner {
 public:
  explicit RipperLearner(RipperConfig config = {});

  const RipperConfig& config() const { return config_; }

  /// Learns a binary model for `target` from all rows of `dataset`.
  StatusOr<RipperClassifier> Train(const Dataset& dataset,
                                   CategoryId target) const;

  /// Learns from an explicit subset of rows.
  StatusOr<RipperClassifier> TrainOnRows(const Dataset& dataset,
                                         const RowSubset& rows,
                                         CategoryId target) const;

 private:
  RipperConfig config_;
};

}  // namespace pnr

#endif  // PNR_RIPPER_RIPPER_H_
