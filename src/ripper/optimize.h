// RIPPER's global optimization pass (the "k" in RIPPERk).

#ifndef PNR_RIPPER_OPTIMIZE_H_
#define PNR_RIPPER_OPTIMIZE_H_

#include "common/rng.h"
#include "induction/condition_search.h"
#include "ripper/ripper.h"

namespace pnr {

/// One optimization pass: for every rule, construct a *replacement* (grown
/// and pruned from scratch) and a *revision* (the rule grown further, then
/// pruned), and keep whichever of {original, replacement, revision}
/// minimizes the description length of the whole rule set. Afterwards any
/// positives left uncovered are covered by additional IREP* rules, and rules
/// whose deletion reduces the DL are removed.
void OptimizeRuleSet(ConditionSearchEngine& engine, const RowSubset& rows,
                     CategoryId target, const RipperConfig& config,
                     double possible_conditions, Rng* rng, RuleSet* rules);

/// Convenience overload: builds a transient engine (config.num_threads).
void OptimizeRuleSet(const Dataset& dataset, const RowSubset& rows,
                     CategoryId target, const RipperConfig& config,
                     double possible_conditions, Rng* rng, RuleSet* rules);

/// IREP* covering loop: appends rules to `rules` learned from `remaining`
/// until the MDL window or the prune-error gate stops it. Exposed so the
/// optimization pass can cover residual positives.
void CoverPositives(ConditionSearchEngine& engine, const RowSubset& all_rows,
                    const RowSubset& remaining, CategoryId target,
                    const RipperConfig& config, double possible_conditions,
                    Rng* rng, RuleSet* rules);

/// Convenience overload: builds a transient engine (config.num_threads).
void CoverPositives(const Dataset& dataset, const RowSubset& all_rows,
                    const RowSubset& remaining, CategoryId target,
                    const RipperConfig& config, double possible_conditions,
                    Rng* rng, RuleSet* rules);

/// Removes (greedily, scanning from the last rule backwards) every rule
/// whose deletion reduces the rule set's description length.
void DeleteHarmfulRules(const Dataset& dataset, const RowSubset& rows,
                        CategoryId target, double possible_conditions,
                        RuleSet* rules);

}  // namespace pnr

#endif  // PNR_RIPPER_OPTIMIZE_H_
