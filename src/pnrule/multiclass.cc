#include "pnrule/multiclass.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <vector>

namespace pnr {

MultiClassPnruleClassifier::MultiClassPnruleClassifier(
    std::vector<std::optional<PnruleClassifier>> models,
    std::vector<double> class_weights, CategoryId default_class)
    : models_(std::move(models)),
      class_weights_(std::move(class_weights)),
      default_class_(default_class) {
  if (class_weights_.empty()) {
    class_weights_.assign(models_.size(), 1.0);
  }
  assert(class_weights_.size() == models_.size());
}

double MultiClassPnruleClassifier::Score(const Dataset& dataset, RowId row,
                                         CategoryId cls) const {
  const size_t index = static_cast<size_t>(cls);
  if (index >= models_.size() || !models_[index].has_value()) return 0.0;
  return class_weights_[index] * models_[index]->Score(dataset, row);
}

CategoryId MultiClassPnruleClassifier::Classify(const Dataset& dataset,
                                                RowId row) const {
  CategoryId best = default_class_;
  double best_score = 0.0;
  for (size_t cls = 0; cls < models_.size(); ++cls) {
    const double score =
        Score(dataset, row, static_cast<CategoryId>(cls));
    if (score > best_score) {
      best_score = score;
      best = static_cast<CategoryId>(cls);
    }
  }
  return best;
}

void MultiClassPnruleClassifier::ClassifyBatch(
    const Dataset& dataset, const RowId* rows, size_t count, CategoryId* out,
    const BatchScoreOptions& options) const {
  if (count == 0) return;
  std::fill(out, out + count, default_class_);
  std::vector<double> best_score(count, 0.0);
  std::vector<double> cls_score(count);
  for (size_t cls = 0; cls < models_.size(); ++cls) {
    if (!models_[cls].has_value()) continue;
    models_[cls]->ScoreBatch(dataset, rows, count, cls_score.data(), options);
    const double weight = class_weights_[cls];
    for (size_t i = 0; i < count; ++i) {
      const double score = weight * cls_score[i];
      if (score > best_score[i]) {
        best_score[i] = score;
        out[i] = static_cast<CategoryId>(cls);
      }
    }
  }
}

const PnruleClassifier* MultiClassPnruleClassifier::model_for(
    CategoryId cls) const {
  const size_t index = static_cast<size_t>(cls);
  if (index >= models_.size() || !models_[index].has_value()) return nullptr;
  return &*models_[index];
}

MultiClassPnruleLearner::MultiClassPnruleLearner(PnruleConfig config)
    : config_(std::move(config)) {}

StatusOr<MultiClassPnruleClassifier> MultiClassPnruleLearner::Train(
    const Dataset& dataset) const {
  Status status = config_.Validate();
  if (!status.ok()) return status;
  const size_t num_classes = dataset.schema().num_classes();
  if (num_classes < 2) {
    return Status::InvalidArgument("need at least two classes");
  }
  if (!class_weights_.empty() && class_weights_.size() != num_classes) {
    return Status::InvalidArgument(
        "class_weights must match the number of classes");
  }

  std::vector<std::optional<PnruleClassifier>> models(num_classes);
  size_t trained = 0;
  CategoryId majority = 0;
  size_t majority_count = 0;
  PnruleLearner learner(config_);
  for (size_t cls = 0; cls < num_classes; ++cls) {
    const CategoryId target = static_cast<CategoryId>(cls);
    const size_t count = dataset.CountClass(target);
    if (count > majority_count) {
      majority_count = count;
      majority = target;
    }
    if (count == 0 || count == dataset.num_rows()) continue;
    auto model = learner.Train(dataset, target);
    if (!model.ok()) continue;  // untrainable class: committee falls back
    models[cls] = std::move(model).value();
    ++trained;
  }
  if (trained == 0) {
    return Status::FailedPrecondition("no class produced a trainable model");
  }
  return MultiClassPnruleClassifier(std::move(models), class_weights_,
                                    majority);
}

double MultiClassAccuracy(const MultiClassPnruleClassifier& classifier,
                          const Dataset& dataset,
                          const BatchScoreOptions& options) {
  if (dataset.num_rows() == 0) return 0.0;
  std::vector<RowId> rows(dataset.num_rows());
  std::iota(rows.begin(), rows.end(), RowId{0});
  std::vector<CategoryId> predicted(rows.size());
  classifier.ClassifyBatch(dataset, rows.data(), rows.size(),
                           predicted.data(), options);
  size_t correct = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    if (predicted[i] == dataset.label(rows[i])) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(dataset.num_rows());
}

}  // namespace pnr
