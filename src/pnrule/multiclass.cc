#include "pnrule/multiclass.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <utility>
#include <vector>

#include "common/timer.h"

namespace pnr {

MultiClassPnruleClassifier::MultiClassPnruleClassifier(
    std::vector<std::optional<PnruleClassifier>> models,
    std::vector<double> class_weights, CategoryId default_class)
    : models_(std::move(models)),
      class_weights_(std::move(class_weights)),
      default_class_(default_class) {
  if (class_weights_.empty()) {
    class_weights_.assign(models_.size(), 1.0);
  }
  assert(class_weights_.size() == models_.size());
}

double MultiClassPnruleClassifier::Score(const Dataset& dataset, RowId row,
                                         CategoryId cls) const {
  const size_t index = static_cast<size_t>(cls);
  if (index >= models_.size() || !models_[index].has_value()) return 0.0;
  return class_weights_[index] * models_[index]->Score(dataset, row);
}

CategoryId MultiClassPnruleClassifier::Classify(const Dataset& dataset,
                                                RowId row) const {
  CategoryId best = default_class_;
  double best_score = 0.0;
  for (size_t cls = 0; cls < models_.size(); ++cls) {
    const double score =
        Score(dataset, row, static_cast<CategoryId>(cls));
    if (score > best_score) {
      best_score = score;
      best = static_cast<CategoryId>(cls);
    }
  }
  return best;
}

void MultiClassPnruleClassifier::ClassifyBatch(
    const Dataset& dataset, const RowId* rows, size_t count, CategoryId* out,
    const BatchScoreOptions& options) const {
  if (count == 0) return;
  std::fill(out, out + count, default_class_);
  // thread_local so a caller classifying block after block (the CLI's
  // prediction loop, MultiClassAccuracy) reuses the score scratch instead
  // of allocating two vectors per call. Both are fully re-initialized
  // below, so reuse cannot perturb predictions.
  thread_local std::vector<double> best_score;
  thread_local std::vector<double> cls_score;
  best_score.assign(count, 0.0);
  cls_score.resize(count);
  for (size_t cls = 0; cls < models_.size(); ++cls) {
    if (!models_[cls].has_value()) continue;
    const double weight = class_weights_[cls];
    // A zero-weight class can never win: scores are non-negative, the
    // running best starts at 0, and the comparison is strict. Skip its
    // whole ScoreBatch pass.
    if (weight == 0.0) continue;
    models_[cls]->ScoreBatch(dataset, rows, count, cls_score.data(), options);
    for (size_t i = 0; i < count; ++i) {
      const double score = weight * cls_score[i];
      if (score > best_score[i]) {
        best_score[i] = score;
        out[i] = static_cast<CategoryId>(cls);
      }
    }
  }
}

const PnruleClassifier* MultiClassPnruleClassifier::model_for(
    CategoryId cls) const {
  const size_t index = static_cast<size_t>(cls);
  if (index >= models_.size() || !models_[index].has_value()) return nullptr;
  return &*models_[index];
}

MultiClassPnruleLearner::MultiClassPnruleLearner(PnruleConfig config)
    : config_(std::move(config)) {}

StatusOr<MultiClassPnruleClassifier> MultiClassPnruleLearner::Train(
    const Dataset& dataset, MultiClassTrainReport* report) const {
  Status status = config_.Validate();
  if (!status.ok()) return status;
  const size_t num_classes = dataset.schema().num_classes();
  if (num_classes < 2) {
    return Status::InvalidArgument("need at least two classes");
  }
  if (!class_weights_.empty() && class_weights_.size() != num_classes) {
    return Status::InvalidArgument(
        "class_weights must match the number of classes");
  }

  MultiClassTrainReport local_report;
  MultiClassTrainReport& rep = report != nullptr ? *report : local_report;
  rep.classes.assign(num_classes, ClassTrainStatus{});
  rep.trained = 0;

  CategoryId majority = 0;
  size_t majority_count = 0;
  std::vector<size_t> trainable;
  for (size_t cls = 0; cls < num_classes; ++cls) {
    const CategoryId target = static_cast<CategoryId>(cls);
    ClassTrainStatus& entry = rep.classes[cls];
    entry.cls = target;
    entry.class_name = dataset.schema().class_attr().CategoryName(target);
    entry.rows = dataset.CountClass(target);
    if (entry.rows > majority_count) {
      majority_count = entry.rows;
      majority = target;
    }
    if (entry.rows == 0) {
      entry.status =
          Status::FailedPrecondition("class has no training examples");
    } else if (entry.rows == dataset.num_rows()) {
      entry.status =
          Status::FailedPrecondition("class covers every training row");
    } else {
      trainable.push_back(cls);
    }
  }

  std::vector<std::optional<PnruleClassifier>> models(num_classes);

  // Trains one class against `data`, recording the outcome — model slot,
  // rule counts, or the learner's failure Status — in the class's report
  // entry. Every write is to per-class slots, so class tasks may run
  // concurrently.
  const auto train_class = [&](size_t cls, const PnruleConfig& config,
                               const Dataset& data) {
    ClassTrainStatus& entry = rep.classes[cls];
    Timer timer;
    PnruleTrainInfo info;
    PnruleLearner learner(config);
    auto model = learner.TrainOnRows(data, data.AllRows(),
                                     static_cast<CategoryId>(cls), &info);
    entry.train_seconds = timer.ElapsedSeconds();
    if (!model.ok()) {
      entry.status = model.status();  // committee falls back on this class
      return;
    }
    entry.status = Status::OK();
    entry.num_p_rules = info.num_p_rules;
    entry.num_n_rules = info.num_n_rules;
    models[cls] = std::move(model).value();
  };

  const size_t outer_request = ThreadPool::ResolveThreadCount(train_threads_);
  if (outer_request <= 1 && budget_ == nullptr) {
    // Serial class loop — the exact historical path, config untouched.
    for (size_t cls : trainable) train_class(cls, config_, dataset);
  } else if (!trainable.empty()) {
    // Fan the class loop out. A shared budget caps the *sum* of outer
    // class-workers and inner search threads: the outer width is reserved
    // up front and every class task sizes its engine from a lease. The
    // committee does not depend on the grants — each binary learner is
    // bit-identical at any thread count and writes only its own slot.
    std::shared_ptr<ThreadBudget> budget = budget_;
    if (budget == nullptr) {
      budget = std::make_shared<ThreadBudget>(
          std::max(outer_request,
                   ThreadPool::ResolveThreadCount(config_.num_threads)));
    }
    const size_t outer_width =
        std::min(std::min(outer_request, trainable.size()), budget->total());
    budget->Reserve(outer_width);
    ThreadPool pool(outer_width);
    // Concurrent learners on one demand-paged dataset would fight over a
    // single resident set (one task's fault evicting another's pinned-out
    // columns); give each task its own paged view of the shared store.
    const bool clone_paged = dataset.paged() && outer_width > 1;
    pool.ParallelFor(trainable.size(), [&](size_t t) {
      ThreadBudget::Lease lease = budget->Acquire(budget->total());
      PnruleConfig config = config_;
      config.num_threads = lease.count();
      if (clone_paged) {
        const Dataset view = dataset.ClonePagedView();
        train_class(trainable[t], config, view);
      } else {
        train_class(trainable[t], config, dataset);
      }
    });
  }

  for (const auto& model : models) {
    if (model.has_value()) ++rep.trained;
  }
  if (rep.trained == 0) {
    return Status::FailedPrecondition("no class produced a trainable model");
  }
  return MultiClassPnruleClassifier(std::move(models), class_weights_,
                                    majority);
}

double MultiClassAccuracy(const MultiClassPnruleClassifier& classifier,
                          const Dataset& dataset,
                          const BatchScoreOptions& options) {
  if (dataset.num_rows() == 0) return 0.0;
  std::vector<RowId> rows(dataset.num_rows());
  std::iota(rows.begin(), rows.end(), RowId{0});
  std::vector<CategoryId> predicted(rows.size());
  classifier.ClassifyBatch(dataset, rows.data(), rows.size(),
                           predicted.data(), options);
  size_t correct = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    if (predicted[i] == dataset.label(rows[i])) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(dataset.num_rows());
}

}  // namespace pnr
