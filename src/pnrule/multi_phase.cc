#include "pnrule/multi_phase.h"

#include "pnrule/p_phase.h"

namespace pnr {

Status MultiPhaseConfig::Validate() const {
  Status base_status = base.Validate();
  if (!base_status.ok()) return base_status;
  if (r_min_support_fraction < 0.0 || r_min_support_fraction > 1.0) {
    return Status::InvalidArgument(
        "r_min_support_fraction must be in [0, 1]");
  }
  if (r_min_precision < 0.0 || r_min_precision > 1.0) {
    return Status::InvalidArgument("r_min_precision must be in [0, 1]");
  }
  return Status::OK();
}

MultiPhasePnruleClassifier::MultiPhasePnruleClassifier(PnruleClassifier base,
                                                       RuleSet r_rules)
    : base_(std::move(base)), r_rules_(std::move(r_rules)) {}

double MultiPhasePnruleClassifier::Score(const Dataset& dataset,
                                         RowId row) const {
  const int p = base_.p_rules().FirstMatch(dataset, row);
  if (p == kNoRule) return 0.0;
  const int n = base_.n_rules().FirstMatch(dataset, row);
  if (n != kNoRule) {
    // Vetoed: give the recovery rules a chance to override.
    const int r = r_rules_.FirstMatch(dataset, row);
    if (r != kNoRule) {
      const RuleStats& stats =
          r_rules_.rule(static_cast<size_t>(r)).train_stats;
      return (stats.positive + 1.0) / (stats.covered + 2.0);
    }
  }
  return base_.Score(dataset, row);
}

std::string MultiPhasePnruleClassifier::Describe(const Schema& schema) const {
  std::string out = base_.Describe(schema);
  out += "R-rules (recovery of vetoed positives):\n";
  out += r_rules_.empty() ? "(none)\n" : r_rules_.ToString(schema);
  return out;
}

MultiPhasePnruleLearner::MultiPhasePnruleLearner(MultiPhaseConfig config)
    : config_(std::move(config)) {}

StatusOr<MultiPhasePnruleClassifier> MultiPhasePnruleLearner::Train(
    const Dataset& dataset, CategoryId target) const {
  Status status = config_.Validate();
  if (!status.ok()) return status;

  PnruleLearner learner(config_.base);
  auto base = learner.Train(dataset, target);
  if (!base.ok()) return base.status();

  // Collect the vetoed records: covered by a P-rule, vetoed by an N-rule.
  RowSubset vetoed;
  for (RowId row = 0; row < dataset.num_rows(); ++row) {
    if (base->p_rules().FirstMatch(dataset, row) == kNoRule) continue;
    if (base->n_rules().FirstMatch(dataset, row) == kNoRule) continue;
    vetoed.push_back(row);
  }

  RuleSet r_rules;
  const double vetoed_positive = dataset.ClassWeight(vetoed, target);
  if (vetoed_positive > 0.0) {
    PnruleConfig r_config = config_.base;
    r_config.min_support_fraction = config_.r_min_support_fraction;
    r_config.max_p_rules = config_.max_r_rules;
    // The recovery phase is precision-critical: cover only what clears the
    // precision bar rather than chasing full coverage.
    r_config.min_coverage_fraction = 0.0;
    r_config.p_accuracy_after_coverage = config_.r_min_precision;
    const PPhaseResult recovery =
        RunPPhase(dataset, vetoed, target, r_config);
    r_rules = recovery.rules;

    // First-match attribution of the vetoed records, then drop rules whose
    // Laplace precision cannot flip a veto.
    for (Rule& rule : r_rules.mutable_rules()) rule.train_stats = RuleStats();
    for (RowId row : vetoed) {
      const int match = r_rules.FirstMatch(dataset, row);
      if (match == kNoRule) continue;
      RuleStats& stats =
          r_rules.mutable_rule(static_cast<size_t>(match)).train_stats;
      const double w = dataset.weight(row);
      stats.covered += w;
      if (dataset.label(row) == target) stats.positive += w;
    }
    for (size_t i = r_rules.size(); i-- > 0;) {
      const RuleStats& stats = r_rules.rule(i).train_stats;
      const double laplace = (stats.positive + 1.0) / (stats.covered + 2.0);
      if (laplace < config_.r_min_precision) r_rules.RemoveRule(i);
    }
  }
  return MultiPhasePnruleClassifier(std::move(base).value(),
                                    std::move(r_rules));
}

}  // namespace pnr
