// Multi-class PNrule via one-vs-rest decomposition.
//
// The SIGMOD paper studies the binary problem; its companion framework [1]
// applies the same two-phase models to multi-class data (with optional
// misclassification costs). This wrapper trains one binary PNrule model
// per class and predicts the class with the highest (optionally
// cost-weighted) score — falling back to the training-majority class when
// no model fires.
//
// The per-class models are independent, so Train can fan the class loop out
// over a thread pool (set_train_threads). Each binary learner is
// thread-count-invariant and writes only its own class slot, so the
// committee is bit-identical at any train_threads x num_threads
// combination. A shared ThreadBudget (set_thread_budget) caps the *sum* of
// outer class-workers and inner search threads when the caller — e.g. the
// tuning racer — already fans out above us.

#ifndef PNR_PNRULE_MULTICLASS_H_
#define PNR_PNRULE_MULTICLASS_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "pnrule/pnrule.h"

namespace pnr {

/// One-vs-rest committee of binary PNrule models.
class MultiClassPnruleClassifier {
 public:
  MultiClassPnruleClassifier(
      std::vector<std::optional<PnruleClassifier>> models,
      std::vector<double> class_weights, CategoryId default_class);

  /// Score of `cls` for the record: the binary model's score times the
  /// class's weight (0 for classes that had no trainable model).
  double Score(const Dataset& dataset, RowId row, CategoryId cls) const;

  /// Class with the highest score; the default class when every score is
  /// zero.
  CategoryId Classify(const Dataset& dataset, RowId row) const;

  /// Batched Classify: one compiled ScoreBatch pass per class over the
  /// whole row block instead of scoring every class per row. Bit-identical
  /// to Classify (same weight multiply, same ascending-class strict-`>`
  /// tie-break). Zero-weight classes are skipped outright — their scores
  /// can never beat the non-negative running best.
  void ClassifyBatch(const Dataset& dataset, const RowId* rows, size_t count,
                     CategoryId* out,
                     const BatchScoreOptions& options = {}) const;

  /// Number of classes the committee was built over.
  size_t num_classes() const { return models_.size(); }

  /// The binary model for `cls` (nullptr when the class was untrainable,
  /// e.g. it had no training examples).
  const PnruleClassifier* model_for(CategoryId cls) const;

  CategoryId default_class() const { return default_class_; }

  /// The per-class score weights (always sized num_classes()).
  const std::vector<double>& class_weights() const { return class_weights_; }

 private:
  std::vector<std::optional<PnruleClassifier>> models_;  // by class id
  std::vector<double> class_weights_;
  CategoryId default_class_;
};

/// Outcome of one class's training attempt, for the training report.
struct ClassTrainStatus {
  CategoryId cls = 0;
  std::string class_name;
  size_t rows = 0;        ///< training examples of the class
  Status status;          ///< OK when a model was trained; why not otherwise
  size_t num_p_rules = 0;
  size_t num_n_rules = 0;
  double train_seconds = 0.0;  ///< wall clock (diagnostic only)
};

/// Per-class account of a one-vs-rest training run. Surfaces classes the
/// committee silently falls back on (no examples, degenerate, or learner
/// failure) instead of burying them in a `continue`.
struct MultiClassTrainReport {
  std::vector<ClassTrainStatus> classes;  ///< one entry per class id
  size_t trained = 0;                     ///< classes with a model
};

/// Trains one-vs-rest PNrule committees.
class MultiClassPnruleLearner {
 public:
  explicit MultiClassPnruleLearner(PnruleConfig config = {});

  /// Per-class score weights (misclassification-cost surrogate): the score
  /// of class c is multiplied by weights[c]. Empty = all 1.
  void set_class_weights(std::vector<double> weights) {
    class_weights_ = std::move(weights);
  }

  /// Outer parallelism across classes: 1 = serial class loop (the
  /// default), 0 = hardware concurrency, n = up to n concurrent class
  /// learners. The committee is bit-identical for any value.
  void set_train_threads(size_t threads) { train_threads_ = threads; }

  /// Shares a thread budget with an enclosing fan-out (e.g. the tuning
  /// racer): class tasks size their search engines from budget leases so
  /// the total of live workers never exceeds the budget. Null (default)
  /// makes Train build its own budget when train_threads > 1.
  void set_thread_budget(std::shared_ptr<ThreadBudget> budget) {
    budget_ = std::move(budget);
  }

  /// Trains a binary model for every class of the schema that has at least
  /// one training example. Fails only if *no* class is trainable. When
  /// `report` is non-null it receives one entry per class — including the
  /// failure Status of every class the committee will fall back on — and
  /// is filled even when Train itself fails.
  StatusOr<MultiClassPnruleClassifier> Train(
      const Dataset& dataset, MultiClassTrainReport* report = nullptr) const;

 private:
  PnruleConfig config_;
  std::vector<double> class_weights_;
  size_t train_threads_ = 1;
  std::shared_ptr<ThreadBudget> budget_;
};

/// Multiclass accuracy of `classifier` over all rows of `dataset`
/// (classified via the batched path; `options` tunes it).
double MultiClassAccuracy(const MultiClassPnruleClassifier& classifier,
                          const Dataset& dataset,
                          const BatchScoreOptions& options = {});

}  // namespace pnr

#endif  // PNR_PNRULE_MULTICLASS_H_
