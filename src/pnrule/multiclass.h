// Multi-class PNrule via one-vs-rest decomposition.
//
// The SIGMOD paper studies the binary problem; its companion framework [1]
// applies the same two-phase models to multi-class data (with optional
// misclassification costs). This wrapper trains one binary PNrule model
// per class and predicts the class with the highest (optionally
// cost-weighted) score — falling back to the training-majority class when
// no model fires.

#ifndef PNR_PNRULE_MULTICLASS_H_
#define PNR_PNRULE_MULTICLASS_H_

#include <optional>
#include <vector>

#include "pnrule/pnrule.h"

namespace pnr {

/// One-vs-rest committee of binary PNrule models.
class MultiClassPnruleClassifier {
 public:
  MultiClassPnruleClassifier(
      std::vector<std::optional<PnruleClassifier>> models,
      std::vector<double> class_weights, CategoryId default_class);

  /// Score of `cls` for the record: the binary model's score times the
  /// class's weight (0 for classes that had no trainable model).
  double Score(const Dataset& dataset, RowId row, CategoryId cls) const;

  /// Class with the highest score; the default class when every score is
  /// zero.
  CategoryId Classify(const Dataset& dataset, RowId row) const;

  /// Batched Classify: one compiled ScoreBatch pass per class over the
  /// whole row block instead of scoring every class per row. Bit-identical
  /// to Classify (same weight multiply, same ascending-class strict-`>`
  /// tie-break).
  void ClassifyBatch(const Dataset& dataset, const RowId* rows, size_t count,
                     CategoryId* out,
                     const BatchScoreOptions& options = {}) const;

  /// Number of classes the committee was built over.
  size_t num_classes() const { return models_.size(); }

  /// The binary model for `cls` (nullptr when the class was untrainable,
  /// e.g. it had no training examples).
  const PnruleClassifier* model_for(CategoryId cls) const;

  CategoryId default_class() const { return default_class_; }

 private:
  std::vector<std::optional<PnruleClassifier>> models_;  // by class id
  std::vector<double> class_weights_;
  CategoryId default_class_;
};

/// Trains one-vs-rest PNrule committees.
class MultiClassPnruleLearner {
 public:
  explicit MultiClassPnruleLearner(PnruleConfig config = {});

  /// Per-class score weights (misclassification-cost surrogate): the score
  /// of class c is multiplied by weights[c]. Empty = all 1.
  void set_class_weights(std::vector<double> weights) {
    class_weights_ = std::move(weights);
  }

  /// Trains a binary model for every class of the schema that has at least
  /// one training example. Fails only if *no* class is trainable.
  StatusOr<MultiClassPnruleClassifier> Train(const Dataset& dataset) const;

 private:
  PnruleConfig config_;
  std::vector<double> class_weights_;
};

/// Multiclass accuracy of `classifier` over all rows of `dataset`
/// (classified via the batched path; `options` tunes it).
double MultiClassAccuracy(const MultiClassPnruleClassifier& classifier,
                          const Dataset& dataset,
                          const BatchScoreOptions& options = {});

}  // namespace pnr

#endif  // PNR_PNRULE_MULTICLASS_H_
