#include "pnrule/ensemble.h"

#include <algorithm>
#include <vector>

#include "common/rng.h"

namespace pnr {

Status PnruleEnsembleConfig::Validate() const {
  Status base_status = base.Validate();
  if (!base_status.ok()) return base_status;
  if (num_members == 0) {
    return Status::InvalidArgument("num_members must be positive");
  }
  if (sample_fraction <= 0.0 || sample_fraction > 1.0) {
    return Status::InvalidArgument("sample_fraction must be in (0, 1]");
  }
  return Status::OK();
}

PnruleEnsembleClassifier::PnruleEnsembleClassifier(
    std::vector<PnruleClassifier> members)
    : members_(std::move(members)) {}

double PnruleEnsembleClassifier::Score(const Dataset& dataset,
                                       RowId row) const {
  if (members_.empty()) return 0.0;
  double total = 0.0;
  for (const PnruleClassifier& member : members_) {
    total += member.Score(dataset, row);
  }
  return total / static_cast<double>(members_.size());
}

void PnruleEnsembleClassifier::ScoreBatch(
    const Dataset& dataset, const RowId* rows, size_t count, double* out,
    const BatchScoreOptions& options) const {
  std::fill(out, out + count, 0.0);
  if (members_.empty() || count == 0) return;
  // Accumulate member scores in member order — the same summation order as
  // the per-row Score, so the averages are bit-identical.
  std::vector<double> member_scores(count);
  for (const PnruleClassifier& member : members_) {
    member.ScoreBatch(dataset, rows, count, member_scores.data(), options);
    for (size_t i = 0; i < count; ++i) out[i] += member_scores[i];
  }
  const double scale = static_cast<double>(members_.size());
  for (size_t i = 0; i < count; ++i) out[i] /= scale;
}

std::string PnruleEnsembleClassifier::Describe(const Schema& schema) const {
  std::string out = "PNrule bagging ensemble (" +
                    std::to_string(members_.size()) + " members)\n";
  for (size_t i = 0; i < members_.size(); ++i) {
    out += "--- member " + std::to_string(i) + " ---\n";
    out += members_[i].Describe(schema);
  }
  return out;
}

PnruleEnsembleLearner::PnruleEnsembleLearner(PnruleEnsembleConfig config)
    : config_(std::move(config)) {}

StatusOr<PnruleEnsembleClassifier> PnruleEnsembleLearner::Train(
    const Dataset& dataset, CategoryId target) const {
  Status status = config_.Validate();
  if (!status.ok()) return status;

  // Stratified bootstrap pools.
  RowSubset positives;
  RowSubset negatives;
  for (RowId row = 0; row < dataset.num_rows(); ++row) {
    (dataset.label(row) == target ? positives : negatives).push_back(row);
  }
  if (positives.empty() || negatives.empty()) {
    return Status::InvalidArgument(
        "ensemble training needs examples of both classes");
  }

  Rng rng(config_.seed);
  PnruleLearner learner(config_.base);
  std::vector<PnruleClassifier> members;
  members.reserve(config_.num_members);
  for (size_t m = 0; m < config_.num_members; ++m) {
    Rng member_rng = rng.Fork();
    RowSubset sample;
    const size_t pos_draws = static_cast<size_t>(
        config_.sample_fraction * static_cast<double>(positives.size()) +
        0.5);
    const size_t neg_draws = static_cast<size_t>(
        config_.sample_fraction * static_cast<double>(negatives.size()) +
        0.5);
    sample.reserve(pos_draws + neg_draws);
    for (size_t i = 0; i < pos_draws; ++i) {
      sample.push_back(positives[member_rng.NextBelow(positives.size())]);
    }
    for (size_t i = 0; i < neg_draws; ++i) {
      sample.push_back(negatives[member_rng.NextBelow(negatives.size())]);
    }
    auto model = learner.TrainOnRows(dataset, sample, target);
    if (!model.ok()) return model.status();
    members.push_back(std::move(model).value());
  }
  return PnruleEnsembleClassifier(std::move(members));
}

}  // namespace pnr
