// N-phase: collective false-positive removal.
//
// All records covered by the union of P-rules — true and false positives
// together — form the N-phase training collection. Sequential covering then
// learns *absence* rules (N-rules) whose pseudo-target class is "not the
// original target". Gathering the false positives first is what shields
// PNrule from the splintered-false-positives problem.
//
// Two controls distinguish this phase:
//   * rn (n_recall_lower_limit): a rule is refined past its metric optimum
//     whenever stopping early would drag the model's recall of the original
//     target class below rn;
//   * the MDL window: rule addition stops once the description length of
//     the N-rule set exceeds its minimum so far by mdl_window_bits.

#ifndef PNR_PNRULE_N_PHASE_H_
#define PNR_PNRULE_N_PHASE_H_

#include "induction/condition_search.h"
#include "pnrule/config.h"
#include "rules/rule_set.h"

namespace pnr {

/// Output of the N-phase.
struct NPhaseResult {
  /// Learned N-rules in order of discovery. Each rule's train_stats are
  /// with respect to the pseudo-target ("absence"): `positive` counts
  /// non-target weight the rule covered.
  RuleSet rules;
  /// Weight of original-target records erased (covered) by the N-rules —
  /// the false negatives the N-phase introduced on the training set.
  double erased_positive_weight = 0.0;
};

/// Runs the N-phase on `covered_rows` (the union coverage of the P-rules).
///
/// `total_positive_weight` is the target-class weight of the *full* training
/// rows (the recall denominator); `covered_positive_weight` is the part the
/// P-rules captured. `config` must already be validated.
NPhaseResult RunNPhase(ConditionSearchEngine& engine,
                       const RowSubset& covered_rows, CategoryId target,
                       double total_positive_weight,
                       double covered_positive_weight,
                       const PnruleConfig& config);

/// Convenience overload: builds a transient engine (config.num_threads).
NPhaseResult RunNPhase(const Dataset& dataset, const RowSubset& covered_rows,
                       CategoryId target, double total_positive_weight,
                       double covered_positive_weight,
                       const PnruleConfig& config);

}  // namespace pnr

#endif  // PNR_PNRULE_N_PHASE_H_
