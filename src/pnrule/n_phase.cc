#include "pnrule/n_phase.h"

#include "pnrule/p_phase.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "induction/condition_search.h"
#include "induction/mdl.h"

namespace pnr {
namespace {

// Flips coverage stats so that "positive" means the pseudo-target of the
// N-phase: absence of the original target class.
RuleStats FlipStats(const RuleStats& stats) {
  RuleStats flipped;
  flipped.covered = stats.covered;
  flipped.positive = stats.negative();
  return flipped;
}

// Grows one N-rule over `remaining`. `recall_floor_weight` is the minimum
// target-class weight the model must keep; `kept_positive_weight` is what it
// currently keeps (before this rule). The rn guard: if stopping at the
// current rule R would drop kept weight below the floor, refinement is
// forced even when the metric does not improve.
Rule GrowAbsenceRule(ConditionSearchEngine& engine, const RowSubset& remaining,
                     CategoryId target, const RuleMetric& metric,
                     const ClassDistribution& absence_dist,
                     double kept_positive_weight, double recall_floor_weight,
                     size_t max_length, bool enable_range_conditions,
                     bool legacy_mode, double min_refinement_gain) {
  const Dataset& dataset = engine.dataset();
  Rule rule;
  RowSubset covered = remaining;
  double current_value = 0.0;
  // True-positive weight the current rule R erases (empty rule: all of it).
  double rule_erased = dataset.ClassWeight(remaining, target);

  ConditionSearchOptions options;
  options.enable_range_conditions = enable_range_conditions;

  ConditionScorer scorer = [&](const RuleStats& stats) {
    return metric.Evaluate(FlipStats(stats), absence_dist);
  };

  while (max_length == 0 || rule.size() < max_length) {
    const auto candidate = engine.FindBest(covered, target, scorer, options);
    if (!candidate.has_value()) break;
    const bool improves = ClearsRefinementGain(
        candidate->value, current_value, min_refinement_gain);
    if (rule.empty()) {
      // The first condition must carry a positive metric value; an empty
      // N-rule (match-everything) is never admissible.
      if (!improves) break;
    } else {
      // Paper section 2.2: accept R1 when the metric improves, or when
      // keeping R would push recall below the lower limit rn. Forced
      // refinement only makes sense while the rule erases true positives
      // and the refinement actually reduces that erasure — otherwise the
      // loop would grow unboundedly specific rules whenever the floor is
      // unreachable (e.g. the P-phase coverage already sits at the floor).
      const bool recall_violated =
          !legacy_mode && rule_erased > 0.0 &&
          kept_positive_weight - rule_erased < recall_floor_weight;
      if (!improves &&
          (!recall_violated || candidate->stats.positive >= rule_erased)) {
        break;
      }
    }
    rule.AddCondition(candidate->condition);
    rule.train_stats = FlipStats(candidate->stats);
    current_value = improves ? candidate->value : current_value;
    covered = rule.CoveredRows(dataset, covered);
    rule_erased = candidate->stats.positive;
    if (rule.train_stats.negative() <= 0.0) break;  // pure absence rule
  }
  return rule;
}

}  // namespace

NPhaseResult RunNPhase(ConditionSearchEngine& engine,
                       const RowSubset& covered_rows, CategoryId target,
                       double total_positive_weight,
                       double covered_positive_weight,
                       const PnruleConfig& config) {
  const Dataset& dataset = engine.dataset();
  NPhaseResult result;
  if (covered_rows.empty()) return result;

  const auto metric = MakeRuleMetric(config.metric);
  const bool enable_range =
      config.enable_range_conditions && !config.legacy_mode;
  const double possible_conditions = CountPossibleConditions(dataset);
  const double recall_floor_weight =
      config.n_recall_lower_limit * total_positive_weight;

  RowSubset remaining = covered_rows;
  double min_dl = RuleSetDescriptionLength(dataset, covered_rows, target,
                                           result.rules, possible_conditions,
                                           -1.0, /*invert_target=*/true);

  while (result.rules.size() < config.max_n_rules) {
    ClassDistribution absence_dist;
    const double remaining_pos = dataset.ClassWeight(remaining, target);
    const double remaining_total = dataset.TotalWeight(remaining);
    absence_dist.positives = remaining_total - remaining_pos;  // absence
    absence_dist.negatives = remaining_pos;
    if (absence_dist.positives <= 0.0) break;  // no false positives left

    const double kept_positive_weight =
        covered_positive_weight - result.erased_positive_weight;
    Rule rule = GrowAbsenceRule(
        engine, remaining, target, *metric, absence_dist,
        kept_positive_weight, recall_floor_weight, config.max_n_rule_length,
        enable_range, config.legacy_mode, config.min_refinement_gain);
    static const bool debug = std::getenv("PNR_DEBUG_NPHASE") != nullptr;
    if (debug) {
      std::fprintf(stderr,
                   "[nphase] rule %zu: size=%zu cov=%.1f abs=%.1f "
                   "(remaining abs=%.1f pos=%.1f)\n",
                   result.rules.size(), rule.size(), rule.train_stats.covered,
                   rule.train_stats.positive, absence_dist.positives,
                   absence_dist.negatives);
    }
    if (rule.empty() || rule.train_stats.positive <= 0.0) break;

    const double rule_erased =
        rule.train_stats.negative();  // original-target weight it removes
    result.rules.AddRule(rule);

    // MDL stop (paper section 2.1): keep the rule only while the total
    // description length stays within the window of the minimum seen.
    const double dl = RuleSetDescriptionLength(
        dataset, covered_rows, target, result.rules, possible_conditions, -1.0,
        /*invert_target=*/true);
    if (debug) {
      double cover = 0.0, uncover = 0.0, fp = 0.0, fn = 0.0;
      for (RowId row : covered_rows) {
        const double w = dataset.weight(row);
        const bool absence = dataset.label(row) != target;
        if (result.rules.AnyMatch(dataset, row)) {
          cover += w;
          if (!absence) fp += w;
        } else {
          uncover += w;
          if (absence) fn += w;
        }
      }
      std::fprintf(stderr,
                   "[nphase]   dl=%.1f min_dl=%.1f cover=%.0f uncover=%.0f "
                   "fp=%.0f fn=%.0f\n",
                   dl, min_dl, cover, uncover, fp, fn);
    }
    if (dl > min_dl + config.mdl_window_bits) {
      result.rules.RemoveRule(result.rules.size() - 1);
      break;
    }
    if (dl < min_dl) min_dl = dl;

    result.erased_positive_weight += rule_erased;
    remaining = rule.UncoveredRows(dataset, remaining);
  }
  return result;
}

NPhaseResult RunNPhase(const Dataset& dataset, const RowSubset& covered_rows,
                       CategoryId target, double total_positive_weight,
                       double covered_positive_weight,
                       const PnruleConfig& config) {
  ConditionSearchEngine engine(dataset, config.num_threads);
  return RunNPhase(engine, covered_rows, target, total_positive_weight,
                   covered_positive_weight, config);
}

}  // namespace pnr
