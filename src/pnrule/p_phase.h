// P-phase: sequential covering for *presence* rules with high support.
//
// Unlike classic sequential covering, rule growth stops as soon as the
// evaluation metric (Z-number by default) stops improving — high-support,
// moderate-accuracy rules are preferred over splintered high-accuracy ones.
// Rules are added until the target-class coverage reaches rp
// (min_coverage_fraction); past that point a rule must clear an accuracy
// gate to enter the model.

#ifndef PNR_PNRULE_P_PHASE_H_
#define PNR_PNRULE_P_PHASE_H_

#include "induction/condition_search.h"
#include "pnrule/config.h"
#include "rules/rule_set.h"

namespace pnr {

/// Output of the P-phase.
struct PPhaseResult {
  /// Learned P-rules in order of discovery (== significance).
  RuleSet rules;
  /// All training rows covered by the union of P-rules (input to N-phase).
  RowSubset covered_rows;
  /// Weight of target-class records in covered_rows.
  double covered_positive_weight = 0.0;
  /// Weight of all target-class records in the training rows.
  double total_positive_weight = 0.0;

  /// Fraction of the target class captured by the P-rules (upper bound on
  /// the final model's recall).
  double coverage_fraction() const {
    return total_positive_weight > 0.0
               ? covered_positive_weight / total_positive_weight
               : 0.0;
  }
};

/// Runs the P-phase of PNrule for `target` over `rows` of the engine's
/// dataset. `config` must already be validated. The engine's sorted-column
/// cache and thread pool are reused across every refinement search.
PPhaseResult RunPPhase(ConditionSearchEngine& engine, const RowSubset& rows,
                       CategoryId target, const PnruleConfig& config);

/// Convenience overload: builds a transient engine (config.num_threads).
PPhaseResult RunPPhase(const Dataset& dataset, const RowSubset& rows,
                       CategoryId target, const PnruleConfig& config);

/// Grows a single rule from empty over `remaining` (records left after
/// earlier rules), judged against `dist` (the remaining-data distribution),
/// accepting refinements only while the metric improves by at least
/// `min_refinement_gain` (relative) and support stays above
/// `min_support_weight`. Exposed for testing and reuse.
Rule GrowPresenceRule(ConditionSearchEngine& engine, const RowSubset& remaining,
                      CategoryId target, const RuleMetric& metric,
                      const ClassDistribution& dist, double min_support_weight,
                      size_t max_length, bool enable_range_conditions,
                      double min_refinement_gain = 0.0);

/// Convenience overload: builds a transient serial engine.
Rule GrowPresenceRule(const Dataset& dataset, const RowSubset& remaining,
                      CategoryId target, const RuleMetric& metric,
                      const ClassDistribution& dist, double min_support_weight,
                      size_t max_length, bool enable_range_conditions,
                      double min_refinement_gain = 0.0);

/// True iff `value` clears `current` by the relative `min_gain` margin
/// (any strict improvement when `current` <= 0).
bool ClearsRefinementGain(double value, double current, double min_gain);

}  // namespace pnr

#endif  // PNR_PNRULE_P_PHASE_H_
