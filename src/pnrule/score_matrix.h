// ScoreMatrix: per-(P-rule, N-rule) probabilistic scores.
//
// A plain P ∧ ¬N model treats every N-rule as a veto for every P-rule. But
// N-rules were learned on the *collective* false positives, so a given
// N-rule may only be meaningful for a subset of P-rules — and may introduce
// excessive false negatives for others. The ScoreMatrix estimates, on
// training data, P(target | first applicable P-rule = i, first applicable
// N-rule = j) with Laplace smoothing; cells with too little evidence fall
// back to the default semantics (honor the N-rule; use the P-rule's own
// accuracy when no N-rule fires). Scores above the decision threshold
// effectively *ignore* the N-rule for that P-rule, which is the paper's
// "selectively deciding to ignore the effects of certain N-rules on a given
// P-rule".
//
// The SIGMOD paper delegates the exact algorithm to its companion paper [1];
// this is a faithful reconstruction of the published mechanism (empirical
// cell probabilities + a significance fallback), documented in DESIGN.md.

#ifndef PNR_PNRULE_SCORE_MATRIX_H_
#define PNR_PNRULE_SCORE_MATRIX_H_

#include <string>
#include <vector>

#include "pnrule/config.h"
#include "rules/rule_set.h"

namespace pnr {

/// The learned score table. Rows = P-rules; columns = N-rules plus one
/// trailing "no N-rule applies" column.
class ScoreMatrix {
 public:
  ScoreMatrix() = default;

  /// Builds the matrix by replaying the model over the training rows.
  static ScoreMatrix Build(const Dataset& dataset, const RowSubset& rows,
                           CategoryId target, const RuleSet& p_rules,
                           const RuleSet& n_rules, const PnruleConfig& config);

  /// Reconstructs a matrix from raw cell values (model deserialization).
  /// `scores` and `weights` are row-major with num_p * (num_n + 1) entries.
  static ScoreMatrix FromValues(size_t num_p, size_t num_n,
                                std::vector<double> scores,
                                std::vector<double> weights);

  /// Score for first-matching P-rule `p_index` and first-matching N-rule
  /// `n_index`; pass n_index == num_n_rules() for "no N-rule applies".
  double Score(size_t p_index, size_t n_index) const;

  size_t num_p_rules() const { return num_p_; }
  size_t num_n_rules() const { return num_n_; }

  /// Training weight that landed in a cell (diagnostics).
  double CellWeight(size_t p_index, size_t n_index) const;

  /// Tabular dump for model inspection.
  std::string ToString() const;

 private:
  size_t Index(size_t p_index, size_t n_index) const;

  size_t num_p_ = 0;
  size_t num_n_ = 0;
  std::vector<double> scores_;
  std::vector<double> weights_;
};

}  // namespace pnr

#endif  // PNR_PNRULE_SCORE_MATRIX_H_
