// Bagged PNrule ensembles.
//
// The paper positions PNrule as a *core* learner that boosting/bagging
// meta-techniques can wrap "just the way RIPPER is used at the core of
// SLIPPER" (section 1.1). This is the bagging instantiation: each member
// is trained on a stratified bootstrap resample and the ensemble averages
// member scores, which smooths the variance of small-disjunct decisions.

#ifndef PNR_PNRULE_ENSEMBLE_H_
#define PNR_PNRULE_ENSEMBLE_H_

#include <vector>

#include "pnrule/pnrule.h"

namespace pnr {

/// Bagging parameters.
struct PnruleEnsembleConfig {
  /// Member configuration.
  PnruleConfig base;
  /// Number of bootstrap members.
  size_t num_members = 10;
  /// Resample size as a fraction of the training rows.
  double sample_fraction = 1.0;
  /// Resampling seed.
  uint64_t seed = 7;

  Status Validate() const;
};

/// Averages the scores of the member models.
class PnruleEnsembleClassifier : public BinaryClassifier {
 public:
  explicit PnruleEnsembleClassifier(std::vector<PnruleClassifier> members);

  double Score(const Dataset& dataset, RowId row) const override;

  /// Batched averaging over the members' compiled ScoreBatch paths
  /// (members are scored sequentially; each parallelizes internally).
  void ScoreBatch(const Dataset& dataset, const RowId* rows, size_t count,
                  double* out,
                  const BatchScoreOptions& options = {}) const override;

  std::string Describe(const Schema& schema) const override;

  size_t num_members() const { return members_.size(); }
  const PnruleClassifier& member(size_t index) const {
    return members_[index];
  }

 private:
  std::vector<PnruleClassifier> members_;
};

/// Trains bagged PNrule ensembles.
class PnruleEnsembleLearner {
 public:
  explicit PnruleEnsembleLearner(PnruleEnsembleConfig config = {});

  /// Trains `num_members` models on stratified bootstrap resamples of
  /// `dataset` (each resample keeps the positive/negative ratio of the
  /// original, so a rare class cannot vanish from a member's sample).
  StatusOr<PnruleEnsembleClassifier> Train(const Dataset& dataset,
                                           CategoryId target) const;

 private:
  PnruleEnsembleConfig config_;
};

}  // namespace pnr

#endif  // PNR_PNRULE_ENSEMBLE_H_
