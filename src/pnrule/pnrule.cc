#include "pnrule/pnrule.h"

#include "pnrule/n_phase.h"
#include "pnrule/p_phase.h"

namespace pnr {

PnruleClassifier::PnruleClassifier(RuleSet p_rules, RuleSet n_rules,
                                   ScoreMatrix scores, bool use_score_matrix)
    : p_rules_(std::move(p_rules)),
      n_rules_(std::move(n_rules)),
      scores_(std::move(scores)),
      use_score_matrix_(use_score_matrix) {}

double PnruleClassifier::Score(const Dataset& dataset, RowId row) const {
  const int p = p_rules_.FirstMatch(dataset, row);
  if (p == kNoRule) return 0.0;
  const int n = n_rules_.FirstMatch(dataset, row);
  if (!use_score_matrix_) {
    return n == kNoRule ? 1.0 : 0.0;
  }
  const size_t n_index =
      n == kNoRule ? n_rules_.size() : static_cast<size_t>(n);
  return scores_.Score(static_cast<size_t>(p), n_index);
}

std::string PnruleClassifier::Describe(const Schema& schema) const {
  std::string out = "PNrule model\nP-rules (presence of target):\n";
  out += p_rules_.ToString(schema);
  out += "N-rules (absence of target):\n";
  out += n_rules_.empty() ? "(none)\n" : n_rules_.ToString(schema);
  if (use_score_matrix_) {
    out += "ScoreMatrix:\n" + scores_.ToString();
  } else {
    out += "ScoreMatrix: disabled (strict P AND NOT N semantics)\n";
  }
  return out;
}

PnruleLearner::PnruleLearner(PnruleConfig config)
    : config_(std::move(config)) {}

StatusOr<PnruleClassifier> PnruleLearner::Train(const Dataset& dataset,
                                                CategoryId target) const {
  return TrainOnRows(dataset, dataset.AllRows(), target);
}

StatusOr<PnruleClassifier> PnruleLearner::TrainOnRows(
    const Dataset& dataset, const RowSubset& rows, CategoryId target,
    PnruleTrainInfo* info) const {
  Status status = config_.Validate();
  if (!status.ok()) return status;
  if (rows.empty()) {
    return Status::InvalidArgument("training set is empty");
  }
  if (dataset.ClassWeight(rows, target) <= 0.0) {
    return Status::InvalidArgument(
        "training set has no examples of the target class");
  }

  // One engine for the whole run: the sorted-column cache survives across
  // every refinement of both phases, and the thread pool is spun up once.
  ConditionSearchEngine engine(dataset, config_.num_threads);
  PPhaseResult p_phase = RunPPhase(engine, rows, target, config_);
  NPhaseResult n_phase =
      RunNPhase(engine, p_phase.covered_rows, target,
                p_phase.total_positive_weight,
                p_phase.covered_positive_weight, config_);
  ScoreMatrix scores = ScoreMatrix::Build(dataset, rows, target,
                                          p_phase.rules, n_phase.rules,
                                          config_);
  if (info != nullptr) {
    info->num_p_rules = p_phase.rules.size();
    info->num_n_rules = n_phase.rules.size();
    info->p_coverage_fraction = p_phase.coverage_fraction();
    info->erased_positive_weight = n_phase.erased_positive_weight;
  }
  return PnruleClassifier(std::move(p_phase.rules), std::move(n_phase.rules),
                          std::move(scores), config_.use_score_matrix);
}

}  // namespace pnr
