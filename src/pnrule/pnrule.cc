#include "pnrule/pnrule.h"

#include <algorithm>
#include <vector>

#include "pnrule/n_phase.h"
#include "pnrule/p_phase.h"

namespace pnr {

PnruleClassifier::PnruleClassifier(RuleSet p_rules, RuleSet n_rules,
                                   ScoreMatrix scores, bool use_score_matrix)
    : p_rules_(std::move(p_rules)),
      n_rules_(std::move(n_rules)),
      scores_(std::move(scores)),
      use_score_matrix_(use_score_matrix),
      compiled_p_(CompiledRuleSet::Compile(p_rules_)),
      compiled_n_(CompiledRuleSet::Compile(n_rules_)) {}

double PnruleClassifier::Score(const Dataset& dataset, RowId row) const {
  const int p = p_rules_.FirstMatch(dataset, row);
  if (p == kNoRule) return 0.0;
  const int n = n_rules_.FirstMatch(dataset, row);
  if (!use_score_matrix_) {
    return n == kNoRule ? 1.0 : 0.0;
  }
  const size_t n_index =
      n == kNoRule ? n_rules_.size() : static_cast<size_t>(n);
  return scores_.Score(static_cast<size_t>(p), n_index);
}

void PnruleClassifier::ScoreBatch(const Dataset& dataset, const RowId* rows,
                                  size_t count, double* out,
                                  const BatchScoreOptions& options) const {
  ForEachRowBlock(count, ClampOptionsForDataset(dataset, options),
                  [&](size_t begin, size_t end) {
    const size_t n = end - begin;
    // thread_local so consecutive blocks on a worker reuse the scratch
    // masks instead of reallocating them; scratch contents never affect
    // results, so reuse cannot perturb scores.
    thread_local CompiledRuleSet::Scratch scratch;
    thread_local std::vector<int32_t> p_first;
    thread_local std::vector<int32_t> n_first;
    p_first.resize(n);
    compiled_p_.FirstMatchBlock(dataset, rows + begin, n, p_first.data(),
                                &scratch);
    // N-rules only arbitrate rows some P-rule claimed — pass the P-coverage
    // mask as the candidate set, so a rare-class block resolves N-rules
    // only for its few P-matched rows (or skips the sweep entirely).
    BitMask p_matched(n);
    bool any_p = false;
    for (size_t i = 0; i < n; ++i) {
      if (p_first[i] != kNoRule) {
        p_matched.Set(i);
        any_p = true;
      }
    }
    if (!any_p) {
      std::fill(out + begin, out + end, 0.0);
      return;
    }
    n_first.resize(n);
    compiled_n_.FirstMatchBlock(dataset, rows + begin, n, n_first.data(),
                                &scratch, &p_matched);
    for (size_t i = 0; i < n; ++i) {
      const int32_t p = p_first[i];
      if (p == kNoRule) {
        out[begin + i] = 0.0;
        continue;
      }
      const int32_t match = n_first[i];
      if (!use_score_matrix_) {
        out[begin + i] = match == kNoRule ? 1.0 : 0.0;
        continue;
      }
      const size_t n_index =
          match == kNoRule ? n_rules_.size() : static_cast<size_t>(match);
      out[begin + i] = scores_.Score(static_cast<size_t>(p), n_index);
    }
  });
}

std::string PnruleClassifier::Describe(const Schema& schema) const {
  std::string out = "PNrule model\nP-rules (presence of target):\n";
  out += p_rules_.ToString(schema);
  out += "N-rules (absence of target):\n";
  out += n_rules_.empty() ? "(none)\n" : n_rules_.ToString(schema);
  if (use_score_matrix_) {
    out += "ScoreMatrix:\n" + scores_.ToString();
  } else {
    out += "ScoreMatrix: disabled (strict P AND NOT N semantics)\n";
  }
  return out;
}

PnruleLearner::PnruleLearner(PnruleConfig config)
    : config_(std::move(config)) {}

StatusOr<PnruleClassifier> PnruleLearner::Train(const Dataset& dataset,
                                                CategoryId target) const {
  return TrainOnRows(dataset, dataset.AllRows(), target);
}

StatusOr<PnruleClassifier> PnruleLearner::TrainOnRows(
    const Dataset& dataset, const RowSubset& rows, CategoryId target,
    PnruleTrainInfo* info) const {
  Status status = config_.Validate();
  if (!status.ok()) return status;
  if (rows.empty()) {
    return Status::InvalidArgument("training set is empty");
  }
  if (dataset.ClassWeight(rows, target) <= 0.0) {
    return Status::InvalidArgument(
        "training set has no examples of the target class");
  }

  // One engine for the whole run: the sorted-column cache survives across
  // every refinement of both phases, and the thread pool is spun up once.
  ConditionSearchEngine engine(dataset, config_.num_threads,
                               config_.search_cache_budget_bytes);
  PPhaseResult p_phase = RunPPhase(engine, rows, target, config_);
  NPhaseResult n_phase =
      RunNPhase(engine, p_phase.covered_rows, target,
                p_phase.total_positive_weight,
                p_phase.covered_positive_weight, config_);
  ScoreMatrix scores = ScoreMatrix::Build(dataset, rows, target,
                                          p_phase.rules, n_phase.rules,
                                          config_);
  if (info != nullptr) {
    info->num_p_rules = p_phase.rules.size();
    info->num_n_rules = n_phase.rules.size();
    info->p_coverage_fraction = p_phase.coverage_fraction();
    info->erased_positive_weight = n_phase.erased_positive_weight;
  }
  return PnruleClassifier(std::move(p_phase.rules), std::move(n_phase.rules),
                          std::move(scores), config_.use_score_matrix);
}

}  // namespace pnr
