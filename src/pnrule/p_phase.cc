#include "pnrule/p_phase.h"

#include <cassert>

#include "induction/condition_search.h"

namespace pnr {

bool ClearsRefinementGain(double value, double current, double min_gain) {
  if (current <= 0.0) return value > current;
  return value > current * (1.0 + min_gain);
}

Rule GrowPresenceRule(ConditionSearchEngine& engine, const RowSubset& remaining,
                      CategoryId target, const RuleMetric& metric,
                      const ClassDistribution& dist, double min_support_weight,
                      size_t max_length, bool enable_range_conditions,
                      double min_refinement_gain) {
  const Dataset& dataset = engine.dataset();
  Rule rule;
  RowSubset covered = remaining;
  // The empty rule covers everything: metric value 0 by construction for
  // Z-number (accuracy equals the prior); other metrics also yield 0 for a
  // non-split. Any useful first condition must therefore score > 0.
  double current_value = 0.0;

  ConditionSearchOptions options;
  options.enable_range_conditions = enable_range_conditions;
  options.min_covered_weight = min_support_weight;

  ConditionScorer scorer = [&](const RuleStats& stats) {
    return metric.Evaluate(stats, dist);
  };

  while (max_length == 0 || rule.size() < max_length) {
    const auto candidate = engine.FindBest(covered, target, scorer, options);
    if (!candidate.has_value()) break;
    // Accept the refinement R1 over R only if the metric value improves
    // meaningfully (paper section 2.2); the support constraint is enforced
    // inside the search.
    if (!ClearsRefinementGain(candidate->value, current_value,
                              min_refinement_gain)) {
      break;
    }
    rule.AddCondition(candidate->condition);
    rule.train_stats = candidate->stats;
    current_value = candidate->value;
    covered = rule.CoveredRows(dataset, covered);
    // All positives captured and no negatives left: nothing to refine.
    if (candidate->stats.negative() <= 0.0) break;
  }
  return rule;
}

Rule GrowPresenceRule(const Dataset& dataset, const RowSubset& remaining,
                      CategoryId target, const RuleMetric& metric,
                      const ClassDistribution& dist, double min_support_weight,
                      size_t max_length, bool enable_range_conditions,
                      double min_refinement_gain) {
  ConditionSearchEngine engine(dataset, /*num_threads=*/1);
  return GrowPresenceRule(engine, remaining, target, metric, dist,
                          min_support_weight, max_length,
                          enable_range_conditions, min_refinement_gain);
}

PPhaseResult RunPPhase(ConditionSearchEngine& engine, const RowSubset& rows,
                       CategoryId target, const PnruleConfig& config) {
  const Dataset& dataset = engine.dataset();
  PPhaseResult result;
  result.total_positive_weight = dataset.ClassWeight(rows, target);
  if (result.total_positive_weight <= 0.0) return result;

  const auto metric = MakeRuleMetric(config.metric);
  const double min_support_weight =
      config.min_support_fraction * result.total_positive_weight;
  const bool enable_range =
      config.enable_range_conditions && !config.legacy_mode;

  RowSubset remaining = rows;
  while (result.rules.size() < config.max_p_rules) {
    ClassDistribution dist;
    dist.positives = dataset.ClassWeight(remaining, target);
    dist.negatives = dataset.TotalWeight(remaining) - dist.positives;
    if (dist.positives <= 0.0) break;

    Rule rule = GrowPresenceRule(engine, remaining, target, *metric, dist,
                                 min_support_weight, config.max_p_rule_length,
                                 enable_range, config.min_refinement_gain);
    if (rule.empty() || rule.train_stats.positive <= 0.0) break;

    if (!config.legacy_mode &&
        result.coverage_fraction() >= config.min_coverage_fraction) {
      // Coverage goal met: only high-accuracy rules may still enter.
      if (rule.train_stats.accuracy() < config.p_accuracy_after_coverage) {
        break;
      }
    }

    RowSubset covered = rule.CoveredRows(dataset, remaining);
    result.covered_positive_weight += rule.train_stats.positive;
    result.rules.AddRule(std::move(rule));
    // Sequential covering: remove every record the rule supports (positive
    // and negative) before learning the next rule.
    RowSubset next;
    next.reserve(remaining.size() - covered.size());
    size_t c = 0;
    for (RowId row : remaining) {
      if (c < covered.size() && covered[c] == row) {
        ++c;
        result.covered_rows.push_back(row);
      } else {
        next.push_back(row);
      }
    }
    remaining = std::move(next);
  }
  return result;
}

PPhaseResult RunPPhase(const Dataset& dataset, const RowSubset& rows,
                       CategoryId target, const PnruleConfig& config) {
  ConditionSearchEngine engine(dataset, config.num_threads);
  return RunPPhase(engine, rows, target, config);
}

}  // namespace pnr
