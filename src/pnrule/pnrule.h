// PNrule: the paper's two-phase rule-induction learner and its classifier.
//
// Usage:
//   PnruleConfig config;            // rp/rn and other controls
//   PnruleLearner learner(config);
//   auto model = learner.Train(train, target_class_id);
//   if (model.ok()) {
//     bool is_target = model->Predict(test, row);
//     double prob = model->Score(test, row);
//   }

#ifndef PNR_PNRULE_PNRULE_H_
#define PNR_PNRULE_PNRULE_H_

#include <string>

#include "eval/classifier.h"
#include "pnrule/config.h"
#include "pnrule/score_matrix.h"
#include "rules/compiled_rule_set.h"
#include "rules/rule_set.h"

namespace pnr {

/// A trained PNrule model: ranked P-rules, ranked N-rules and the
/// ScoreMatrix that arbitrates their combinations.
class PnruleClassifier : public BinaryClassifier {
 public:
  PnruleClassifier(RuleSet p_rules, RuleSet n_rules, ScoreMatrix scores,
                   bool use_score_matrix);

  /// Classification strategy (paper section 2.3): apply P-rules in ranked
  /// order; if none applies the score is 0. Otherwise apply N-rules in
  /// ranked order and return the ScoreMatrix entry for the (first P-rule,
  /// first N-rule) combination.
  double Score(const Dataset& dataset, RowId row) const override;

  /// Compiled fast path: first-match P and N resolution runs
  /// column-at-a-time per row block (rules/compiled_rule_set.h), the
  /// ScoreMatrix lookup per block. Bit-identical to Score per row.
  void ScoreBatch(const Dataset& dataset, const RowId* rows, size_t count,
                  double* out,
                  const BatchScoreOptions& options = {}) const override;

  std::string Describe(const Schema& schema) const override;

  const RuleSet& p_rules() const { return p_rules_; }
  const RuleSet& n_rules() const { return n_rules_; }
  const ScoreMatrix& score_matrix() const { return scores_; }
  bool use_score_matrix() const { return use_score_matrix_; }

 private:
  RuleSet p_rules_;
  RuleSet n_rules_;
  ScoreMatrix scores_;
  bool use_score_matrix_;
  CompiledRuleSet compiled_p_;  ///< matcher program for p_rules_
  CompiledRuleSet compiled_n_;  ///< matcher program for n_rules_
};

/// Diagnostic summary of a training run.
struct PnruleTrainInfo {
  size_t num_p_rules = 0;
  size_t num_n_rules = 0;
  /// Fraction of the target class covered by P-rules (upper recall bound).
  double p_coverage_fraction = 0.0;
  /// Target-class weight erased by N-rules on the training set.
  double erased_positive_weight = 0.0;
};

/// Trains PNrule models.
class PnruleLearner {
 public:
  explicit PnruleLearner(PnruleConfig config = {});

  const PnruleConfig& config() const { return config_; }

  /// Learns a binary model for `target` from all rows of `dataset`.
  StatusOr<PnruleClassifier> Train(const Dataset& dataset,
                                   CategoryId target) const;

  /// Learns from an explicit subset of rows. `info`, when non-null,
  /// receives training diagnostics.
  StatusOr<PnruleClassifier> TrainOnRows(const Dataset& dataset,
                                         const RowSubset& rows,
                                         CategoryId target,
                                         PnruleTrainInfo* info = nullptr) const;

 private:
  PnruleConfig config_;
};

}  // namespace pnr

#endif  // PNR_PNRULE_PNRULE_H_
