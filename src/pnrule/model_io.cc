#include "pnrule/model_io.h"

#include <algorithm>
#include <sstream>

#include "common/file_io.h"
#include "common/string_util.h"

namespace pnr {
namespace {

void WriteCondition(std::ostringstream* out, const Condition& condition,
                    const Schema& schema) {
  const Attribute& attr = schema.attribute(condition.attr);
  *out << "cond ";
  switch (condition.op) {
    case ConditionOp::kCatEqual:
      *out << "cat " << attr.name() << ' '
           << attr.CategoryName(condition.category);
      break;
    case ConditionOp::kLessEqual:
      *out << "le " << attr.name() << ' ' << condition.hi;
      break;
    case ConditionOp::kGreater:
      *out << "gt " << attr.name() << ' ' << condition.lo;
      break;
    case ConditionOp::kInRange:
      *out << "range " << attr.name() << ' ' << condition.lo << ' '
           << condition.hi;
      break;
  }
  *out << '\n';
}

void WriteRuleSet(std::ostringstream* out, const RuleSet& rules,
                  const Schema& schema, const char* header) {
  *out << header << ' ' << rules.size() << '\n';
  for (const Rule& rule : rules.rules()) {
    *out << "rule " << rule.size() << ' ' << rule.train_stats.covered << ' '
         << rule.train_stats.positive << '\n';
    for (const Condition& condition : rule.conditions()) {
      WriteCondition(out, condition, schema);
    }
  }
}

// Line-cursor over the serialized text. Trimming each line makes the
// parser indifferent to CRLF endings and trailing whitespace — model files
// that round-tripped through Windows editors or copy-paste parse the same
// as pristine ones. Tracks the 1-based physical line number so every parse
// error (including EOF mid-record) can name where it happened.
class LineReader {
 public:
  explicit LineReader(const std::string& text) : stream_(text) {}

  /// Next non-empty line (trimmed); false at end of input.
  bool Next(std::string* line) {
    while (std::getline(stream_, *line)) {
      ++line_;
      *line = std::string(TrimWhitespace(*line));
      if (!line->empty()) return true;
    }
    return false;
  }

  /// Physical line of the last line Next returned (0 before the first).
  size_t line() const { return line_; }

 private:
  std::istringstream stream_;
  size_t line_ = 0;
};

// Error on the content of line `line`.
Status ParseError(size_t line, const std::string& detail) {
  return Status::InvalidArgument("model parse error at line " +
                                 std::to_string(line) + ": " + detail);
}

// Error for input that ended mid-record: names the last line that existed
// and what the parser was still waiting for, so a truncated file is
// distinguishable from a malformed one.
Status TruncatedError(const LineReader& reader, const std::string& expected) {
  return Status::InvalidArgument(
      "model parse error: unexpected end of input after line " +
      std::to_string(reader.line()) + ": expected " + expected);
}

StatusOr<Condition> ParseCondition(const std::vector<std::string>& tokens,
                                   const Schema& schema, size_t line) {
  if (tokens.size() < 4 || tokens[0] != "cond") {
    return ParseError(line, "expected a condition line");
  }
  auto attr_or = schema.FindAttribute(tokens[2]);
  if (!attr_or.ok()) {
    return ParseError(line, "unknown attribute '" + tokens[2] + "'");
  }
  const AttrIndex attr = *attr_or;
  const std::string& kind = tokens[1];
  if (kind == "cat") {
    if (!schema.attribute(attr).is_categorical()) {
      return ParseError(line, "'" + tokens[2] + "' is not categorical");
    }
    const CategoryId value = schema.attribute(attr).FindCategory(tokens[3]);
    if (value == kInvalidCategory) {
      return Status::NotFound("model parse error at line " +
                              std::to_string(line) + ": category '" +
                              tokens[3] + "' not in attribute '" + tokens[2] +
                              "'");
    }
    return Condition::CatEqual(attr, value);
  }
  if (!schema.attribute(attr).is_numeric()) {
    return ParseError(line, "'" + tokens[2] + "' is not numeric");
  }
  double a = 0.0;
  if (!ParseDouble(tokens[3], &a)) return ParseError(line, "bad number");
  if (kind == "le") return Condition::LessEqual(attr, a);
  if (kind == "gt") return Condition::Greater(attr, a);
  if (kind == "range") {
    double b = 0.0;
    if (tokens.size() < 5 || !ParseDouble(tokens[4], &b) || b < a) {
      return ParseError(line, "bad range bounds");
    }
    return Condition::InRange(attr, a, b);
  }
  return ParseError(line, "unknown condition kind '" + kind + "'");
}

StatusOr<RuleSet> ParseRuleSet(LineReader* reader, const Schema& schema,
                               const std::string& header_line,
                               const char* expected_header) {
  const auto header = SplitWhitespace(header_line);
  long long count = 0;
  if (header.size() != 2 || header[0] != expected_header ||
      !ParseInt64(header[1], &count) || count < 0) {
    return ParseError(reader->line(), std::string("expected '") +
                                          expected_header + " <count>'");
  }
  RuleSet rules;
  std::string line;
  for (long long r = 0; r < count; ++r) {
    if (!reader->Next(&line)) {
      return TruncatedError(*reader,
                            "rule " + std::to_string(r + 1) + " of " +
                                std::to_string(count) + " in " +
                                expected_header);
    }
    const auto rule_header = SplitWhitespace(line);
    long long num_conditions = 0;
    double covered = 0.0;
    double positive = 0.0;
    if (rule_header.size() != 4 || rule_header[0] != "rule" ||
        !ParseInt64(rule_header[1], &num_conditions) ||
        !ParseDouble(rule_header[2], &covered) ||
        !ParseDouble(rule_header[3], &positive) || num_conditions < 0) {
      return ParseError(reader->line(), "bad rule header '" + line + "'");
    }
    Rule rule;
    for (long long c = 0; c < num_conditions; ++c) {
      if (!reader->Next(&line)) {
        return TruncatedError(*reader,
                              "condition " + std::to_string(c + 1) + " of " +
                                  std::to_string(num_conditions));
      }
      auto condition =
          ParseCondition(SplitWhitespace(line), schema, reader->line());
      if (!condition.ok()) return condition.status();
      rule.AddCondition(*condition);
    }
    rule.train_stats.covered = covered;
    rule.train_stats.positive = positive;
    rules.AddRule(std::move(rule));
  }
  return rules;
}

}  // namespace

std::string SerializePnruleModel(const PnruleClassifier& model,
                                 const Schema& schema) {
  std::ostringstream out;
  out.precision(17);
  out << "pnrule-model v1\n";
  out << "threshold " << model.threshold() << '\n';
  out << "use_score_matrix " << (model.use_score_matrix() ? 1 : 0) << '\n';
  WriteRuleSet(&out, model.p_rules(), schema, "p-rules");
  WriteRuleSet(&out, model.n_rules(), schema, "n-rules");
  const ScoreMatrix& scores = model.score_matrix();
  out << "scores " << scores.num_p_rules() << ' ' << scores.num_n_rules()
      << '\n';
  for (size_t p = 0; p < scores.num_p_rules(); ++p) {
    for (size_t n = 0; n <= scores.num_n_rules(); ++n) {
      if (n > 0) out << ' ';
      out << scores.Score(p, n) << ':' << scores.CellWeight(p, n);
    }
    out << '\n';
  }
  out << "end\n";
  return out.str();
}

StatusOr<PnruleClassifier> ParsePnruleModel(const std::string& text,
                                            const Schema& schema) {
  LineReader reader(text);
  std::string line;
  if (!reader.Next(&line)) {
    return TruncatedError(reader, "'pnrule-model v1' header");
  }
  const auto header = SplitWhitespace(line);
  if (header.size() != 2 || header[0] != "pnrule-model") {
    return ParseError(reader.line(), "missing 'pnrule-model v1' header");
  }
  if (header[1] != "v1") {
    // Name the version so the operator knows it is a reader/writer skew,
    // not a corrupt file.
    return Status::InvalidArgument("unsupported model format version '" +
                                   header[1] + "' (this build reads v1)");
  }
  if (!reader.Next(&line)) return TruncatedError(reader, "'threshold <t>'");
  auto tokens = SplitWhitespace(line);
  double threshold = 0.5;
  if (tokens.size() != 2 || tokens[0] != "threshold" ||
      !ParseDouble(tokens[1], &threshold)) {
    return ParseError(reader.line(), "expected 'threshold <t>'");
  }
  if (!reader.Next(&line)) {
    return TruncatedError(reader, "'use_score_matrix <0|1>'");
  }
  tokens = SplitWhitespace(line);
  long long use_matrix = 1;
  if (tokens.size() != 2 || tokens[0] != "use_score_matrix" ||
      !ParseInt64(tokens[1], &use_matrix)) {
    return ParseError(reader.line(), "expected 'use_score_matrix <0|1>'");
  }

  if (!reader.Next(&line)) {
    return TruncatedError(reader, "'p-rules <count>'");
  }
  auto p_rules = ParseRuleSet(&reader, schema, line, "p-rules");
  if (!p_rules.ok()) return p_rules.status();
  if (!reader.Next(&line)) {
    return TruncatedError(reader, "'n-rules <count>'");
  }
  auto n_rules = ParseRuleSet(&reader, schema, line, "n-rules");
  if (!n_rules.ok()) return n_rules.status();

  if (!reader.Next(&line)) {
    return TruncatedError(reader, "'scores <p> <n>' header");
  }
  tokens = SplitWhitespace(line);
  long long num_p = 0;
  long long num_n = 0;
  if (tokens.size() != 3 || tokens[0] != "scores" ||
      !ParseInt64(tokens[1], &num_p) || !ParseInt64(tokens[2], &num_n) ||
      num_p != static_cast<long long>(p_rules->size()) ||
      num_n != static_cast<long long>(n_rules->size())) {
    return ParseError(reader.line(), "score matrix header mismatch");
  }
  std::vector<double> scores;
  std::vector<double> weights;
  scores.reserve(static_cast<size_t>(num_p * (num_n + 1)));
  for (long long p = 0; p < num_p; ++p) {
    if (!reader.Next(&line)) {
      return TruncatedError(reader, "score row " + std::to_string(p + 1) +
                                        " of " + std::to_string(num_p));
    }
    const auto cells = SplitWhitespace(line);
    if (cells.size() != static_cast<size_t>(num_n + 1)) {
      return ParseError(reader.line(), "wrong score-row arity");
    }
    for (const std::string& cell : cells) {
      const auto parts = SplitString(cell, ':');
      double score = 0.0;
      double weight = 0.0;
      if (parts.size() != 2 || !ParseDouble(parts[0], &score) ||
          !ParseDouble(parts[1], &weight)) {
        return ParseError(reader.line(), "bad score cell '" + cell + "'");
      }
      scores.push_back(score);
      weights.push_back(weight);
    }
  }
  if (!reader.Next(&line)) return TruncatedError(reader, "'end' marker");
  if (line != "end") return ParseError(reader.line(), "missing 'end' marker");
  // Anything after 'end' means the file was concatenated or corrupted;
  // silently ignoring it would mask exactly the truncation/garbling bugs
  // this parser exists to catch.
  if (reader.Next(&line)) {
    return ParseError(reader.line(), "trailing content after 'end'");
  }

  PnruleClassifier model(
      std::move(*p_rules), std::move(*n_rules),
      ScoreMatrix::FromValues(static_cast<size_t>(num_p),
                              static_cast<size_t>(num_n), std::move(scores),
                              std::move(weights)),
      use_matrix != 0);
  model.set_threshold(threshold);
  return model;
}

Status SavePnruleModel(const PnruleClassifier& model, const Schema& schema,
                       const std::string& path) {
  // Goes through file_io so fault-injection tests can exercise failed and
  // short writes; a failed save must surface as a clean IOError, never as a
  // silently truncated model file mistaken for success.
  return WriteStringToFile(SerializePnruleModel(model, schema), path);
}

StatusOr<PnruleClassifier> LoadPnruleModel(const std::string& path,
                                           const Schema& schema) {
  auto text = ReadFileToString(path);
  if (!text.ok()) return text.status();
  return ParsePnruleModel(*text, schema);
}

std::string SerializeMultiClassModel(const MultiClassPnruleClassifier& model,
                                     const Schema& schema) {
  std::ostringstream out;
  out.precision(17);
  out << "pnrule-multiclass v1\n";
  out << "classes " << model.num_classes() << '\n';
  out << "default "
      << schema.class_attr().CategoryName(model.default_class()) << '\n';
  for (size_t cls = 0; cls < model.num_classes(); ++cls) {
    const double weight = model.class_weights()[cls];
    const PnruleClassifier* binary =
        model.model_for(static_cast<CategoryId>(cls));
    if (binary == nullptr) {
      out << "class " << cls << ' ' << weight << " absent\n";
      continue;
    }
    // Prefix the embedded block with its exact line count so the parser
    // never confuses the block's own "end" with the wrapper's.
    const std::string block = SerializePnruleModel(*binary, schema);
    const size_t lines =
        static_cast<size_t>(std::count(block.begin(), block.end(), '\n'));
    out << "class " << cls << ' ' << weight << " model " << lines << '\n';
    out << block;
  }
  out << "end\n";
  return out.str();
}

StatusOr<MultiClassPnruleClassifier> ParseMultiClassModel(
    const std::string& text, const Schema& schema) {
  LineReader reader(text);
  std::string line;
  if (!reader.Next(&line)) {
    return TruncatedError(reader, "'pnrule-multiclass v1' header");
  }
  auto tokens = SplitWhitespace(line);
  if (tokens.size() != 2 || tokens[0] != "pnrule-multiclass") {
    return ParseError(reader.line(),
                      "missing 'pnrule-multiclass v1' header");
  }
  if (tokens[1] != "v1") {
    return Status::InvalidArgument(
        "unsupported multiclass model format version '" + tokens[1] +
        "' (this build reads v1)");
  }
  if (!reader.Next(&line)) return TruncatedError(reader, "'classes <n>'");
  tokens = SplitWhitespace(line);
  long long num_classes = 0;
  if (tokens.size() != 2 || tokens[0] != "classes" ||
      !ParseInt64(tokens[1], &num_classes) || num_classes < 2) {
    return ParseError(reader.line(), "expected 'classes <n>' with n >= 2");
  }
  if (num_classes != static_cast<long long>(schema.num_classes())) {
    return ParseError(reader.line(),
                      "model has " + std::to_string(num_classes) +
                          " classes but the schema has " +
                          std::to_string(schema.num_classes()));
  }
  if (!reader.Next(&line)) {
    return TruncatedError(reader, "'default <class name>'");
  }
  tokens = SplitWhitespace(line);
  if (tokens.size() != 2 || tokens[0] != "default") {
    return ParseError(reader.line(), "expected 'default <class name>'");
  }
  const CategoryId default_class = schema.class_attr().FindCategory(tokens[1]);
  if (default_class == kInvalidCategory) {
    return Status::NotFound("model parse error at line " +
                            std::to_string(reader.line()) +
                            ": default class '" + tokens[1] +
                            "' not in the schema");
  }

  std::vector<std::optional<PnruleClassifier>> models(
      static_cast<size_t>(num_classes));
  std::vector<double> weights(static_cast<size_t>(num_classes), 1.0);
  for (long long cls = 0; cls < num_classes; ++cls) {
    if (!reader.Next(&line)) {
      return TruncatedError(reader, "record for class " + std::to_string(cls));
    }
    tokens = SplitWhitespace(line);
    long long index = -1;
    double weight = 1.0;
    if (tokens.size() < 4 || tokens[0] != "class" ||
        !ParseInt64(tokens[1], &index) || index != cls ||
        !ParseDouble(tokens[2], &weight)) {
      return ParseError(reader.line(), "expected 'class " +
                                           std::to_string(cls) +
                                           " <weight> absent|model <lines>'");
    }
    weights[static_cast<size_t>(cls)] = weight;
    if (tokens[3] == "absent") {
      if (tokens.size() != 4) {
        return ParseError(reader.line(), "trailing tokens after 'absent'");
      }
      continue;
    }
    long long block_lines = 0;
    if (tokens.size() != 5 || tokens[3] != "model" ||
        !ParseInt64(tokens[4], &block_lines) || block_lines <= 0) {
      return ParseError(reader.line(), "expected 'model <lines>'");
    }
    std::string block;
    for (long long i = 0; i < block_lines; ++i) {
      if (!reader.Next(&line)) {
        return TruncatedError(reader, "line " + std::to_string(i + 1) +
                                          " of " + std::to_string(block_lines) +
                                          " of class " + std::to_string(cls) +
                                          "'s model");
      }
      block += line;
      block += '\n';
    }
    auto binary = ParsePnruleModel(block, schema);
    if (!binary.ok()) {
      return Status::InvalidArgument("class " + std::to_string(cls) +
                                     "'s embedded model: " +
                                     binary.status().message());
    }
    models[static_cast<size_t>(cls)] = std::move(binary).value();
  }
  if (!reader.Next(&line)) return TruncatedError(reader, "'end' marker");
  if (line != "end") return ParseError(reader.line(), "missing 'end' marker");
  if (reader.Next(&line)) {
    return ParseError(reader.line(), "trailing content after 'end'");
  }
  return MultiClassPnruleClassifier(std::move(models), std::move(weights),
                                    default_class);
}

Status SaveMultiClassModel(const MultiClassPnruleClassifier& model,
                           const Schema& schema, const std::string& path) {
  return WriteStringToFile(SerializeMultiClassModel(model, schema), path);
}

StatusOr<MultiClassPnruleClassifier> LoadMultiClassModel(
    const std::string& path, const Schema& schema) {
  auto text = ReadFileToString(path);
  if (!text.ok()) return text.status();
  return ParseMultiClassModel(*text, schema);
}

}  // namespace pnr
