#include "pnrule/model_io.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace pnr {
namespace {

void WriteCondition(std::ostringstream* out, const Condition& condition,
                    const Schema& schema) {
  const Attribute& attr = schema.attribute(condition.attr);
  *out << "cond ";
  switch (condition.op) {
    case ConditionOp::kCatEqual:
      *out << "cat " << attr.name() << ' '
           << attr.CategoryName(condition.category);
      break;
    case ConditionOp::kLessEqual:
      *out << "le " << attr.name() << ' ' << condition.hi;
      break;
    case ConditionOp::kGreater:
      *out << "gt " << attr.name() << ' ' << condition.lo;
      break;
    case ConditionOp::kInRange:
      *out << "range " << attr.name() << ' ' << condition.lo << ' '
           << condition.hi;
      break;
  }
  *out << '\n';
}

void WriteRuleSet(std::ostringstream* out, const RuleSet& rules,
                  const Schema& schema, const char* header) {
  *out << header << ' ' << rules.size() << '\n';
  for (const Rule& rule : rules.rules()) {
    *out << "rule " << rule.size() << ' ' << rule.train_stats.covered << ' '
         << rule.train_stats.positive << '\n';
    for (const Condition& condition : rule.conditions()) {
      WriteCondition(out, condition, schema);
    }
  }
}

// Line-cursor over the serialized text. Trimming each line makes the
// parser indifferent to CRLF endings and trailing whitespace — model files
// that round-tripped through Windows editors or copy-paste parse the same
// as pristine ones.
class LineReader {
 public:
  explicit LineReader(const std::string& text) : stream_(text) {}

  /// Next non-empty line (trimmed); false at end of input.
  bool Next(std::string* line) {
    while (std::getline(stream_, *line)) {
      *line = std::string(TrimWhitespace(*line));
      if (!line->empty()) return true;
    }
    return false;
  }

 private:
  std::istringstream stream_;
};

Status ParseError(const std::string& detail) {
  return Status::InvalidArgument("model parse error: " + detail);
}

StatusOr<Condition> ParseCondition(const std::vector<std::string>& tokens,
                                   const Schema& schema) {
  if (tokens.size() < 4 || tokens[0] != "cond") {
    return ParseError("expected a condition line");
  }
  auto attr_or = schema.FindAttribute(tokens[2]);
  if (!attr_or.ok()) return attr_or.status();
  const AttrIndex attr = *attr_or;
  const std::string& kind = tokens[1];
  if (kind == "cat") {
    if (!schema.attribute(attr).is_categorical()) {
      return ParseError("'" + tokens[2] + "' is not categorical");
    }
    const CategoryId value = schema.attribute(attr).FindCategory(tokens[3]);
    if (value == kInvalidCategory) {
      return Status::NotFound("category '" + tokens[3] +
                              "' not in attribute '" + tokens[2] + "'");
    }
    return Condition::CatEqual(attr, value);
  }
  if (!schema.attribute(attr).is_numeric()) {
    return ParseError("'" + tokens[2] + "' is not numeric");
  }
  double a = 0.0;
  if (!ParseDouble(tokens[3], &a)) return ParseError("bad number");
  if (kind == "le") return Condition::LessEqual(attr, a);
  if (kind == "gt") return Condition::Greater(attr, a);
  if (kind == "range") {
    double b = 0.0;
    if (tokens.size() < 5 || !ParseDouble(tokens[4], &b) || b < a) {
      return ParseError("bad range bounds");
    }
    return Condition::InRange(attr, a, b);
  }
  return ParseError("unknown condition kind '" + kind + "'");
}

StatusOr<RuleSet> ParseRuleSet(LineReader* reader, const Schema& schema,
                               const std::string& header_line,
                               const char* expected_header) {
  const auto header = SplitWhitespace(header_line);
  long long count = 0;
  if (header.size() != 2 || header[0] != expected_header ||
      !ParseInt64(header[1], &count) || count < 0) {
    return ParseError(std::string("expected '") + expected_header +
                      " <count>'");
  }
  RuleSet rules;
  std::string line;
  for (long long r = 0; r < count; ++r) {
    if (!reader->Next(&line)) return ParseError("truncated rule list");
    const auto rule_header = SplitWhitespace(line);
    long long num_conditions = 0;
    double covered = 0.0;
    double positive = 0.0;
    if (rule_header.size() != 4 || rule_header[0] != "rule" ||
        !ParseInt64(rule_header[1], &num_conditions) ||
        !ParseDouble(rule_header[2], &covered) ||
        !ParseDouble(rule_header[3], &positive)) {
      return ParseError("bad rule header '" + line + "'");
    }
    Rule rule;
    for (long long c = 0; c < num_conditions; ++c) {
      if (!reader->Next(&line)) return ParseError("truncated conditions");
      auto condition = ParseCondition(SplitWhitespace(line), schema);
      if (!condition.ok()) return condition.status();
      rule.AddCondition(*condition);
    }
    rule.train_stats.covered = covered;
    rule.train_stats.positive = positive;
    rules.AddRule(std::move(rule));
  }
  return rules;
}

}  // namespace

std::string SerializePnruleModel(const PnruleClassifier& model,
                                 const Schema& schema) {
  std::ostringstream out;
  out.precision(17);
  out << "pnrule-model v1\n";
  out << "threshold " << model.threshold() << '\n';
  out << "use_score_matrix " << (model.use_score_matrix() ? 1 : 0) << '\n';
  WriteRuleSet(&out, model.p_rules(), schema, "p-rules");
  WriteRuleSet(&out, model.n_rules(), schema, "n-rules");
  const ScoreMatrix& scores = model.score_matrix();
  out << "scores " << scores.num_p_rules() << ' ' << scores.num_n_rules()
      << '\n';
  for (size_t p = 0; p < scores.num_p_rules(); ++p) {
    for (size_t n = 0; n <= scores.num_n_rules(); ++n) {
      if (n > 0) out << ' ';
      out << scores.Score(p, n) << ':' << scores.CellWeight(p, n);
    }
    out << '\n';
  }
  out << "end\n";
  return out.str();
}

StatusOr<PnruleClassifier> ParsePnruleModel(const std::string& text,
                                            const Schema& schema) {
  LineReader reader(text);
  std::string line;
  if (!reader.Next(&line)) {
    return ParseError("missing 'pnrule-model v1' header");
  }
  const auto header = SplitWhitespace(line);
  if (header.size() != 2 || header[0] != "pnrule-model") {
    return ParseError("missing 'pnrule-model v1' header");
  }
  if (header[1] != "v1") {
    // Name the version so the operator knows it is a reader/writer skew,
    // not a corrupt file.
    return Status::InvalidArgument("unsupported model format version '" +
                                   header[1] + "' (this build reads v1)");
  }
  if (!reader.Next(&line)) return ParseError("truncated input");
  auto tokens = SplitWhitespace(line);
  double threshold = 0.5;
  if (tokens.size() != 2 || tokens[0] != "threshold" ||
      !ParseDouble(tokens[1], &threshold)) {
    return ParseError("expected 'threshold <t>'");
  }
  if (!reader.Next(&line)) return ParseError("truncated input");
  tokens = SplitWhitespace(line);
  long long use_matrix = 1;
  if (tokens.size() != 2 || tokens[0] != "use_score_matrix" ||
      !ParseInt64(tokens[1], &use_matrix)) {
    return ParseError("expected 'use_score_matrix <0|1>'");
  }

  if (!reader.Next(&line)) return ParseError("truncated input");
  auto p_rules = ParseRuleSet(&reader, schema, line, "p-rules");
  if (!p_rules.ok()) return p_rules.status();
  if (!reader.Next(&line)) return ParseError("truncated input");
  auto n_rules = ParseRuleSet(&reader, schema, line, "n-rules");
  if (!n_rules.ok()) return n_rules.status();

  if (!reader.Next(&line)) return ParseError("truncated input");
  tokens = SplitWhitespace(line);
  long long num_p = 0;
  long long num_n = 0;
  if (tokens.size() != 3 || tokens[0] != "scores" ||
      !ParseInt64(tokens[1], &num_p) || !ParseInt64(tokens[2], &num_n) ||
      num_p != static_cast<long long>(p_rules->size()) ||
      num_n != static_cast<long long>(n_rules->size())) {
    return ParseError("score matrix header mismatch");
  }
  std::vector<double> scores;
  std::vector<double> weights;
  scores.reserve(static_cast<size_t>(num_p * (num_n + 1)));
  for (long long p = 0; p < num_p; ++p) {
    if (!reader.Next(&line)) return ParseError("truncated score matrix");
    const auto cells = SplitWhitespace(line);
    if (cells.size() != static_cast<size_t>(num_n + 1)) {
      return ParseError("wrong score-row arity");
    }
    for (const std::string& cell : cells) {
      const auto parts = SplitString(cell, ':');
      double score = 0.0;
      double weight = 0.0;
      if (parts.size() != 2 || !ParseDouble(parts[0], &score) ||
          !ParseDouble(parts[1], &weight)) {
        return ParseError("bad score cell '" + cell + "'");
      }
      scores.push_back(score);
      weights.push_back(weight);
    }
  }
  if (!reader.Next(&line) || line != "end") {
    return ParseError("missing 'end' marker");
  }

  PnruleClassifier model(
      std::move(*p_rules), std::move(*n_rules),
      ScoreMatrix::FromValues(static_cast<size_t>(num_p),
                              static_cast<size_t>(num_n), std::move(scores),
                              std::move(weights)),
      use_matrix != 0);
  model.set_threshold(threshold);
  return model;
}

Status SavePnruleModel(const PnruleClassifier& model, const Schema& schema,
                       const std::string& path) {
  std::ofstream file(path);
  if (!file) return Status::IOError("cannot open '" + path + "' for write");
  file << SerializePnruleModel(model, schema);
  if (!file) return Status::IOError("write to '" + path + "' failed");
  return Status::OK();
}

StatusOr<PnruleClassifier> LoadPnruleModel(const std::string& path,
                                           const Schema& schema) {
  std::ifstream file(path);
  if (!file) return Status::IOError("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParsePnruleModel(buffer.str(), schema);
}

}  // namespace pnr
