// Text serialization of trained PNrule models.
//
// Models are written in a line-oriented, human-diffable format that
// references attributes and classes *by name*, so a model can be loaded
// against any dataset whose schema contains the same attributes (a
// production deployment rarely classifies against the exact Dataset object
// it was trained on).
//
// Format (v1):
//   pnrule-model v1
//   threshold <t>
//   use_score_matrix <0|1>
//   p-rules <n>
//   rule <k> <covered> <positive>
//   cond cat <attr> <value>            | cond le <attr> <hi>
//   cond gt <attr> <lo>                | cond range <attr> <lo> <hi>
//   ...
//   n-rules <n>
//   ...
//   scores <num_p> <num_n>
//   <num_p lines of num_n+1 "score:weight" cells>
//   end

// Multi-class committees use a wrapper format (v1) that embeds one binary
// model block per trained class. Each block is prefixed with its exact line
// count, so the parser never has to guess where an embedded model's "end"
// stops and the wrapper resumes:
//   pnrule-multiclass v1
//   classes <n>
//   default <class name>
//   class <i> <weight> absent              | class <i> <weight> model <k>
//   <k verbatim lines of a pnrule-model v1 block>
//   ...
//   end

#ifndef PNR_PNRULE_MODEL_IO_H_
#define PNR_PNRULE_MODEL_IO_H_

#include <string>

#include "pnrule/multiclass.h"
#include "pnrule/pnrule.h"

namespace pnr {

/// Renders `model` in the v1 text format. `schema` must be the schema the
/// model was trained on (attribute/category ids are resolved to names).
std::string SerializePnruleModel(const PnruleClassifier& model,
                                 const Schema& schema);

/// Parses a v1 model against `schema`, re-resolving attribute and category
/// names to the schema's ids. Fails with InvalidArgument on malformed
/// input and NotFound when the schema lacks a referenced attribute/value.
StatusOr<PnruleClassifier> ParsePnruleModel(const std::string& text,
                                            const Schema& schema);

/// Convenience wrappers writing to / reading from a file.
Status SavePnruleModel(const PnruleClassifier& model, const Schema& schema,
                       const std::string& path);
StatusOr<PnruleClassifier> LoadPnruleModel(const std::string& path,
                                           const Schema& schema);

/// Renders a one-vs-rest committee in the multiclass v1 wrapper format.
/// The serialization is a pure function of the committee, so bitwise
/// comparison of two serializations is the byte-identity check the
/// determinism tests and benches rely on.
std::string SerializeMultiClassModel(const MultiClassPnruleClassifier& model,
                                     const Schema& schema);

/// Parses a multiclass v1 committee against `schema`. The file's class
/// count must match the schema's, and the default class and every embedded
/// model must resolve against it.
StatusOr<MultiClassPnruleClassifier> ParseMultiClassModel(
    const std::string& text, const Schema& schema);

/// Convenience wrappers writing to / reading from a file.
Status SaveMultiClassModel(const MultiClassPnruleClassifier& model,
                           const Schema& schema, const std::string& path);
StatusOr<MultiClassPnruleClassifier> LoadMultiClassModel(
    const std::string& path, const Schema& schema);

}  // namespace pnr

#endif  // PNR_PNRULE_MODEL_IO_H_
