// Text serialization of trained PNrule models.
//
// Models are written in a line-oriented, human-diffable format that
// references attributes and classes *by name*, so a model can be loaded
// against any dataset whose schema contains the same attributes (a
// production deployment rarely classifies against the exact Dataset object
// it was trained on).
//
// Format (v1):
//   pnrule-model v1
//   threshold <t>
//   use_score_matrix <0|1>
//   p-rules <n>
//   rule <k> <covered> <positive>
//   cond cat <attr> <value>            | cond le <attr> <hi>
//   cond gt <attr> <lo>                | cond range <attr> <lo> <hi>
//   ...
//   n-rules <n>
//   ...
//   scores <num_p> <num_n>
//   <num_p lines of num_n+1 "score:weight" cells>
//   end

#ifndef PNR_PNRULE_MODEL_IO_H_
#define PNR_PNRULE_MODEL_IO_H_

#include <string>

#include "pnrule/pnrule.h"

namespace pnr {

/// Renders `model` in the v1 text format. `schema` must be the schema the
/// model was trained on (attribute/category ids are resolved to names).
std::string SerializePnruleModel(const PnruleClassifier& model,
                                 const Schema& schema);

/// Parses a v1 model against `schema`, re-resolving attribute and category
/// names to the schema's ids. Fails with InvalidArgument on malformed
/// input and NotFound when the schema lacks a referenced attribute/value.
StatusOr<PnruleClassifier> ParsePnruleModel(const std::string& text,
                                            const Schema& schema);

/// Convenience wrappers writing to / reading from a file.
Status SavePnruleModel(const PnruleClassifier& model, const Schema& schema,
                       const std::string& path);
StatusOr<PnruleClassifier> LoadPnruleModel(const std::string& path,
                                           const Schema& schema);

}  // namespace pnr

#endif  // PNR_PNRULE_MODEL_IO_H_
