// Multi-phase rule induction — the paper's closing future-work direction
// ("finally, extending the two-phase approach to a multi-phase approach").
//
// The third phase mirrors the logic of the second: just as the N-phase
// pools the false positives of all P-rules and learns absence rules on
// the collection, the R-phase ("recovery") pools the records that P-rules
// covered *and* an N-rule vetoed — the model's candidate false negatives —
// and learns presence rules on that collection to win back the true
// positives the collective veto erased. Decision order:
//
//   no P-rule fires                     -> score 0
//   P fires, no N fires                 -> ScoreMatrix cell (as two-phase)
//   P fires, N fires, an R-rule fires   -> the R-rule's recovery score
//   P fires, N fires, no R-rule fires   -> ScoreMatrix cell (as two-phase)

#ifndef PNR_PNRULE_MULTI_PHASE_H_
#define PNR_PNRULE_MULTI_PHASE_H_

#include <string>

#include "pnrule/pnrule.h"

namespace pnr {

/// Parameters of the three-phase learner.
struct MultiPhaseConfig {
  /// Configuration of the underlying two-phase model.
  PnruleConfig base;

  /// Minimum support of an R-rule as a fraction of the *vetoed* target
  /// weight (the R-phase works on a small collection, so this is stricter
  /// than the P-phase default).
  double r_min_support_fraction = 0.05;

  /// Cap on the number of recovery rules.
  size_t max_r_rules = 32;

  /// Minimum Laplace precision (on the vetoed training records) an R-rule
  /// needs for its recovery score to flip a veto.
  double r_min_precision = 0.5;

  Status Validate() const;
};

/// A two-phase model plus recovery rules.
class MultiPhasePnruleClassifier : public BinaryClassifier {
 public:
  MultiPhasePnruleClassifier(PnruleClassifier base, RuleSet r_rules);

  double Score(const Dataset& dataset, RowId row) const override;
  std::string Describe(const Schema& schema) const override;

  const PnruleClassifier& base() const { return base_; }
  /// Recovery rules; each rule's train_stats hold its first-match coverage
  /// over the vetoed training records (positive = target weight).
  const RuleSet& r_rules() const { return r_rules_; }

 private:
  PnruleClassifier base_;
  RuleSet r_rules_;
};

/// Trains three-phase models.
class MultiPhasePnruleLearner {
 public:
  explicit MultiPhasePnruleLearner(MultiPhaseConfig config = {});

  StatusOr<MultiPhasePnruleClassifier> Train(const Dataset& dataset,
                                             CategoryId target) const;

 private:
  MultiPhaseConfig config_;
};

}  // namespace pnr

#endif  // PNR_PNRULE_MULTI_PHASE_H_
