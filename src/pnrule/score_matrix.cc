#include "pnrule/score_matrix.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "common/string_util.h"
#include "rules/compiled_rule_set.h"

namespace pnr {

size_t ScoreMatrix::Index(size_t p_index, size_t n_index) const {
  assert(p_index < num_p_ && n_index <= num_n_);
  return p_index * (num_n_ + 1) + n_index;
}

double ScoreMatrix::Score(size_t p_index, size_t n_index) const {
  return scores_[Index(p_index, n_index)];
}

double ScoreMatrix::CellWeight(size_t p_index, size_t n_index) const {
  return weights_[Index(p_index, n_index)];
}

ScoreMatrix ScoreMatrix::FromValues(size_t num_p, size_t num_n,
                                    std::vector<double> scores,
                                    std::vector<double> weights) {
  ScoreMatrix matrix;
  matrix.num_p_ = num_p;
  matrix.num_n_ = num_n;
  assert(scores.size() == num_p * (num_n + 1));
  assert(weights.size() == scores.size());
  matrix.scores_ = std::move(scores);
  matrix.weights_ = std::move(weights);
  return matrix;
}

ScoreMatrix ScoreMatrix::Build(const Dataset& dataset, const RowSubset& rows,
                               CategoryId target, const RuleSet& p_rules,
                               const RuleSet& n_rules,
                               const PnruleConfig& config) {
  ScoreMatrix matrix;
  matrix.num_p_ = p_rules.size();
  matrix.num_n_ = n_rules.size();
  const size_t cells = matrix.num_p_ * (matrix.num_n_ + 1);
  matrix.weights_.assign(cells, 0.0);
  matrix.scores_.assign(cells, 0.0);
  if (matrix.num_p_ == 0) return matrix;

  // Replay the model over the training rows through the compiled matchers
  // (rules/compiled_rule_set.h) instead of two interpreted FirstMatch scans
  // per row. Blocks are processed in row order serially, so the float
  // accumulation order — and thus the matrix — is identical to the
  // row-at-a-time replay.
  std::vector<double> positives(cells, 0.0);
  const CompiledRuleSet compiled_p = CompiledRuleSet::Compile(p_rules);
  const CompiledRuleSet compiled_n = CompiledRuleSet::Compile(n_rules);
  CompiledRuleSet::Scratch scratch;
  constexpr size_t kBlock = 4096;
  std::vector<int32_t> p_first(kBlock);
  std::vector<int32_t> n_first(kBlock);
  for (size_t begin = 0; begin < rows.size(); begin += kBlock) {
    const size_t count = std::min(kBlock, rows.size() - begin);
    compiled_p.FirstMatchBlock(dataset, rows.data() + begin, count,
                               p_first.data(), &scratch);
    // Only P-covered rows land in a cell, so the N replay can restrict
    // itself to them (sparse for a rare class).
    BitMask p_matched(count);
    for (size_t i = 0; i < count; ++i) {
      if (p_first[i] != kNoRule) p_matched.Set(i);
    }
    compiled_n.FirstMatchBlock(dataset, rows.data() + begin, count,
                               n_first.data(), &scratch, &p_matched);
    for (size_t i = 0; i < count; ++i) {
      const int32_t p = p_first[i];
      if (p == kNoRule) continue;
      const size_t n_index = n_first[i] == kNoRule
                                 ? matrix.num_n_
                                 : static_cast<size_t>(n_first[i]);
      const size_t cell = matrix.Index(static_cast<size_t>(p), n_index);
      const RowId row = rows[begin + i];
      const double w = dataset.weight(row);
      matrix.weights_[cell] += w;
      if (dataset.label(row) == target) positives[cell] += w;
    }
  }

  const double s = config.score_smoothing;
  for (size_t p = 0; p < matrix.num_p_; ++p) {
    for (size_t n = 0; n <= matrix.num_n_; ++n) {
      const size_t cell = matrix.Index(p, n);
      const double w = matrix.weights_[cell];
      if (w >= config.score_min_cell_weight && w > 0.0) {
        // Enough evidence: trust the empirical (smoothed) probability.
        matrix.scores_[cell] = (positives[cell] + s) / (w + 2.0 * s);
      } else if (n < matrix.num_n_) {
        // Insignificant cell where an N-rule fired: honor the N-rule
        // (default P ∧ ¬N semantics).
        matrix.scores_[cell] = 0.0;
      } else {
        // Insignificant "no N-rule" cell: fall back to the P-rule's own
        // training accuracy.
        matrix.scores_[cell] = p_rules.rule(p).train_stats.accuracy();
      }
    }
  }
  return matrix;
}

std::string ScoreMatrix::ToString() const {
  std::string out;
  for (size_t p = 0; p < num_p_; ++p) {
    out += "P" + std::to_string(p) + ":";
    for (size_t n = 0; n <= num_n_; ++n) {
      out += (n == num_n_ ? "  none=" : "  N" + std::to_string(n) + "=");
      out += FormatDouble(Score(p, n), 3);
      out += "(w=" + FormatDouble(CellWeight(p, n), 1) + ")";
    }
    out += "\n";
  }
  return out;
}

}  // namespace pnr
