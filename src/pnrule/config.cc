#include "pnrule/config.h"

#include "common/string_util.h"

namespace pnr {

Status PnruleConfig::Validate() const {
  if (min_coverage_fraction <= 0.0 || min_coverage_fraction > 1.0) {
    return Status::InvalidArgument("min_coverage_fraction must be in (0, 1]");
  }
  if (p_accuracy_after_coverage < 0.0 || p_accuracy_after_coverage > 1.0) {
    return Status::InvalidArgument(
        "p_accuracy_after_coverage must be in [0, 1]");
  }
  if (min_support_fraction < 0.0 || min_support_fraction > 1.0) {
    return Status::InvalidArgument("min_support_fraction must be in [0, 1]");
  }
  if (n_recall_lower_limit < 0.0 || n_recall_lower_limit > 1.0) {
    return Status::InvalidArgument("n_recall_lower_limit must be in [0, 1]");
  }
  if (max_p_rules == 0) {
    return Status::InvalidArgument("max_p_rules must be positive");
  }
  if (mdl_window_bits < 0.0) {
    return Status::InvalidArgument("mdl_window_bits must be >= 0");
  }
  if (score_min_cell_weight < 0.0) {
    return Status::InvalidArgument("score_min_cell_weight must be >= 0");
  }
  if (score_smoothing < 0.0) {
    return Status::InvalidArgument("score_smoothing must be >= 0");
  }
  if (min_refinement_gain < 0.0) {
    return Status::InvalidArgument("min_refinement_gain must be >= 0");
  }
  return Status::OK();
}

std::string PnruleConfig::ToString() const {
  std::string out = "PnruleConfig{rp=" + FormatDouble(min_coverage_fraction, 3);
  out += ", rn=" + FormatDouble(n_recall_lower_limit, 3);
  out += ", min_support=" + FormatDouble(min_support_fraction, 3);
  out += ", metric=" + std::string(RuleMetricKindName(metric));
  if (max_p_rule_length > 0) {
    out += ", maxPlen=" + std::to_string(max_p_rule_length);
  }
  if (!enable_range_conditions) out += ", no-range";
  if (num_threads != 1) out += ", threads=" + std::to_string(num_threads);
  if (legacy_mode) out += ", legacy";
  out += "}";
  return out;
}

}  // namespace pnr
