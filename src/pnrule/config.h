// PNrule configuration: the control parameters the paper exposes.
//
// The two headline knobs of the improved (SIGMOD'01) algorithm:
//   * min_coverage_fraction (the paper's "rp") — the P-phase keeps adding
//     rules until this fraction of the target class is covered; afterwards a
//     rule is only added if it clears an accuracy threshold. Acts as an
//     *upper* limit on recall.
//   * n_recall_lower_limit (the paper's "rn") — the N-phase may only refine
//     a rule past its metric optimum when accepting the unrefined rule would
//     push the model's recall of the original target class below this
//     limit. Acts as a *lower* limit on recall.
// Together they give the user implicit control over recall vs precision.

#ifndef PNR_PNRULE_CONFIG_H_
#define PNR_PNRULE_CONFIG_H_

#include <cstddef>
#include <string>

#include "common/status.h"
#include "induction/metric.h"

namespace pnr {

/// All user-visible PNrule parameters, with the defaults used by the
/// experiment harness ("very conservative values", per the paper).
struct PnruleConfig {
  // ----- P-phase -----------------------------------------------------------

  /// rp: fraction of the target class the P-phase must cover before the
  /// accuracy gate kicks in (paper sweeps {0.95, 0.99, 0.995}).
  double min_coverage_fraction = 0.99;

  /// Accuracy a new P-rule must reach once rp coverage is achieved.
  double p_accuracy_after_coverage = 0.9;

  /// Minimum support of any P-rule, as a fraction of the target class
  /// population (prevents statistically insignificant small disjuncts).
  double min_support_fraction = 0.01;

  /// Maximum number of conditions per P-rule; 0 = governed only by the
  /// metric-improvement growth criterion. The paper's "P1" variants set 1.
  size_t max_p_rule_length = 0;

  /// Hard cap on the number of P-rules (safety net).
  size_t max_p_rules = 128;

  // ----- N-phase -----------------------------------------------------------

  /// rn: lower limit on the recall of the original target class that the
  /// N-phase must preserve (paper sweeps {0.7, 0.8, 0.9, 0.95, 0.995}).
  double n_recall_lower_limit = 0.9;

  /// Maximum number of conditions per N-rule; 0 = unlimited.
  size_t max_n_rule_length = 0;

  /// Hard cap on the number of N-rules; 0 disables the N-phase entirely
  /// (classic one-phase sequential covering — used by the ablation bench).
  size_t max_n_rules = 128;

  /// MDL stop window for adding N-rules (bits over the minimum DL so far).
  double mdl_window_bits = 64.0;

  // ----- Rule building ------------------------------------------------------

  /// Evaluation metric used to grow rules in both phases.
  RuleMetricKind metric = RuleMetricKind::kZNumber;

  /// Minimum *relative* metric improvement a refinement must deliver to be
  /// accepted (both phases). Genuine signature conjuncts improve the
  /// Z-number by tens of percent; marginal noise-clipping conditions gain
  /// only a few percent on the training set yet randomly exclude matching
  /// test records, so a small threshold materially improves generalization.
  double min_refinement_gain = 0.05;

  /// Evaluate explicit range conditions on numeric attributes.
  bool enable_range_conditions = true;

  /// Threads used by the condition-search engine when growing rules:
  /// 1 = serial, 0 = hardware concurrency, n = n workers. Any value
  /// produces bit-identical models (deterministic parallel reduction).
  size_t num_threads = 1;

  /// Byte cap on the search engine's sorted-column cache (0 = unbounded).
  /// Out-of-core training sets this so the cache spills instead of holding
  /// every attribute's sorted order resident; any value is bit-identical.
  size_t search_cache_budget_bytes = 0;

  // ----- Scoring ------------------------------------------------------------

  /// Minimum training weight a ScoreMatrix cell needs before its empirical
  /// probability is trusted; lighter cells inherit the P-rule's row score,
  /// which is how an N-rule gets "selectively ignored" for that P-rule.
  double score_min_cell_weight = 5.0;

  /// Laplace smoothing constant for cell probabilities.
  double score_smoothing = 1.0;

  /// When false the ScoreMatrix is bypassed and the classifier uses the
  /// strict P ∧ ¬N semantics (score 1 when a P-rule fires and no N-rule
  /// does, else 0). Exposed for the ablation benchmarks.
  bool use_score_matrix = true;

  // ----- Compatibility ------------------------------------------------------

  /// Approximate the previous (SDM'01) version: no rp/rn recall controls and
  /// no explicit range conditions; rule growth is governed purely by metric
  /// improvement, and P-rules stop when the best rule's Z-value is no longer
  /// positive. Used for Table 6's "old PNrule" column.
  bool legacy_mode = false;

  /// Validates ranges; returns InvalidArgument with a description if any
  /// parameter is out of bounds.
  Status Validate() const;

  /// One-line summary of the non-default parameters.
  std::string ToString() const;
};

}  // namespace pnr

#endif  // PNR_PNRULE_CONFIG_H_
