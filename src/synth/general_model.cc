#include "synth/general_model.h"

#include <cassert>

namespace pnr {

Status GeneralModelParams::Validate() const {
  if (tr <= 0.0 || nr <= 0.0) {
    return Status::InvalidArgument("tr and nr must be positive");
  }
  // Each numeric attribute carries 4 interleaved peak slots (2 per class);
  // slot spacing is domain/5, each peak is width/2 wide.
  if (tr / 2.0 >= kNumericDomain / 5.0 || nr / 2.0 >= kNumericDomain / 5.0) {
    return Status::InvalidArgument("peaks would overlap: width too large");
  }
  if (target_fraction <= 0.0 || target_fraction >= 1.0) {
    return Status::InvalidArgument("target_fraction must be in (0, 1)");
  }
  if (vocab < 8) {
    return Status::InvalidArgument("vocab must be >= 8 (NC3 uses 8 words)");
  }
  return Status::OK();
}

namespace {

// Numeric attributes host 4 peak slots each (uniformly spaced): target
// subclasses own slots {0, 2}, non-target subclasses slots {1, 3}.
double SampleSlotPeak(int slot, double total_width, PeakShape shape,
                      Rng* rng) {
  // A subclass has 2 peaks on the attribute, so each is total_width / 2.
  const double width = total_width / 2.0;
  const double center = PeakCenter(slot, 4);
  const double lo = center - 0.5 * width;
  const double hi = center + 0.5 * width;
  switch (shape) {
    case PeakShape::kRectangular:
      return rng->NextDouble(lo, hi);
    case PeakShape::kTriangular:
      return rng->NextTriangular(lo, hi);
    case PeakShape::kGaussian: {
      const double sigma = width / 6.0;
      double v = 0.0;
      do {
        v = center + sigma * rng->NextGaussian();
      } while (v < lo || v > hi);
      return v;
    }
  }
  return center;
}

}  // namespace

Dataset GenerateGeneralDataset(const GeneralModelParams& params,
                               size_t num_records, Rng* rng) {
  assert(params.Validate().ok());
  Schema schema;
  for (int a = 0; a < 4; ++a) {
    schema.AddAttribute(Attribute::Numeric("n" + std::to_string(a)));
  }
  for (int a = 0; a < 4; ++a) {
    Attribute attr = Attribute::Categorical("c" + std::to_string(a));
    for (int w = 0; w < params.vocab; ++w) {
      attr.GetOrAddCategory("w" + std::to_string(w));
    }
    schema.AddAttribute(std::move(attr));
  }
  const CategoryId target_id = schema.GetOrAddClass("C");
  const CategoryId non_target_id = schema.GetOrAddClass("NC");

  constexpr AttrIndex kN0 = 0, kN1 = 1, kN2 = 2, kN3 = 3;
  constexpr AttrIndex kC0 = 4, kC1 = 5, kC2 = 6, kC3 = 7;

  Dataset dataset(std::move(schema));
  dataset.Reserve(num_records);
  for (size_t r = 0; r < num_records; ++r) {
    const RowId row = dataset.AddRow();
    const bool is_target = rng->NextBool(params.target_fraction);
    dataset.set_label(row, is_target ? target_id : non_target_id);
    const double width = is_target ? params.tr : params.nr;
    // Target subclasses use even peak slots, non-target odd slots.
    const int slot_base = is_target ? 0 : 1;

    // Background: everything uniform; the subclass then overwrites its
    // distinguishing attributes.
    for (AttrIndex a = kN0; a <= kN3; ++a) {
      dataset.set_numeric(row, a, rng->NextDouble(0.0, kNumericDomain));
    }
    for (AttrIndex a = kC0; a <= kC3; ++a) {
      dataset.set_categorical(
          row, a,
          static_cast<CategoryId>(
              rng->NextBelow(static_cast<uint64_t>(params.vocab))));
    }

    const int subclass = static_cast<int>(rng->NextBelow(3));
    switch (subclass) {
      case 0: {
        // C1/NC1: disjunction of two conjunctions over (n0, n1) — the same
        // peak index is used on both attributes.
        const int conj = static_cast<int>(rng->NextBelow(2));
        const int slot = slot_base + 2 * conj;
        dataset.set_numeric(row, kN0,
                            SampleSlotPeak(slot, width, params.shape, rng));
        dataset.set_numeric(row, kN1,
                            SampleSlotPeak(slot, width, params.shape, rng));
        break;
      }
      case 1: {
        // C2/NC2: disjunction of peaks — a peak in n2 OR a peak in n3.
        const AttrIndex attr = rng->NextBool(0.5) ? kN2 : kN3;
        const int peak = static_cast<int>(rng->NextBelow(2));
        const int slot = slot_base + 2 * peak;
        dataset.set_numeric(row, attr,
                            SampleSlotPeak(slot, width, params.shape, rng));
        break;
      }
      case 2: {
        // C3: nspa=2 signatures over (c0, c1); NC3: nspa=4 over (c2, c3);
        // 2 words per attribute each, disjoint word blocks per signature.
        const int nspa = is_target ? 2 : 4;
        const int signature =
            static_cast<int>(rng->NextBelow(static_cast<uint64_t>(nspa)));
        const AttrIndex pair_a = is_target ? kC0 : kC2;
        const AttrIndex pair_b = is_target ? kC1 : kC3;
        for (AttrIndex a : {pair_a, pair_b}) {
          const int offset = static_cast<int>(rng->NextBelow(2));
          dataset.set_categorical(
              row, a, static_cast<CategoryId>(signature * 2 + offset));
        }
        break;
      }
      default:
        break;
    }
  }
  return dataset;
}

}  // namespace pnr
