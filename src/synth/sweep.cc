#include "synth/sweep.h"

#include "data/weighting.h"

namespace pnr {

TrainTestPair MakeNumericPair(const NumericModelParams& params,
                              size_t train_records, size_t test_records,
                              uint64_t seed) {
  Rng rng(seed);
  Rng train_rng = rng.Fork();
  Rng test_rng = rng.Fork();
  return TrainTestPair{
      GenerateNumericDataset(params, train_records, &train_rng),
      GenerateNumericDataset(params, test_records, &test_rng)};
}

TrainTestPair MakeCategoricalPair(const CategoricalModelParams& params,
                                  size_t train_records, size_t test_records,
                                  uint64_t seed) {
  Rng rng(seed);
  Rng train_rng = rng.Fork();
  Rng test_rng = rng.Fork();
  return TrainTestPair{
      GenerateCategoricalDataset(params, train_records, &train_rng),
      GenerateCategoricalDataset(params, test_records, &test_rng)};
}

TrainTestPair MakeGeneralPair(const GeneralModelParams& params,
                              size_t train_records, size_t test_records,
                              uint64_t seed) {
  Rng rng(seed);
  Rng train_rng = rng.Fork();
  Rng test_rng = rng.Fork();
  return TrainTestPair{
      GenerateGeneralDataset(params, train_records, &train_rng),
      GenerateGeneralDataset(params, test_records, &test_rng)};
}

TrainTestPair SubsamplePair(const TrainTestPair& base, CategoryId target,
                            double non_target_fraction, uint64_t seed) {
  Rng rng(seed);
  Rng train_rng = rng.Fork();
  Rng test_rng = rng.Fork();
  return TrainTestPair{
      SubsampleNonTarget(base.train, target, non_target_fraction,
                         &train_rng),
      SubsampleNonTarget(base.test, target, non_target_fraction, &test_rng)};
}

}  // namespace pnr
