#include "synth/categorical_model.h"

#include <cassert>

namespace pnr {

Status CategoricalModelParams::Validate() const {
  for (const CategoricalClassParams* cls : {&target, &non_target}) {
    if (cls->na < 1 || cls->nspa < 1 || cls->words < 1 || cls->vocab < 2) {
      return Status::InvalidArgument(
          "na/nspa/words must be >= 1 and vocab >= 2");
    }
    // Signatures use disjoint word sets per attribute.
    if (cls->nspa * cls->words > cls->vocab) {
      return Status::InvalidArgument(
          "vocabulary too small for disjoint signatures");
    }
  }
  if (target_fraction <= 0.0 || target_fraction >= 1.0) {
    return Status::InvalidArgument("target_fraction must be in (0, 1)");
  }
  return Status::OK();
}

CategoricalModelParams CoaParams(const std::string& name) {
  CategoricalModelParams params;
  auto set = [&](int tna, int tnspa, int tvocab, int nna, int nnspa,
                 int nvocab) {
    params.target = {tna, tnspa, 2, tvocab};
    params.non_target = {nna, nnspa, 2, nvocab};
  };
  if (name == "coa1") {
    set(1, 3, 400, 2, 3, 100);
  } else if (name == "coa2") {
    set(1, 3, 400, 3, 3, 100);
  } else if (name == "coa3") {
    set(1, 3, 400, 4, 3, 100);
  } else if (name == "coa4") {
    set(1, 4, 400, 2, 4, 100);
  } else if (name == "coa5") {
    set(1, 4, 400, 3, 4, 100);
  } else if (name == "coa6") {
    set(1, 4, 400, 4, 4, 100);
  } else if (name == "coad1") {
    set(2, 4, 400, 4, 4, 400);
  } else if (name == "coad2") {
    set(2, 4, 400, 4, 4, 100);
  } else if (name == "coad3") {
    set(2, 4, 100, 4, 4, 400);
  } else if (name == "coad4") {
    set(2, 4, 100, 4, 4, 100);
  } else {
    assert(false && "unknown categorical dataset name");
  }
  return params;
}

namespace {

// Registers `vocab` words ("w0".."w{vocab-1}") on a fresh attribute so that
// CategoryId k corresponds to word k for uniform sampling.
Attribute MakeWordAttribute(const std::string& name, int vocab) {
  Attribute attr = Attribute::Categorical(name);
  for (int w = 0; w < vocab; ++w) {
    attr.GetOrAddCategory("w" + std::to_string(w));
  }
  return attr;
}

}  // namespace

Dataset GenerateCategoricalDataset(const CategoricalModelParams& params,
                                   size_t num_records, Rng* rng) {
  assert(params.Validate().ok());
  Schema schema;
  // Attribute layout: target pairs first, then non-target pairs.
  std::vector<int> attr_vocab;
  for (int s = 0; s < params.target.na; ++s) {
    for (const char* side : {"a", "b"}) {
      schema.AddAttribute(MakeWordAttribute(
          "ct" + std::to_string(s) + side, params.target.vocab));
      attr_vocab.push_back(params.target.vocab);
    }
  }
  for (int s = 0; s < params.non_target.na; ++s) {
    for (const char* side : {"a", "b"}) {
      schema.AddAttribute(MakeWordAttribute(
          "cn" + std::to_string(s) + side, params.non_target.vocab));
      attr_vocab.push_back(params.non_target.vocab);
    }
  }
  const CategoryId target_id = schema.GetOrAddClass("C");
  const CategoryId non_target_id = schema.GetOrAddClass("NC");
  const size_t num_attrs = attr_vocab.size();

  Dataset dataset(std::move(schema));
  dataset.Reserve(num_records);
  for (size_t r = 0; r < num_records; ++r) {
    const RowId row = dataset.AddRow();
    const bool is_target = rng->NextBool(params.target_fraction);
    dataset.set_label(row, is_target ? target_id : non_target_id);
    const CategoricalClassParams& cls =
        is_target ? params.target : params.non_target;

    const int subclass =
        static_cast<int>(rng->NextBelow(static_cast<uint64_t>(cls.na)));
    const int signature =
        static_cast<int>(rng->NextBelow(static_cast<uint64_t>(cls.nspa)));
    const size_t pair_base =
        is_target ? static_cast<size_t>(2 * subclass)
                  : static_cast<size_t>(2 * (params.target.na + subclass));

    for (size_t a = 0; a < num_attrs; ++a) {
      CategoryId word;
      if (a == pair_base || a == pair_base + 1) {
        // Signature word: one of the signature's `words` disjoint words.
        const int offset = static_cast<int>(
            rng->NextBelow(static_cast<uint64_t>(cls.words)));
        word = static_cast<CategoryId>(signature * cls.words + offset);
      } else {
        word = static_cast<CategoryId>(
            rng->NextBelow(static_cast<uint64_t>(attr_vocab[a])));
      }
      dataset.set_categorical(row, static_cast<AttrIndex>(a), word);
    }
  }
  return dataset;
}

}  // namespace pnr
