// Numeric-only synthetic model (paper section 3.2.1, Table 1, Figure 1).
//
// Both the target class C and the non-target class NC consist of
// subclasses; each subclass is distinguished by one numeric attribute in
// which its records concentrate into `nsp` disjoint, uniformly spaced,
// identical peaks. Records of every other subclass are uniform over that
// attribute. The dataset has (tc + ntc) attributes, one per subclass.
//
// Widths are the paper's tr / nr parameters: the *total* width of a
// subclass's peaks, in units of the [0, 100) attribute domain, so tr = 0.2
// means all peaks together span 0.2% of the domain. Large widths make
// signatures impure (each target peak inevitably captures uniform
// non-target records), which is the regime the paper studies.

#ifndef PNR_SYNTH_NUMERIC_MODEL_H_
#define PNR_SYNTH_NUMERIC_MODEL_H_

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "data/dataset.h"

namespace pnr {

/// Shape of a signature peak's distribution.
enum class PeakShape {
  kRectangular,  ///< uniform within the peak
  kTriangular,   ///< symmetric triangular, mode at the peak center
  kGaussian,     ///< normal, sigma = width / 6, clipped to the peak
};

/// Parameters of the numeric-only model (names follow the paper).
struct NumericModelParams {
  int tc = 1;         ///< number of target subclasses
  int nsptc = 4;      ///< signatures (peaks) per target subclass
  double tr = 0.2;    ///< total width of target peaks (domain units of 100)
  int ntc = 2;        ///< number of non-target subclasses
  int nspntc = 3;     ///< signatures per non-target subclass
  double nr = 0.2;    ///< total width of non-target peaks
  PeakShape shape = PeakShape::kTriangular;

  /// Fraction of records belonging to the target class (paper: 0.3%).
  double target_fraction = 0.003;

  Status Validate() const;
};

/// The paper's six Table-1 configurations (nsyn1 .. nsyn6), index 1-based.
NumericModelParams NsynParams(int index);

/// Domain width of every attribute ([0, kNumericDomain)).
inline constexpr double kNumericDomain = 100.0;

/// Generates `num_records` records from the model. Class labels are
/// "C" (target) and "NC"; the returned dataset's schema names attributes
/// a0..a(tc+ntc-1), where a0..a(tc-1) distinguish target subclasses.
Dataset GenerateNumericDataset(const NumericModelParams& params,
                               size_t num_records, Rng* rng);

/// Center of peak `index` (0-based) out of `num_peaks`, on [0, domain).
double PeakCenter(int index, int num_peaks, double domain = kNumericDomain);

/// Samples a value inside peak `index` of `num_peaks` peaks whose total
/// width is `total_width`, with the given shape.
double SamplePeakValue(int index, int num_peaks, double total_width,
                       PeakShape shape, Rng* rng, double domain =
                           kNumericDomain);

}  // namespace pnr

#endif  // PNR_SYNTH_NUMERIC_MODEL_H_
