// Categorical-only synthetic model (paper section 3.2.2, Figure 2,
// Table 3).
//
// Each class has `na` subclasses; each subclass is distinguished by `nspa`
// disjoint signatures over its own *pair* of categorical attributes. A
// signature is the conjunction of small word sets on the two attributes
// (the paper's nwps = "2/400" means 2 words per attribute — 2x2 = 4
// word combinations per signature — drawn from a 400-word vocabulary).
// Records of other subclasses take uniformly random words on that pair, so
// a smaller vocabulary means more accidental collisions with signatures.

#ifndef PNR_SYNTH_CATEGORICAL_MODEL_H_
#define PNR_SYNTH_CATEGORICAL_MODEL_H_

#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "data/dataset.h"

namespace pnr {

/// Per-class structure parameters of the categorical model.
struct CategoricalClassParams {
  int na = 1;        ///< number of subclasses
  int nspa = 3;      ///< signatures per subclass
  int words = 2;     ///< words per attribute in each signature
  int vocab = 400;   ///< vocabulary size of the subclass's attributes
};

/// Full parameters of the categorical-only model.
struct CategoricalModelParams {
  CategoricalClassParams target;
  CategoricalClassParams non_target;
  /// Fraction of records belonging to the target class (paper: 0.3%).
  double target_fraction = 0.003;

  Status Validate() const;
};

/// The paper's Table-3 configurations: "coa1".."coa6", "coad1".."coad4".
CategoricalModelParams CoaParams(const std::string& name);

/// Generates `num_records` records. Attributes are paired per subclass:
/// target subclass s owns attributes ct<s>a / ct<s>b, non-target subclass s
/// owns cn<s>a / cn<s>b. Labels are "C" / "NC".
Dataset GenerateCategoricalDataset(const CategoricalModelParams& params,
                                   size_t num_records, Rng* rng);

}  // namespace pnr

#endif  // PNR_SYNTH_CATEGORICAL_MODEL_H_
