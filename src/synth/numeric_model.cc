#include "synth/numeric_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pnr {

Status NumericModelParams::Validate() const {
  if (tc < 1 || ntc < 1) {
    return Status::InvalidArgument("tc and ntc must be >= 1");
  }
  if (nsptc < 1 || nspntc < 1) {
    return Status::InvalidArgument("nsptc and nspntc must be >= 1");
  }
  if (tr <= 0.0 || nr <= 0.0) {
    return Status::InvalidArgument("tr and nr must be positive");
  }
  // Peak centers are domain/(n+1) apart; a peak of width total/n must fit
  // between neighbouring centers.
  if (tr / nsptc >= kNumericDomain / (nsptc + 1) ||
      nr / nspntc >= kNumericDomain / (nspntc + 1)) {
    return Status::InvalidArgument("peaks would overlap: width too large");
  }
  if (target_fraction <= 0.0 || target_fraction >= 1.0) {
    return Status::InvalidArgument("target_fraction must be in (0, 1)");
  }
  return Status::OK();
}

NumericModelParams NsynParams(int index) {
  NumericModelParams params;  // tr = nr = 0.2, triangular, 0.3% target
  switch (index) {
    case 1:
      params.tc = 1;
      params.nsptc = 1;
      params.ntc = 2;
      params.nspntc = 3;
      break;
    case 2:
      params.tc = 1;
      params.nsptc = 4;
      params.ntc = 2;
      params.nspntc = 3;
      break;
    case 3:
      params.tc = 1;
      params.nsptc = 4;
      params.ntc = 2;
      params.nspntc = 4;
      break;
    case 4:
      params.tc = 1;
      params.nsptc = 4;
      params.ntc = 2;
      params.nspntc = 5;
      break;
    case 5:
      params.tc = 1;
      params.nsptc = 4;
      params.ntc = 3;
      params.nspntc = 4;
      break;
    case 6:
      params.tc = 1;
      params.nsptc = 4;
      params.ntc = 3;
      params.nspntc = 5;
      break;
    default:
      assert(false && "nsyn index must be 1..6");
  }
  return params;
}

double PeakCenter(int index, int num_peaks, double domain) {
  assert(index >= 0 && index < num_peaks);
  // Uniformly spaced, away from the domain edges.
  return domain * (static_cast<double>(index) + 1.0) /
         (static_cast<double>(num_peaks) + 1.0);
}

double SamplePeakValue(int index, int num_peaks, double total_width,
                       PeakShape shape, Rng* rng, double domain) {
  const double width = total_width / static_cast<double>(num_peaks);
  const double center = PeakCenter(index, num_peaks, domain);
  const double lo = center - 0.5 * width;
  const double hi = center + 0.5 * width;
  switch (shape) {
    case PeakShape::kRectangular:
      return rng->NextDouble(lo, hi);
    case PeakShape::kTriangular:
      return rng->NextTriangular(lo, hi);
    case PeakShape::kGaussian: {
      const double sigma = width / 6.0;
      double v = 0.0;
      do {
        v = center + sigma * rng->NextGaussian();
      } while (v < lo || v > hi);
      return v;
    }
  }
  return center;
}

Dataset GenerateNumericDataset(const NumericModelParams& params,
                               size_t num_records, Rng* rng) {
  assert(params.Validate().ok());
  Schema schema;
  const int num_attrs = params.tc + params.ntc;
  for (int a = 0; a < num_attrs; ++a) {
    schema.AddAttribute(Attribute::Numeric("a" + std::to_string(a)));
  }
  const CategoryId target_id = schema.GetOrAddClass("C");
  const CategoryId non_target_id = schema.GetOrAddClass("NC");

  Dataset dataset(std::move(schema));
  dataset.Reserve(num_records);
  for (size_t r = 0; r < num_records; ++r) {
    const RowId row = dataset.AddRow();
    const bool is_target = rng->NextBool(params.target_fraction);
    dataset.set_label(row, is_target ? target_id : non_target_id);

    // Pick the record's subclass; its distinguishing attribute index and
    // peak geometry depend on class membership.
    int subclass = 0;
    int distinguishing_attr = 0;
    int num_peaks = 0;
    double total_width = 0.0;
    if (is_target) {
      subclass = static_cast<int>(
          rng->NextBelow(static_cast<uint64_t>(params.tc)));
      distinguishing_attr = subclass;
      num_peaks = params.nsptc;
      total_width = params.tr;
    } else {
      subclass = static_cast<int>(
          rng->NextBelow(static_cast<uint64_t>(params.ntc)));
      distinguishing_attr = params.tc + subclass;
      num_peaks = params.nspntc;
      total_width = params.nr;
    }
    // The training examples of a subclass are equally divided among its
    // disjoint signatures.
    const int peak = static_cast<int>(
        rng->NextBelow(static_cast<uint64_t>(num_peaks)));

    for (int a = 0; a < num_attrs; ++a) {
      double value = 0.0;
      if (a == distinguishing_attr) {
        value = SamplePeakValue(peak, num_peaks, total_width, params.shape,
                                rng);
      } else {
        value = rng->NextDouble(0.0, kNumericDomain);
      }
      dataset.set_numeric(row, static_cast<AttrIndex>(a), value);
    }
  }
  return dataset;
}

}  // namespace pnr
