#include "synth/kdd_sim.h"

#include <cassert>
#include <cmath>
#include <string>
#include <vector>

namespace pnr {

Status KddSimParams::Validate() const {
  if (train_records < 1000 || test_records < 1000) {
    return Status::InvalidArgument(
        "kdd_sim needs at least 1000 train and test records");
  }
  return Status::OK();
}

namespace {

// ---------------------------------------------------------------------------
// Feature sampling specs
// ---------------------------------------------------------------------------

/// How a numeric feature is drawn for one subclass.
struct NumSpec {
  enum class Kind { kConst, kUniform, kLogUniform, kGaussian, kZeroInflated };
  Kind kind = Kind::kConst;
  double a = 0.0;  ///< const value / lo / mean / P(nonzero)
  double b = 0.0;  ///< hi / stddev

  double Sample(Rng* rng) const {
    switch (kind) {
      case Kind::kConst:
        return a;
      case Kind::kUniform:
        return rng->NextDouble(a, b);
      case Kind::kLogUniform: {
        const double lo = std::log(std::max(a, 1.0));
        const double hi = std::log(std::max(b, a + 1.0));
        return std::exp(rng->NextDouble(lo, hi));
      }
      case Kind::kGaussian: {
        const double v = a + b * rng->NextGaussian();
        return v < 0.0 ? 0.0 : v;
      }
      case Kind::kZeroInflated:
        // Exactly zero most of the time (like real error-rate features);
        // uniform on (0, b] otherwise. Prevents "== 0" razor signatures.
        return rng->NextBool(a) ? rng->NextDouble(0.01, b) : 0.0;
    }
    return a;
  }
};

NumSpec Const(double v) { return {NumSpec::Kind::kConst, v, 0.0}; }
NumSpec Uniform(double lo, double hi) {
  return {NumSpec::Kind::kUniform, lo, hi};
}
NumSpec LogUniform(double lo, double hi) {
  return {NumSpec::Kind::kLogUniform, lo, hi};
}
NumSpec Gauss(double mean, double sd) {
  return {NumSpec::Kind::kGaussian, mean, sd};
}
NumSpec ZeroInflated(double p_nonzero, double hi) {
  return {NumSpec::Kind::kZeroInflated, p_nonzero, hi};
}

/// Weighted categorical choice by value name.
struct CatSpec {
  std::vector<std::pair<const char*, double>> choices;

  const char* Sample(Rng* rng) const {
    assert(!choices.empty());
    double total = 0.0;
    for (const auto& [name, w] : choices) total += w;
    double pick = rng->NextDouble() * total;
    for (const auto& [name, w] : choices) {
      pick -= w;
      if (pick < 0.0) return name;
    }
    return choices.back().first;
  }
};

/// Generative profile of one attack (or normal-traffic) subclass.
struct SubclassProfile {
  const char* name;
  const char* cls;  ///< normal / dos / probe / r2l / u2r
  CatSpec protocol;
  CatSpec service;
  CatSpec flag;
  NumSpec duration;
  NumSpec src_bytes;
  NumSpec dst_bytes;
  double logged_in_prob = 0.0;
  NumSpec hot;
  NumSpec num_failed_logins;
  NumSpec count;
  NumSpec srv_count;
  NumSpec serror_rate;
};

/// A subclass and its share of the class's records.
struct MixEntry {
  const SubclassProfile* profile;
  double weight;
};

// ---------------------------------------------------------------------------
// Subclass profiles (training-time and test-only)
// ---------------------------------------------------------------------------

// -- normal traffic --
const SubclassProfile kNormalHttp = {
    "normal_http", "normal",
    {{{"tcp", 1}}},
    {{{"http", 1}}},
    {{{"SF", 0.95}, {"REJ", 0.04}, {"RSTO", 0.01}}},
    LogUniform(1, 30), Gauss(300, 120), Gauss(4000, 2500),
    0.7, Const(0), Const(0), Uniform(1, 60), Uniform(1, 60),
    ZeroInflated(0.15, 0.4)};

const SubclassProfile kNormalSmtp = {
    "normal_smtp", "normal",
    {{{"tcp", 1}}},
    {{{"smtp", 1}}},
    {{{"SF", 1}}},
    LogUniform(1, 20), Gauss(1200, 400), Gauss(350, 120),
    0.3, Const(0), Const(0), Uniform(1, 12), Uniform(1, 12),
    ZeroInflated(0.08, 0.3)};

// Benign ftp sessions overlap ftp_write / warezclient on logged_in, hot
// and byte volumes — another of the paper's impure-signature situations.
const SubclassProfile kNormalFtp = {
    "normal_ftp", "normal",
    {{{"tcp", 1}}},
    {{{"ftp", 0.5}, {"ftp_data", 0.5}}},
    {{{"SF", 1}}},
    LogUniform(2, 400), LogUniform(50, 200000), LogUniform(100, 50000),
    0.85, Uniform(0, 2.4), Uniform(0, 1.1), Uniform(1, 8), Uniform(1, 8),
    ZeroInflated(0.08, 0.3)};

const SubclassProfile kNormalDns = {
    "normal_dns", "normal",
    {{{"udp", 1}}},
    {{{"domain_u", 0.85}, {"private", 0.15}}},
    {{{"SF", 1}}},
    Const(0), Gauss(45, 10), Gauss(90, 30),
    0.0, Const(0), Const(0), Uniform(1, 90), Uniform(1, 90),
    Const(0)};

// Interactive logins: a realistic fraction carries mistyped passwords
// (num_failed_logins 1-2), which collides with the guess_passwd attack's
// headline feature and keeps naive "failed > 0" rules imprecise.
const SubclassProfile kNormalTelnet = {
    "normal_telnet", "normal",
    {{{"tcp", 1}}},
    {{{"telnet", 0.6}, {"pop3", 0.4}}},
    {{{"SF", 0.97}, {"RSTO", 0.03}}},
    LogUniform(3, 2000), LogUniform(100, 3000), LogUniform(200, 30000),
    0.9, Uniform(0, 0.8), Uniform(0, 2.6), Uniform(1, 5), Uniform(1, 5),
    ZeroInflated(0.06, 0.25)};


// Benign connection noise: refused / reset / empty connections that every
// real network carries. Their tiny byte counts and REJ flags overlap the
// probe sweeps, so "small connection" alone can never be a probe signature.
const SubclassProfile kNormalFrag = {
    "normal_frag", "normal",
    {{{"tcp", 0.8}, {"udp", 0.2}}},
    {{{"http", 0.3}, {"private", 0.4}, {"other", 0.3}}},
    {{{"REJ", 0.45}, {"RSTO", 0.2}, {"SF", 0.25}, {"S0", 0.1}}},
    ZeroInflated(0.3, 15), Uniform(0, 25), Uniform(0, 25),
    0.0, Const(0), Const(0), Uniform(1, 70), Uniform(1, 12),
    ZeroInflated(0.5, 0.6)};

// -- dos --
const SubclassProfile kSmurf = {
    "smurf", "dos",
    {{{"icmp", 1}}},
    {{{"eco_i", 1}}},
    {{{"SF", 1}}},
    Const(0), Gauss(1032, 30), Const(0),
    0.0, Const(0), Const(0), Gauss(500, 60), Gauss(500, 60),
    Const(0)};

// Neptune's count / srv_count / flag profile deliberately overlaps the
// probe sweeps so that probe rules capture dos false positives — the
// splintered-false-positive regime for the probe class.
const SubclassProfile kNeptune = {
    "neptune", "dos",
    {{{"tcp", 1}}},
    {{{"private", 0.8}, {"other", 0.2}}},
    {{{"S0", 0.8}, {"REJ", 0.2}}},
    Const(0), Const(0), Const(0),
    0.0, Const(0), Const(0), Gauss(170, 60), Gauss(8, 5),
    Uniform(0.7, 1.0)};

const SubclassProfile kBack = {
    "back", "dos",
    {{{"tcp", 1}}},
    {{{"http", 1}}},
    {{{"SF", 0.9}, {"RSTO", 0.1}}},
    LogUniform(1, 10), Gauss(54540, 300), Gauss(8000, 2000),
    0.5, Uniform(0, 2.4), Const(0), Uniform(2, 12), Uniform(2, 12),
    ZeroInflated(0.2, 0.4)};

// The paper's motivating impurity: a dos flood over ftp data connections,
// sharing service=ftp with r2l's ftp subclasses and with normal ftp.
const SubclassProfile kFtpFlood = {
    "ftp_flood", "dos",
    {{{"tcp", 1}}},
    {{{"ftp", 0.6}, {"ftp_data", 0.4}}},
    {{{"S0", 0.7}, {"REJ", 0.3}}},
    Const(0), Const(0), Const(0),
    0.0, Const(0), Const(0), Gauss(320, 50), Gauss(300, 50),
    Uniform(0.75, 1.0)};

// -- probe --
const SubclassProfile kPortsweep = {
    "portsweep", "probe",
    {{{"tcp", 1}}},
    {{{"private", 0.7}, {"other", 0.3}}},
    {{{"REJ", 0.55}, {"S0", 0.3}, {"SF", 0.15}}},
    LogUniform(1, 1000), Const(0), Const(0),
    0.0, Const(0), Const(0), Gauss(120, 45), Uniform(1, 6),
    Uniform(0.45, 0.9)};

const SubclassProfile kIpsweep = {
    "ipsweep", "probe",
    {{{"icmp", 0.85}, {"tcp", 0.15}}},
    {{{"eco_i", 0.85}, {"private", 0.15}}},
    {{{"SF", 1}}},
    Const(0), Gauss(10, 3), Const(0),
    0.0, Const(0), Const(0), Uniform(1, 6), Gauss(120, 30),
    ZeroInflated(0.05, 0.2)};

const SubclassProfile kSatan = {
    "satan", "probe",
    {{{"tcp", 0.8}, {"udp", 0.2}}},
    {{{"private", 0.5}, {"other", 0.3}, {"telnet", 0.2}}},
    {{{"REJ", 0.5}, {"SF", 0.3}, {"RSTO", 0.2}}},
    Const(0), Uniform(0, 8), Const(0),
    0.0, Const(0), Const(0), Gauss(130, 50), Gauss(14, 7),
    Uniform(0.3, 0.85)};

const SubclassProfile kNmap = {
    "nmap", "probe",
    {{{"tcp", 0.5}, {"udp", 0.3}, {"icmp", 0.2}}},
    {{{"private", 0.8}, {"other", 0.2}}},
    {{{"SH", 0.6}, {"SF", 0.4}}},
    Const(0), Uniform(0, 10), Const(0),
    0.0, Const(0), Const(0), Uniform(1, 30), Uniform(1, 10),
    ZeroInflated(0.4, 0.5)};


// A stealthy scan that hides in the benign connection noise: its region is
// ~half normal_frag, so precision-first learners drop it entirely. The
// recoverable structure: slowscan connections always have zero duration
// and nonzero serror, while much of the noise has either a nonzero
// duration or a zero error rate — absence signatures a second phase can
// learn collectively.
const SubclassProfile kSlowscan = {
    "slowscan", "probe",
    {{{"tcp", 0.85}, {"udp", 0.15}}},
    {{{"private", 0.45}, {"other", 0.35}, {"http", 0.2}}},
    {{{"REJ", 0.4}, {"RSTO", 0.2}, {"SF", 0.3}, {"S0", 0.1}}},
    Const(0), Uniform(0, 25), Uniform(0, 25),
    0.0, Const(0), Const(0), Uniform(20, 90), Uniform(1, 12),
    Uniform(0.05, 0.6)};

// Test-only probes: similar intent, shifted signatures.
const SubclassProfile kSaint = {
    "saint", "probe",
    {{{"tcp", 0.9}, {"udp", 0.1}}},
    {{{"other", 0.5}, {"private", 0.3}, {"http", 0.2}}},
    {{{"SF", 0.5}, {"REJ", 0.35}, {"RSTO", 0.15}}},
    LogUniform(1, 50), Uniform(0, 30), Uniform(0, 40),
    0.0, Const(0), Const(0), Gauss(90, 30), Gauss(30, 10),
    Uniform(0.2, 0.6)};

const SubclassProfile kMscan = {
    "mscan", "probe",
    {{{"tcp", 1}}},
    {{{"private", 0.4}, {"http", 0.3}, {"ftp", 0.3}}},
    {{{"SF", 0.4}, {"S0", 0.4}, {"REJ", 0.2}}},
    Const(0), Uniform(0, 25), Const(0),
    0.0, Const(0), Const(0), Gauss(180, 50), Uniform(1, 8),
    Uniform(0.5, 1.0)};

// -- r2l --
// Password guessing looks like a short interactive login with failed
// attempts — but normal telnet/pop3 sessions also carry failed attempts,
// so the signature is inherently impure.
const SubclassProfile kGuessPasswd = {
    "guess_passwd", "r2l",
    {{{"tcp", 1}}},
    {{{"telnet", 0.55}, {"pop3", 0.3}, {"ftp", 0.15}}},
    {{{"SF", 0.8}, {"RSTO", 0.2}}},
    LogUniform(1, 40), LogUniform(80, 1500), LogUniform(150, 2000),
    0.1, Uniform(0, 0.6), Uniform(1, 4.2), Uniform(1, 5), Uniform(1, 5),
    ZeroInflated(0.2, 0.35)};

const SubclassProfile kFtpWrite = {
    "ftp_write", "r2l",
    {{{"tcp", 1}}},
    {{{"ftp", 0.7}, {"ftp_data", 0.3}}},
    {{{"SF", 1}}},
    LogUniform(5, 600), LogUniform(100, 5000), LogUniform(200, 8000),
    0.9, Uniform(1, 4.2), Uniform(0, 0.8), Uniform(1, 5), Uniform(1, 5),
    ZeroInflated(0.05, 0.2)};

const SubclassProfile kWarezclient = {
    "warezclient", "r2l",
    {{{"tcp", 1}}},
    {{{"ftp", 0.4}, {"ftp_data", 0.6}}},
    {{{"SF", 1}}},
    LogUniform(2, 300), LogUniform(1000, 500000), Uniform(0, 3000),
    0.8, Uniform(0, 2.8), Const(0), Uniform(1, 6), Uniform(1, 6),
    ZeroInflated(0.05, 0.2)};

const SubclassProfile kImap = {
    "imap", "r2l",
    {{{"tcp", 1}}},
    {{{"other", 0.7}, {"pop3", 0.3}}},
    {{{"SF", 0.6}, {"RSTO", 0.4}}},
    LogUniform(1, 30), Gauss(300, 100), Gauss(400, 150),
    0.1, Uniform(0, 1.4), Uniform(0, 1.4), Uniform(1, 3), Uniform(1, 3),
    ZeroInflated(0.3, 0.4)};

// Test-time drift of guess_passwd (the real KDD test traces drift even
// within known attack types): the attack moves to ftp and RSTO flags and
// uses fewer attempts per connection, so training-era rules only catch a
// slice of it.
const SubclassProfile kGuessPasswdTest = {
    "guess_passwd_drift", "r2l",
    {{{"tcp", 1}}},
    {{{"ftp", 0.45}, {"telnet", 0.3}, {"pop3", 0.25}}},
    {{{"SF", 0.55}, {"RSTO", 0.45}}},
    LogUniform(1, 120), LogUniform(60, 2500), LogUniform(100, 3000),
    0.15, Uniform(0, 0.8), Uniform(0, 2.6), Uniform(1, 6), Uniform(1, 6),
    ZeroInflated(0.25, 0.4)};

// Test-only r2l: snmp-style attacks over udp — a different protocol from
// every training r2l subclass, so no trained signature can reach them.
const SubclassProfile kSnmpGetAttack = {
    "snmpgetattack", "r2l",
    {{{"udp", 1}}},
    {{{"private", 0.8}, {"other", 0.2}}},
    {{{"SF", 1}}},
    Const(0), Gauss(60, 15), Gauss(70, 20),
    0.0, Const(0), Const(0), Uniform(1, 30), Uniform(1, 30),
    ZeroInflated(0.05, 0.2)};

const SubclassProfile kSnmpGuess = {
    "snmpguess", "r2l",
    {{{"udp", 1}}},
    {{{"private", 1}}},
    {{{"SF", 1}}},
    Const(0), Gauss(50, 10), Const(0),
    0.0, Const(0), Const(0), Uniform(1, 60), Uniform(1, 60),
    ZeroInflated(0.05, 0.2)};

const SubclassProfile kWarezmaster = {
    "warezmaster", "r2l",
    {{{"tcp", 1}}},
    {{{"ftp", 0.5}, {"ftp_data", 0.5}}},
    {{{"SF", 1}}},
    LogUniform(5, 600), Uniform(0, 3000), LogUniform(5000, 800000),
    0.85, Uniform(0, 2.4), Const(0), Uniform(1, 6), Uniform(1, 6),
    ZeroInflated(0.05, 0.2)};

// -- u2r --
const SubclassProfile kBufferOverflow = {
    "buffer_overflow", "u2r",
    {{{"tcp", 1}}},
    {{{"telnet", 0.8}, {"ftp", 0.2}}},
    {{{"SF", 1}}},
    LogUniform(30, 1000), LogUniform(500, 6000), LogUniform(200, 8000),
    1.0, Uniform(8, 30), Uniform(0, 1.4), Uniform(1, 3), Uniform(1, 3),
    ZeroInflated(0.05, 0.2)};

// ---------------------------------------------------------------------------
// Class mixtures
// ---------------------------------------------------------------------------

struct ClassMix {
  const char* cls;
  double fraction;  ///< of the whole dataset
  std::vector<MixEntry> subclasses;
};

// Training distribution mirrors the 10% KDDCUP sample: dos dominates,
// probe 0.83%, r2l 0.23%, u2r 0.01%.
std::vector<ClassMix> TrainMix() {
  return {
      {"normal",
       0.1969,
       {{&kNormalHttp, 0.47},
        {&kNormalSmtp, 0.14},
        {&kNormalFtp, 0.11},
        {&kNormalDns, 0.12},
        {&kNormalTelnet, 0.06},
        {&kNormalFrag, 0.10}}},
      {"dos",
       0.7924,
       {{&kSmurf, 0.57},
        {&kNeptune, 0.41},
        {&kBack, 0.01},
        {&kFtpFlood, 0.01}}},
      {"probe",
       0.0083,
       {{&kPortsweep, 0.20},
        {&kIpsweep, 0.25},
        {&kSatan, 0.28},
        {&kNmap, 0.07},
        {&kSlowscan, 0.20}}},
      {"r2l",
       0.0023,
       {{&kGuessPasswd, 0.47},
        {&kFtpWrite, 0.08},
        {&kWarezclient, 0.40},
        {&kImap, 0.05}}},
      {"u2r", 0.0001, {{&kBufferOverflow, 1.0}}},
  };
}

// Test distribution mirrors the contest test data: r2l jumps to 5.2%,
// probe to 1.34%, with heavy novel-subclass shares.
std::vector<ClassMix> TestMix() {
  return {
      {"normal",
       0.1949,
       {{&kNormalHttp, 0.43},
        {&kNormalSmtp, 0.15},
        {&kNormalFtp, 0.12},
        {&kNormalDns, 0.13},
        {&kNormalTelnet, 0.07},
        {&kNormalFrag, 0.10}}},
      {"dos",
       0.7390,
       {{&kSmurf, 0.60},
        {&kNeptune, 0.37},
        {&kBack, 0.015},
        {&kFtpFlood, 0.015}}},
      {"probe",
       0.0134,
       {{&kPortsweep, 0.14},
        {&kIpsweep, 0.12},
        {&kSatan, 0.18},
        {&kNmap, 0.04},
        {&kSlowscan, 0.18},
        {&kSaint, 0.20},
        {&kMscan, 0.14}}},
      {"r2l",
       0.0520,
       {{&kGuessPasswd, 0.08},
        {&kGuessPasswdTest, 0.12},
        {&kFtpWrite, 0.02},
        {&kWarezclient, 0.03},
        {&kImap, 0.02},
        {&kSnmpGetAttack, 0.50},
        {&kSnmpGuess, 0.16},
        {&kWarezmaster, 0.07}}},
      {"u2r", 0.0007, {{&kBufferOverflow, 1.0}}},
  };
}

Schema MakeKddSchema() {
  Schema schema;
  schema.AddAttribute(Attribute::Numeric("duration"));
  schema.AddAttribute(Attribute::Categorical(
      "protocol_type", {"tcp", "udp", "icmp"}));
  schema.AddAttribute(Attribute::Categorical(
      "service", {"http", "smtp", "ftp", "ftp_data", "telnet", "pop3",
                  "domain_u", "private", "eco_i", "other"}));
  schema.AddAttribute(
      Attribute::Categorical("flag", {"SF", "S0", "REJ", "RSTO", "SH"}));
  schema.AddAttribute(Attribute::Numeric("src_bytes"));
  schema.AddAttribute(Attribute::Numeric("dst_bytes"));
  schema.AddAttribute(Attribute::Categorical("logged_in", {"no", "yes"}));
  schema.AddAttribute(Attribute::Numeric("hot"));
  schema.AddAttribute(Attribute::Numeric("num_failed_logins"));
  schema.AddAttribute(Attribute::Numeric("count"));
  schema.AddAttribute(Attribute::Numeric("srv_count"));
  schema.AddAttribute(Attribute::Numeric("serror_rate"));
  for (const char* cls : {"normal", "dos", "probe", "r2l", "u2r"}) {
    schema.GetOrAddClass(cls);
  }
  return schema;
}

void EmitRecord(const SubclassProfile& profile, Dataset* dataset, Rng* rng) {
  Schema& schema = dataset->mutable_schema();
  const RowId row = dataset->AddRow();
  dataset->set_label(row, schema.class_attr().FindCategory(profile.cls));

  auto set_cat = [&](const char* attr_name, const char* value) {
    const AttrIndex attr = schema.FindAttribute(attr_name).value();
    const CategoryId id = schema.attribute(attr).FindCategory(value);
    assert(id != kInvalidCategory);
    dataset->set_categorical(row, attr, id);
  };
  auto set_num = [&](const char* attr_name, double value) {
    const AttrIndex attr = schema.FindAttribute(attr_name).value();
    dataset->set_numeric(row, attr, value);
  };

  set_num("duration", std::floor(profile.duration.Sample(rng)));
  set_cat("protocol_type", profile.protocol.Sample(rng));
  set_cat("service", profile.service.Sample(rng));
  set_cat("flag", profile.flag.Sample(rng));
  set_num("src_bytes", std::floor(profile.src_bytes.Sample(rng)));
  set_num("dst_bytes", std::floor(profile.dst_bytes.Sample(rng)));
  set_cat("logged_in", rng->NextBool(profile.logged_in_prob) ? "yes" : "no");
  set_num("hot", std::floor(profile.hot.Sample(rng)));
  set_num("num_failed_logins",
          std::floor(profile.num_failed_logins.Sample(rng)));
  set_num("count", std::floor(profile.count.Sample(rng)));
  set_num("srv_count", std::floor(profile.srv_count.Sample(rng)));
  set_num("serror_rate", profile.serror_rate.Sample(rng));
}

Dataset GenerateSplit(const std::vector<ClassMix>& mixes, size_t num_records,
                      Rng* rng) {
  Dataset dataset(MakeKddSchema());
  dataset.Reserve(num_records);
  std::vector<double> class_weights;
  class_weights.reserve(mixes.size());
  for (const ClassMix& mix : mixes) class_weights.push_back(mix.fraction);

  for (size_t r = 0; r < num_records; ++r) {
    const ClassMix& mix = mixes[rng->NextIndexWeighted(class_weights)];
    std::vector<double> sub_weights;
    sub_weights.reserve(mix.subclasses.size());
    for (const MixEntry& entry : mix.subclasses) {
      sub_weights.push_back(entry.weight);
    }
    const MixEntry& entry =
        mix.subclasses[rng->NextIndexWeighted(sub_weights)];
    EmitRecord(*entry.profile, &dataset, rng);
  }
  return dataset;
}

}  // namespace

StatusOr<KddSimData> GenerateKddSim(const KddSimParams& params) {
  Status status = params.Validate();
  if (!status.ok()) return status;
  Rng rng(params.seed);
  Rng train_rng = rng.Fork();
  Rng test_rng = rng.Fork();
  KddSimData data{GenerateSplit(TrainMix(), params.train_records, &train_rng),
                  GenerateSplit(TestMix(), params.test_records, &test_rng)};
  return data;
}

}  // namespace pnr
