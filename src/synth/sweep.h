// Train/test pair construction and the Table-5 rarity sweep.

#ifndef PNR_SYNTH_SWEEP_H_
#define PNR_SYNTH_SWEEP_H_

#include <cstdint>

#include "data/dataset.h"
#include "synth/categorical_model.h"
#include "synth/general_model.h"
#include "synth/numeric_model.h"

namespace pnr {

/// A train/test pair drawn independently from the same generative model.
struct TrainTestPair {
  Dataset train;
  Dataset test;
};

/// Generates a numeric-model pair (independent streams from `seed`).
TrainTestPair MakeNumericPair(const NumericModelParams& params,
                              size_t train_records, size_t test_records,
                              uint64_t seed);

/// Generates a categorical-model pair.
TrainTestPair MakeCategoricalPair(const CategoricalModelParams& params,
                                  size_t train_records, size_t test_records,
                                  uint64_t seed);

/// Generates a syngen pair.
TrainTestPair MakeGeneralPair(const GeneralModelParams& params,
                              size_t train_records, size_t test_records,
                              uint64_t seed);

/// Table 5's rarity transform: keeps every target record of both splits and
/// a random `non_target_fraction` of the non-target records, raising the
/// target class's relative proportion.
TrainTestPair SubsamplePair(const TrainTestPair& base, CategoryId target,
                            double non_target_fraction, uint64_t seed);

}  // namespace pnr

#endif  // PNR_SYNTH_SWEEP_H_
