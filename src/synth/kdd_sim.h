// kdd_sim: a generative substitute for the KDDCUP'99 network-intrusion
// dataset (paper section 4), which is not available offline.
//
// The simulator produces connection records with 12 KDD-like attributes
// (protocol / service / flag / logged_in categorical; duration, byte
// counts, connection counts and error rates numeric) and the five KDD
// classes {normal, dos, probe, r2l, u2r}, built from per-subclass
// generative profiles (smurf, neptune, portsweep, guess_passwd, ...).
//
// Three properties of the real contest data that the paper leans on are
// reproduced deliberately:
//   1. rare-class proportions of the 10% training sample — probe 0.83%,
//      r2l 0.23%;
//   2. a *shifted* test distribution — r2l rises to ~5.2%, probe to ~1.34%;
//   3. novel test-only subclasses (snmp-style r2l, saint/mscan probes)
//      whose signatures differ from anything in training, capping the
//      achievable recall exactly as the paper describes;
// plus the paper's motivating impurity: r2l's ftp-based subclasses share
// service=ftp with both normal ftp traffic and a dos ftp flood, so a pure
// presence signature for r2l inevitably captures dos/normal records.

#ifndef PNR_SYNTH_KDD_SIM_H_
#define PNR_SYNTH_KDD_SIM_H_

#include <cstdint>

#include "common/rng.h"
#include "common/status.h"
#include "data/dataset.h"

namespace pnr {

/// Parameters of the simulator.
struct KddSimParams {
  /// Number of training records (the real 10% sample has 494,021; the
  /// default here is bench-scale).
  size_t train_records = 100000;
  /// Number of test records (the real test set has 311,029).
  size_t test_records = 60000;
  uint64_t seed = 20010521;

  Status Validate() const;
};

/// A generated train/test pair. Class ids are resolvable through the shared
/// schema ("normal", "dos", "probe", "r2l", "u2r").
struct KddSimData {
  Dataset train;
  Dataset test;
};

/// Generates the train and test datasets (same schema, shifted test
/// distribution with novel subclasses).
StatusOr<KddSimData> GenerateKddSim(const KddSimParams& params);

}  // namespace pnr

#endif  // PNR_SYNTH_KDD_SIM_H_
