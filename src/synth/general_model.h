// The general mixed dataset "syngen" (paper section 3.2.3, Figure 3,
// Tables 4 and 5): 4 numeric + 4 categorical attributes, three target
// subclasses and three non-target subclasses with qualitatively different
// signature styles:
//   C1 / NC1 — conjunctive signatures over the numeric pair (n0, n1):
//              a disjunction of two conjunctions of peaks;
//   C2 / NC2 — disjunctive signatures: a peak in n2 *or* a peak in n3;
//   C3 / NC3 — categorical signatures over (c0, c1) / (c2, c3)
//              (C3: nspa=2, NC3: nspa=4; 2 words per attribute each).
// tr scales the widths of all target peaks, nr all non-target peaks.

#ifndef PNR_SYNTH_GENERAL_MODEL_H_
#define PNR_SYNTH_GENERAL_MODEL_H_

#include "common/rng.h"
#include "common/status.h"
#include "data/dataset.h"
#include "synth/numeric_model.h"

namespace pnr {

/// Parameters of the syngen model.
struct GeneralModelParams {
  double tr = 0.2;  ///< total width of each target subclass's peaks
  double nr = 0.2;  ///< total width of each non-target subclass's peaks
  PeakShape shape = PeakShape::kTriangular;
  /// Fraction of records belonging to the target class (paper: 0.3%).
  double target_fraction = 0.003;
  /// Vocabulary size of the categorical attributes.
  int vocab = 50;

  Status Validate() const;
};

/// Generates `num_records` syngen records. Attributes n0..n3 are numeric,
/// c0..c3 categorical; labels are "C" / "NC".
Dataset GenerateGeneralDataset(const GeneralModelParams& params,
                               size_t num_records, Rng* rng);

}  // namespace pnr

#endif  // PNR_SYNTH_GENERAL_MODEL_H_
