#include "induction/sorted_column_cache.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>

namespace pnr {

double MidpointBetween(double lo, double hi, bool round_up) {
  assert(lo < hi);
  double mid = 0.5 * (lo + hi);
  if (!std::isfinite(mid)) mid = lo + 0.5 * (hi - lo);  // |lo + hi| overflowed
  if (mid > lo && mid < hi) return mid;
  // No representable double strictly between (adjacent values, denormals):
  // collapse onto the endpoint that keeps the cut's slice semantics exact.
  return round_up ? hi : lo;
}

void SortedColumn::Clear() {
  values.clear();
  prefix_weight.clear();
  prefix_positive.clear();
  boundaries.clear();
  total_weight = 0.0;
  total_positive = 0.0;
}

SortedColumnCache::SortedColumnCache(const Dataset& dataset)
    : dataset_(dataset), per_attr_(dataset.schema().num_attributes()) {}

void SortedColumnCache::BuildOrder(AttrIndex attr, PerAttr* slot) {
  const std::vector<double>& column = dataset_.numeric_column(attr);
  slot->order.resize(column.size());
  for (size_t i = 0; i < column.size(); ++i) {
    slot->order[i] = static_cast<RowId>(i);
  }
  std::sort(slot->order.begin(), slot->order.end(),
            [&column](RowId a, RowId b) {
              if (column[a] != column[b]) return column[a] < column[b];
              return a < b;
            });
  slot->order_version = dataset_.data_version();
  slot->order_valid = true;
  sort_count_.fetch_add(1);
}

const std::vector<RowId>& SortedColumnCache::SortedOrder(AttrIndex attr) {
  PerAttr& slot = per_attr_[static_cast<size_t>(attr)];
  if (!slot.order_valid || slot.order_version != dataset_.data_version()) {
    BuildOrder(attr, &slot);
    AccountAndEvict(attr);
  }
  return slot.order;
}

size_t SortedColumnCache::SlotBytes(const PerAttr& slot) {
  return slot.order.size() * sizeof(RowId) +
         slot.full.values.size() * sizeof(double) +
         slot.full.prefix_weight.size() * sizeof(double) +
         slot.full.prefix_positive.size() * sizeof(double) +
         slot.full.boundaries.size() * sizeof(size_t);
}

void SortedColumnCache::AccountAndEvict(AttrIndex attr) {
  if (budget_bytes_ == 0) return;
  std::lock_guard<std::mutex> lock(budget_mutex_);
  PerAttr& slot = per_attr_[static_cast<size_t>(attr)];
  const size_t now = SlotBytes(slot);
  resident_bytes_ += now - slot.bytes;
  slot.bytes = now;
  slot.last_use = ++tick_;
  while (resident_bytes_ > budget_bytes_) {
    size_t victim = per_attr_.size();
    uint64_t oldest = 0;
    for (size_t i = 0; i < per_attr_.size(); ++i) {
      if (i == static_cast<size_t>(attr)) continue;
      const PerAttr& candidate = per_attr_[i];
      if (candidate.bytes == 0 || candidate.pins > 0) continue;
      if (victim == per_attr_.size() || candidate.last_use < oldest) {
        victim = i;
        oldest = candidate.last_use;
      }
    }
    if (victim == per_attr_.size()) return;  // everything else is pinned
    PerAttr& evicted = per_attr_[victim];
    std::vector<RowId>().swap(evicted.order);
    evicted.order_valid = false;
    evicted.full = SortedColumn();
    evicted.full_valid = false;
    resident_bytes_ -= evicted.bytes;
    evicted.bytes = 0;
    evict_count_.fetch_add(1);
  }
}

SortedColumnCache::AttrPin SortedColumnCache::Pin(AttrIndex attr) {
  if (budget_bytes_ == 0) return AttrPin();
  std::lock_guard<std::mutex> lock(budget_mutex_);
  PerAttr& slot = per_attr_[static_cast<size_t>(attr)];
  ++slot.pins;
  slot.last_use = ++tick_;
  return AttrPin(this, attr);
}

void SortedColumnCache::Unpin(AttrIndex attr) {
  std::lock_guard<std::mutex> lock(budget_mutex_);
  PerAttr& slot = per_attr_[static_cast<size_t>(attr)];
  assert(slot.pins > 0);
  --slot.pins;
}

void SortedColumnCache::AttrPin::Release() {
  if (cache_ == nullptr) return;
  cache_->Unpin(attr_);
  cache_ = nullptr;
}

size_t SortedColumnCache::resident_bytes() const {
  std::lock_guard<std::mutex> lock(budget_mutex_);
  return resident_bytes_;
}

void SortedColumnCache::FinishColumn(SortedColumn* out) {
  out->total_weight = out->prefix_weight.back();
  out->total_positive = out->prefix_positive.back();
}

namespace {

// Appends sorted entries of `source` to `out` (which must be pre-cleared and
// pre-reserved by the caller through Clear()). Kept as a template so the
// full-order gather and the mask-filter share one accumulation loop — both
// visit rows in (value, row id) order, so the float prefix sums are
// bit-identical whichever strategy built the row sequence.
template <typename RowRange, typename Filter>
void FillColumn(const Dataset& dataset, const std::vector<double>& column,
                CategoryId target, const RowRange& source,
                const Filter& keep, SortedColumn* out) {
  const std::vector<double>& weights = dataset.weights();
  const std::vector<CategoryId>& labels = dataset.labels();
  out->prefix_weight.push_back(0.0);
  out->prefix_positive.push_back(0.0);
  size_t j = 0;
  for (RowId row : source) {
    if (!keep(row)) continue;
    const double value = column[row];
    const double w = weights[row];
    out->values.push_back(value);
    out->prefix_weight.push_back(out->prefix_weight.back() + w);
    out->prefix_positive.push_back(out->prefix_positive.back() +
                                   (labels[row] == target ? w : 0.0));
    if (j > 0 && value > out->values[j - 1]) out->boundaries.push_back(j);
    ++j;
  }
}

}  // namespace

void SortedColumnCache::BuildSubsetColumn(AttrIndex attr, CategoryId target,
                                          const RowSubset& rows,
                                          const std::vector<uint8_t>& mask,
                                          SortedColumn* out) {
  const std::vector<double>& column = dataset_.numeric_column(attr);
  out->Clear();
  out->values.reserve(rows.size());
  out->prefix_weight.reserve(rows.size() + 1);
  out->prefix_positive.reserve(rows.size() + 1);

  const size_t k = rows.size();
  const size_t log_k = static_cast<size_t>(std::bit_width(k));
  if (k * (log_k + 2) < dataset_.num_rows()) {
    // Small subset: sorting it directly is cheaper than filtering the
    // full-dataset order. The (value, row id) key reproduces the cached
    // order exactly, so both strategies yield the same column bytes.
    std::vector<RowId> sorted(rows);
    std::sort(sorted.begin(), sorted.end(), [&column](RowId a, RowId b) {
      if (column[a] != column[b]) return column[a] < column[b];
      return a < b;
    });
    FillColumn(dataset_, column, target, sorted, [](RowId) { return true; },
               out);
  } else {
    FillColumn(dataset_, column, target, SortedOrder(attr),
               [&mask](RowId row) { return mask[row] != 0; }, out);
  }
  FinishColumn(out);
}

const SortedColumn& SortedColumnCache::Column(AttrIndex attr,
                                              CategoryId target,
                                              const RowSubset& rows,
                                              const std::vector<uint8_t>& mask,
                                              SortedColumn* scratch) {
  const bool full = rows.size() == dataset_.num_rows();
  if (!full) {
    BuildSubsetColumn(attr, target, rows, mask, scratch);
    return *scratch;
  }
  PerAttr& slot = per_attr_[static_cast<size_t>(attr)];
  if (slot.full_valid && slot.full_target == target &&
      slot.full_weight_version == dataset_.weight_version() &&
      slot.full_data_version == dataset_.data_version()) {
    return slot.full;
  }
  const std::vector<double>& column = dataset_.numeric_column(attr);
  slot.full.Clear();
  slot.full.values.reserve(rows.size());
  slot.full.prefix_weight.reserve(rows.size() + 1);
  slot.full.prefix_positive.reserve(rows.size() + 1);
  FillColumn(dataset_, column, target, SortedOrder(attr),
             [](RowId) { return true; }, &slot.full);
  FinishColumn(&slot.full);
  slot.full_target = target;
  slot.full_weight_version = dataset_.weight_version();
  slot.full_data_version = dataset_.data_version();
  slot.full_valid = true;
  full_build_count_.fetch_add(1);
  AccountAndEvict(attr);
  return slot.full;
}

}  // namespace pnr
