#include "induction/mdl.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "common/math_util.h"

namespace pnr {

double CountPossibleConditions(const Dataset& dataset) {
  const Schema& schema = dataset.schema();
  double count = 0.0;
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    const AttrIndex attr = static_cast<AttrIndex>(a);
    if (schema.attribute(attr).is_categorical()) {
      count += static_cast<double>(schema.attribute(attr).num_categories());
    } else {
      const auto& column = dataset.numeric_column(attr);
      std::unordered_set<double> distinct(column.begin(), column.end());
      if (distinct.size() > 1) {
        count += 2.0 * static_cast<double>(distinct.size() - 1);
      }
    }
  }
  return std::max(count, 1.0);
}

double RuleTheoryBits(size_t num_conditions, double possible_conditions) {
  if (num_conditions == 0) return 0.0;
  const double k = static_cast<double>(num_conditions);
  const double n = std::max(possible_conditions, k);
  const double bits = IntegerCodingBits(k) + SubsetDescriptionBits(n, k, k / n);
  return 0.5 * bits;  // Cohen's redundancy discount.
}

double ExceptionBits(double expected_fp_ratio, double cover, double uncover,
                     double fp, double fn) {
  assert(fp <= cover + 1e-9 && fn <= uncover + 1e-9);
  const double total_bits = SafeLog2(cover + uncover + 1.0);
  double cover_bits = 0.0;
  double uncover_bits = 0.0;
  if (cover > uncover) {
    // Code false positives against their expected rate, false negatives
    // against their empirical rate.
    const double expected_errors = expected_fp_ratio * (fp + fn);
    cover_bits = cover > 0.0
                     ? SubsetDescriptionBits(
                           cover, fp,
                           std::clamp(expected_errors / cover, 1e-12, 1.0))
                     : 0.0;
    uncover_bits =
        uncover > 0.0 ? SubsetDescriptionBits(uncover, fn, fn / uncover) : 0.0;
  } else {
    const double expected_errors = (1.0 - expected_fp_ratio) * (fp + fn);
    cover_bits =
        cover > 0.0 ? SubsetDescriptionBits(cover, fp, fp / cover) : 0.0;
    uncover_bits = uncover > 0.0
                       ? SubsetDescriptionBits(
                             uncover, fn,
                             std::clamp(expected_errors / uncover, 1e-12, 1.0))
                       : 0.0;
  }
  return total_bits + cover_bits + uncover_bits;
}

double ExceptionBitsEmpirical(double cover, double uncover, double fp,
                              double fn) {
  assert(fp <= cover + 1e-9 && fn <= uncover + 1e-9);
  const double total_bits = SafeLog2(cover + uncover + 1.0);
  const double cover_bits =
      cover > 0.0 ? SubsetDescriptionBits(cover, fp, fp / cover) : 0.0;
  const double uncover_bits =
      uncover > 0.0 ? SubsetDescriptionBits(uncover, fn, fn / uncover) : 0.0;
  return total_bits + cover_bits + uncover_bits;
}

double RuleSetDescriptionLength(const Dataset& dataset, const RowSubset& rows,
                                CategoryId target, const RuleSet& rules,
                                double possible_conditions,
                                double expected_fp_ratio,
                                bool invert_target) {
  double theory = 0.0;
  for (const Rule& rule : rules.rules()) {
    theory += RuleTheoryBits(rule.size(), possible_conditions);
  }
  double cover = 0.0;
  double uncover = 0.0;
  double fp = 0.0;
  double fn = 0.0;
  // On a demand-paged dataset a per-row AnyMatch walk alternates columns
  // every row, and each alternation on a tight budget is a whole-column
  // decode. Precompute the coverage bitmap rule-major instead (each rule's
  // CoveredRows is condition-major when paged, so it faults each referenced
  // column once), then accumulate in the same row order as the plain walk —
  // the float sums see identical values in identical order either way.
  std::vector<bool> matched;
  if (dataset.paged() && !rules.empty()) {
    matched.assign(rows.size(), false);
    RowSubset unmatched = rows;
    for (const Rule& rule : rules.rules()) {
      const RowSubset covered = rule.CoveredRows(dataset, unmatched);
      // Both lists are subsequences of `rows`; merge-mark and merge-subtract.
      RowSubset next;
      next.reserve(unmatched.size() - covered.size());
      size_t c = 0, r = 0;
      for (RowId row : unmatched) {
        while (r < rows.size() && rows[r] != row) ++r;
        if (c < covered.size() && covered[c] == row) {
          ++c;
          matched[r] = true;
        } else {
          next.push_back(row);
        }
      }
      unmatched = std::move(next);
      if (unmatched.empty()) break;
    }
  }
  for (size_t i = 0; i < rows.size(); ++i) {
    const RowId row = rows[i];
    const double w = dataset.weight(row);
    const bool positive = (dataset.label(row) == target) != invert_target;
    const bool covered_row =
        matched.empty() ? rules.AnyMatch(dataset, row) : matched[i];
    if (covered_row) {
      cover += w;
      if (!positive) fp += w;
    } else {
      uncover += w;
      if (positive) fn += w;
    }
  }
  if (expected_fp_ratio < 0.0) {
    return theory + ExceptionBitsEmpirical(cover, uncover, fp, fn);
  }
  return theory + ExceptionBits(expected_fp_ratio, cover, uncover, fp, fn);
}

}  // namespace pnr
