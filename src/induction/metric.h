// Rule evaluation metrics.
//
// PNrule's default metric is the Z-number of [1] (a one-sample z-test of the
// rule's accuracy against the class prior, weighted by sqrt(support)); the
// paper notes that gini, information gain, gain ratio or chi-squared can be
// substituted, so all of them are provided behind one interface. RIPPER's
// FOIL information gain, which scores a refinement against its parent rule,
// is exposed as a free function.

#ifndef PNR_INDUCTION_METRIC_H_
#define PNR_INDUCTION_METRIC_H_

#include <memory>
#include <string>

#include "rules/rule.h"

namespace pnr {

/// Weighted class distribution of the data a rule is being judged against
/// (for PNrule: the records remaining after earlier rules were removed).
struct ClassDistribution {
  double positives = 0.0;  ///< total weight of target-class records
  double negatives = 0.0;  ///< total weight of the rest

  double total() const { return positives + negatives; }
  /// Prior probability of the target class (0 when empty).
  double prior() const {
    const double t = total();
    return t > 0.0 ? positives / t : 0.0;
  }
};

/// Identifier for the selectable metrics.
enum class RuleMetricKind {
  kZNumber,
  kInfoGain,
  kGainRatio,
  kGini,
  kChiSquared,
};

/// Returns the metric's canonical name ("z-number", "info-gain", ...).
const char* RuleMetricKindName(RuleMetricKind kind);

/// Scores a candidate rule given its coverage stats and the distribution of
/// the data it was evaluated on. Higher is better; values are only compared
/// within one metric.
class RuleMetric {
 public:
  virtual ~RuleMetric() = default;

  /// Value of a rule with coverage `stats` against distribution `dist`.
  virtual double Evaluate(const RuleStats& stats,
                          const ClassDistribution& dist) const = 0;

  /// The metric's kind tag.
  virtual RuleMetricKind kind() const = 0;
};

/// Factory for the built-in metrics.
std::unique_ptr<RuleMetric> MakeRuleMetric(RuleMetricKind kind);

/// Z-number of a rule: sqrt(cov) * (acc - p0) / sqrt(p0 * (1 - p0)).
/// Positive values mean the rule's accuracy beats the prior; the magnitude
/// grows with statistical support. Returns 0 for empty coverage.
double ZNumber(const RuleStats& stats, const ClassDistribution& dist);

/// FOIL information gain of refining `parent` into `refined`:
///   pos_r * (log2(acc_r) - log2(acc_p))
/// with the standard +1/+2 Laplace guard against log(0). Used by RIPPER's
/// grow step.
double FoilGain(const RuleStats& parent, const RuleStats& refined);

}  // namespace pnr

#endif  // PNR_INDUCTION_METRIC_H_
