// Cached sorted views of numeric columns for the condition-search engine.
//
// The dominant cost of the naive condition search is re-sorting every
// numeric attribute on every refinement call. Values never change during
// training, so the cache sorts each column once per dataset — by
// (value, row id), a total order that makes every downstream float
// accumulation independent of the sort implementation and of the thread
// count — and derives the per-refinement prefix sums from the cached order
// with a linear pass. Weight-dependent aggregates (the full-dataset prefix
// sums) are additionally cached and invalidated only when record weights
// change (N-phase re-weighting, stratification); the sorted order survives.

#ifndef PNR_INDUCTION_SORTED_COLUMN_CACHE_H_
#define PNR_INDUCTION_SORTED_COLUMN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "data/dataset.h"

namespace pnr {

/// Midpoint between adjacent distinct values lo < hi, guaranteed to split
/// them: the result is strictly inside (lo, hi) whenever such a double
/// exists. When the true midpoint is not representable (adjacent doubles,
/// denormals) it falls back to `hi` when `round_up` is set and `lo`
/// otherwise, which callers pick so the degenerate cut still partitions the
/// data exactly like the slice it was derived from.
double MidpointBetween(double lo, double hi, bool round_up);

/// One numeric column restricted to a row subset, sorted by value, with
/// prefix sums over weight / target-class weight.
struct SortedColumn {
  std::vector<double> values;           ///< subset values, ascending
  std::vector<double> prefix_weight;    ///< weight of entries [0, i)
  std::vector<double> prefix_positive;  ///< positive weight of entries [0, i)
  /// Indices i with values[i-1] < values[i]: candidate cut positions.
  std::vector<size_t> boundaries;
  double total_weight = 0.0;
  double total_positive = 0.0;

  /// Cut value for one-sided conditions at `boundary`: some c with
  /// values[boundary-1] <= c < values[boundary], so that {x <= c} covers
  /// exactly [0, boundary) and {x > c} exactly [boundary, n).
  double CutValue(size_t boundary) const {
    return MidpointBetween(values[boundary - 1], values[boundary],
                           /*round_up=*/false);
  }

  /// Lower limit for range conditions at `boundary`: some c with
  /// values[boundary-1] < c <= values[boundary], so that {x >= c} covers
  /// exactly [boundary, n) under kInRange's inclusive lower test.
  double LowerCutValue(size_t boundary) const {
    return MidpointBetween(values[boundary - 1], values[boundary],
                           /*round_up=*/true);
  }

  void Clear();
};

/// Per-dataset cache of sorted numeric columns.
///
/// Thread-safety contract (matching the engine's attribute-parallel scans):
/// concurrent calls are allowed only for *distinct* attributes; the per-attr
/// state is independent. The dataset must not be mutated during a batch of
/// concurrent calls.
///
/// Bounded-memory mode: set_memory_budget(bytes) caps the resident bytes of
/// cached orders and prefix columns. Slots are evicted LRU when a build
/// pushes the cache over budget; an evicted slot is simply rebuilt on next
/// use, deterministically, so results stay bit-identical at any budget.
/// With a budget set, a caller must hold a Pin on an attribute for as long
/// as it uses a reference returned for that attribute — eviction skips
/// pinned slots. With no budget (the default) pins are no-ops and nothing
/// is ever evicted.
class SortedColumnCache {
 public:
  explicit SortedColumnCache(const Dataset& dataset);

  /// Caps resident cache bytes; 0 (default) disables eviction entirely.
  /// Set before the first Column/SortedOrder call.
  void set_memory_budget(size_t bytes) { budget_bytes_ = bytes; }
  size_t memory_budget() const { return budget_bytes_; }

  /// Keeps `attr`'s slot out of eviction while alive (no-op when the cache
  /// is unbounded).
  class AttrPin {
   public:
    AttrPin() = default;
    AttrPin(AttrPin&& other) noexcept
        : cache_(other.cache_), attr_(other.attr_) {
      other.cache_ = nullptr;
    }
    AttrPin& operator=(AttrPin&& other) noexcept {
      Release();
      cache_ = other.cache_;
      attr_ = other.attr_;
      other.cache_ = nullptr;
      return *this;
    }
    AttrPin(const AttrPin&) = delete;
    AttrPin& operator=(const AttrPin&) = delete;
    ~AttrPin() { Release(); }

   private:
    friend class SortedColumnCache;
    AttrPin(SortedColumnCache* cache, AttrIndex attr)
        : cache_(cache), attr_(attr) {}
    void Release();
    SortedColumnCache* cache_ = nullptr;
    AttrIndex attr_ = 0;
  };

  AttrPin Pin(AttrIndex attr);

  const Dataset& dataset() const { return dataset_; }

  /// Row ids of the whole dataset sorted ascending by (value of `attr`,
  /// row id). Built on first use; rebuilt when the dataset's rows or cell
  /// values changed (data_version).
  const std::vector<RowId>& SortedOrder(AttrIndex attr);

  /// The column over `rows` of `attr` with positives counted for `target`.
  /// When `rows` is the full dataset the result is served from a per-attr
  /// cache keyed on (target, weight_version) — i.e. invalidated only when
  /// record weights change. Otherwise `*scratch` is filled (via the cached
  /// sorted order, or a direct sort when the subset is small enough that
  /// sorting beats a full-order filter pass — both produce bit-identical
  /// columns) and returned. `mask` must flag membership of every row in
  /// `rows` and is only read in the subset case.
  const SortedColumn& Column(AttrIndex attr, CategoryId target,
                             const RowSubset& rows,
                             const std::vector<uint8_t>& mask,
                             SortedColumn* scratch);

  // -- Introspection for tests ----------------------------------------------

  /// Number of O(n log n) full-column sorts performed so far.
  uint64_t sort_count() const { return sort_count_.load(); }
  /// Number of full-dataset prefix-sum (re)builds performed so far.
  uint64_t full_build_count() const { return full_build_count_.load(); }
  /// Number of slots evicted by the memory budget so far.
  uint64_t evict_count() const { return evict_count_.load(); }
  /// Current resident bytes under budget accounting (0 when unbounded).
  size_t resident_bytes() const;

 private:
  struct PerAttr {
    std::vector<RowId> order;      ///< all rows by (value, row id)
    uint64_t order_version = 0;    ///< data_version the order was built at
    bool order_valid = false;

    SortedColumn full;             ///< column over all rows
    CategoryId full_target = kInvalidCategory;
    uint64_t full_weight_version = 0;
    uint64_t full_data_version = 0;
    bool full_valid = false;

    // Budget-mode bookkeeping (guarded by budget_mutex_).
    int pins = 0;
    uint64_t last_use = 0;
    size_t bytes = 0;
  };

  void BuildOrder(AttrIndex attr, PerAttr* slot);
  /// Refreshes `attr`'s byte accounting after a build and evicts LRU
  /// unpinned slots (never `attr` itself) until the budget holds. No-op
  /// when unbounded.
  void AccountAndEvict(AttrIndex attr);
  void Unpin(AttrIndex attr);
  static size_t SlotBytes(const PerAttr& slot);
  /// Fills `out` for the subset case; entries appear in (value, row id)
  /// order regardless of the build strategy.
  void BuildSubsetColumn(AttrIndex attr, CategoryId target,
                         const RowSubset& rows,
                         const std::vector<uint8_t>& mask, SortedColumn* out);
  static void FinishColumn(SortedColumn* out);

  const Dataset& dataset_;
  std::vector<PerAttr> per_attr_;
  std::atomic<uint64_t> sort_count_{0};
  std::atomic<uint64_t> full_build_count_{0};
  std::atomic<uint64_t> evict_count_{0};
  size_t budget_bytes_ = 0;
  mutable std::mutex budget_mutex_;  ///< guards pins/last_use/bytes/resident_bytes_
  size_t resident_bytes_ = 0;
  uint64_t tick_ = 0;
};

}  // namespace pnr

#endif  // PNR_INDUCTION_SORTED_COLUMN_CACHE_H_
