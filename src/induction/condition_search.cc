#include "induction/condition_search.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

namespace pnr {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();
constexpr double kEps = 1e-12;

int ConditionKindRank(ConditionOp op) {
  switch (op) {
    case ConditionOp::kCatEqual:
      return 0;
    case ConditionOp::kLessEqual:
      return 1;
    case ConditionOp::kGreater:
      return 2;
    case ConditionOp::kInRange:
      return 3;
  }
  return 4;
}

// Mutable per-attribute search state. Each attribute is scanned by exactly
// one thread, which accumulates its own best candidate; the engine then
// reduces the per-attribute winners under CandidateBetter.
struct SearchState {
  const ConditionScorer* scorer = nullptr;
  const ConditionSearchOptions* options = nullptr;
  double total_weight = 0.0;
  std::optional<CandidateCondition> best;

  // Scores `stats`; records the candidate if it is admissible and improves
  // on the best so far. Returns the score (kNegInf if inadmissible).
  double Consider(const Condition& condition, const RuleStats& stats) {
    if (stats.covered <= kEps) return kNegInf;
    if (stats.covered >= total_weight - kEps) return kNegInf;  // no refinement
    if (stats.covered < options->min_covered_weight - kEps) return kNegInf;
    if (stats.positive < options->min_positive_weight - kEps) return kNegInf;
    const double value = (*scorer)(stats);
    if (!std::isfinite(value)) return kNegInf;
    const CandidateCondition candidate{condition, stats, value};
    if (!best.has_value() || CandidateBetter(candidate, *best)) {
      best = candidate;
    }
    return value;
  }
};

void ScanCategorical(const Dataset& dataset, const RowSubset& rows,
                     CategoryId target, AttrIndex attr, SearchState* state) {
  const size_t num_categories =
      dataset.schema().attribute(attr).num_categories();
  if (num_categories == 0) return;
  std::vector<double> weight(num_categories, 0.0);
  std::vector<double> positive(num_categories, 0.0);
  for (RowId row : rows) {
    const CategoryId c = dataset.categorical(row, attr);
    if (c == kInvalidCategory) continue;
    const double w = dataset.weight(row);
    weight[static_cast<size_t>(c)] += w;
    if (dataset.label(row) == target) positive[static_cast<size_t>(c)] += w;
  }
  for (size_t c = 0; c < num_categories; ++c) {
    if (weight[c] <= kEps) continue;
    RuleStats stats;
    stats.covered = weight[c];
    stats.positive = positive[c];
    state->Consider(
        Condition::CatEqual(attr, static_cast<CategoryId>(c)), stats);
  }
}

// Stats of the slice [from, to) of the sorted column.
RuleStats SliceStats(const SortedColumn& col, size_t from, size_t to) {
  RuleStats stats;
  stats.covered = col.prefix_weight[to] - col.prefix_weight[from];
  stats.positive = col.prefix_positive[to] - col.prefix_positive[from];
  return stats;
}

void ScanNumeric(const SortedColumn& col, AttrIndex attr,
                 SearchState* state) {
  if (col.boundaries.empty()) return;  // constant attribute

  // Single scan: best one-sided conditions.
  double best_le_value = kNegInf;
  double best_gt_value = kNegInf;
  size_t best_le_boundary = 0;
  size_t best_gt_boundary = 0;
  for (size_t b : col.boundaries) {
    const double cut = col.CutValue(b);
    const double le_value =
        state->Consider(Condition::LessEqual(attr, cut), SliceStats(col, 0, b));
    if (le_value > best_le_value) {
      best_le_value = le_value;
      best_le_boundary = b;
    }
    const double gt_value = state->Consider(
        Condition::Greater(attr, cut), SliceStats(col, b, col.values.size()));
    if (gt_value > best_gt_value) {
      best_gt_value = gt_value;
      best_gt_boundary = b;
    }
  }

  if (!state->options->enable_range_conditions) return;
  if (!std::isfinite(best_le_value) && !std::isfinite(best_gt_value)) return;

  // Extra scan for a range condition (paper, section 2.2): fix the limit of
  // the better one-sided condition, scan for the opposite limit. The lower
  // limit uses the round-up cut because kInRange's lower test is inclusive.
  if (best_gt_value >= best_le_value) {
    // Fix the left limit vl = cut(best_gt_boundary); scan right limits.
    const size_t left = best_gt_boundary;
    const double lo = col.LowerCutValue(left);
    for (size_t b : col.boundaries) {
      if (b <= left) continue;
      state->Consider(Condition::InRange(attr, lo, col.CutValue(b)),
                      SliceStats(col, left, b));
    }
  } else {
    // Fix the right limit vr = cut(best_le_boundary); scan left limits.
    const size_t right = best_le_boundary;
    const double hi = col.CutValue(right);
    for (size_t b : col.boundaries) {
      if (b >= right) break;
      state->Consider(Condition::InRange(attr, col.LowerCutValue(b), hi),
                      SliceStats(col, b, right));
    }
  }
}

}  // namespace

bool CandidateBetter(const CandidateCondition& a, const CandidateCondition& b) {
  if (a.value != b.value) return a.value > b.value;
  if (a.condition.attr != b.condition.attr) {
    return a.condition.attr < b.condition.attr;
  }
  const int rank_a = ConditionKindRank(a.condition.op);
  const int rank_b = ConditionKindRank(b.condition.op);
  if (rank_a != rank_b) return rank_a < rank_b;
  if (a.condition.category != b.condition.category) {
    return a.condition.category < b.condition.category;
  }
  if (a.condition.lo != b.condition.lo) return a.condition.lo < b.condition.lo;
  return a.condition.hi < b.condition.hi;
}

ConditionSearchEngine::ConditionSearchEngine(const Dataset& dataset,
                                            size_t num_threads,
                                            size_t cache_budget_bytes)
    : dataset_(dataset),
      num_threads_(ThreadPool::ResolveThreadCount(num_threads)),
      cache_(dataset),
      scratch_columns_(dataset.schema().num_attributes()) {
  cache_.set_memory_budget(cache_budget_bytes);
  if (num_threads_ > 1) pool_ = std::make_unique<ThreadPool>(num_threads_);
}

std::optional<CandidateCondition> ConditionSearchEngine::FindBest(
    const RowSubset& rows, CategoryId target, const ConditionScorer& scorer,
    const ConditionSearchOptions& options) {
  if (rows.empty()) return std::nullopt;

  const Schema& schema = dataset_.schema();
  const size_t num_attrs = schema.num_attributes();
  const double total_weight = dataset_.TotalWeight(rows);

  // Membership mask, read-only during the parallel phase. Only needed when
  // `rows` is a strict subset served via the cached sorted orders.
  const bool full = rows.size() == dataset_.num_rows();
  if (!full) {
    membership_.assign(dataset_.num_rows(), 0);
    for (RowId row : rows) membership_[row] = 1;
  }

  // Per-attribute winners: each slot written by exactly one task.
  const std::vector<std::pair<double, double>>& hints =
      dataset_.numeric_range_hints();
  std::vector<std::optional<CandidateCondition>> results(num_attrs);
  const auto scan_attribute = [&](size_t a) {
    const AttrIndex attr = static_cast<AttrIndex>(a);
    SearchState state;
    state.scorer = &scorer;
    state.options = &options;
    state.total_weight = total_weight;
    if (schema.attribute(attr).is_categorical()) {
      // Pin the column so a concurrent scan's fault can't evict it from a
      // paged dataset mid-read (no-op on plain in-RAM datasets).
      Dataset::ColumnPin column_pin = dataset_.PinColumn(attr);
      ScanCategorical(dataset_, rows, target, attr, &state);
    } else {
      // Zonemap pruning: a constant column has no boundaries and thus no
      // candidates, so when the range hint is a single finite point the
      // scan is skipped without faulting or sorting the column.
      if (!hints.empty() && std::isfinite(hints[a].first) &&
          hints[a].first == hints[a].second) {
        pruned_attr_scans_.fetch_add(1);
        return;
      }
      Dataset::ColumnPin column_pin = dataset_.PinColumn(attr);
      SortedColumnCache::AttrPin cache_pin = cache_.Pin(attr);
      const SortedColumn& col = cache_.Column(attr, target, rows, membership_,
                                              &scratch_columns_[a]);
      ScanNumeric(col, attr, &state);
    }
    results[a] = std::move(state.best);
  };

  // Small subsets are not worth fanning out: per-task overhead dominates
  // (BENCH_condition_search.json shows multi-thread configs losing to the
  // serial scan at 20k rows), so clamp by the shared rows-per-thread
  // heuristic and fall back to the serial loop.
  const bool parallel =
      pool_ != nullptr && num_attrs > 1 &&
      ThreadPool::ClampThreadsForRows(num_threads_, rows.size()) > 1;
  if (parallel) {
    pool_->ParallelFor(num_attrs, scan_attribute);
  } else {
    for (size_t a = 0; a < num_attrs; ++a) scan_attribute(a);
  }

  // Deterministic reduction: attribute order plus the CandidateBetter total
  // order makes the result independent of task scheduling.
  std::optional<CandidateCondition> best;
  for (size_t a = 0; a < num_attrs; ++a) {
    if (!results[a].has_value()) continue;
    if (!best.has_value() || CandidateBetter(*results[a], *best)) {
      best = std::move(results[a]);
    }
  }
  return best;
}

std::optional<CandidateCondition> FindBestCondition(
    const Dataset& dataset, const RowSubset& rows, CategoryId target,
    const ConditionScorer& scorer, const ConditionSearchOptions& options) {
  ConditionSearchEngine engine(dataset, options.num_threads);
  return engine.FindBest(rows, target, scorer, options);
}

}  // namespace pnr
