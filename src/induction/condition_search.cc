#include "induction/condition_search.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

namespace pnr {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();
constexpr double kEps = 1e-12;

// Mutable search state threaded through the per-attribute scans.
struct SearchState {
  const ConditionScorer* scorer = nullptr;
  const ConditionSearchOptions* options = nullptr;
  double total_weight = 0.0;
  double best_value = kNegInf;
  std::optional<CandidateCondition> best;

  // Scores `stats`; records the candidate if it is admissible and improves
  // on the best so far. Returns the score (kNegInf if inadmissible).
  double Consider(const Condition& condition, const RuleStats& stats) {
    if (stats.covered <= kEps) return kNegInf;
    if (stats.covered >= total_weight - kEps) return kNegInf;  // no refinement
    if (stats.covered < options->min_covered_weight - kEps) return kNegInf;
    if (stats.positive < options->min_positive_weight - kEps) return kNegInf;
    const double value = (*scorer)(stats);
    if (!std::isfinite(value)) return kNegInf;
    if (value > best_value) {
      best_value = value;
      best = CandidateCondition{condition, stats, value};
    }
    return value;
  }
};

void ScanCategorical(const Dataset& dataset, const RowSubset& rows,
                     CategoryId target, AttrIndex attr, SearchState* state) {
  const size_t num_categories =
      dataset.schema().attribute(attr).num_categories();
  if (num_categories == 0) return;
  std::vector<double> weight(num_categories, 0.0);
  std::vector<double> positive(num_categories, 0.0);
  for (RowId row : rows) {
    const CategoryId c = dataset.categorical(row, attr);
    if (c == kInvalidCategory) continue;
    const double w = dataset.weight(row);
    weight[static_cast<size_t>(c)] += w;
    if (dataset.label(row) == target) positive[static_cast<size_t>(c)] += w;
  }
  for (size_t c = 0; c < num_categories; ++c) {
    if (weight[c] <= kEps) continue;
    RuleStats stats;
    stats.covered = weight[c];
    stats.positive = positive[c];
    state->Consider(
        Condition::CatEqual(attr, static_cast<CategoryId>(c)), stats);
  }
}

// One entry per row, sorted by value, with prefix sums over weight/positive.
struct SortedColumn {
  std::vector<double> values;
  std::vector<double> prefix_weight;    // weight of entries [0, i)
  std::vector<double> prefix_positive;  // positive weight of entries [0, i)
  // Indices i such that values[i-1] < values[i]: candidate cut positions.
  std::vector<size_t> boundaries;
  double total_weight = 0.0;
  double total_positive = 0.0;

  double CutValue(size_t boundary) const {
    // Midpoint between the adjacent distinct values; no data point can be
    // equal to it, so <=/&gt; semantics are unambiguous.
    return 0.5 * (values[boundary - 1] + values[boundary]);
  }
};

SortedColumn BuildSortedColumn(const Dataset& dataset, const RowSubset& rows,
                               CategoryId target, AttrIndex attr) {
  struct Entry {
    double value;
    double weight;
    double positive;
  };
  std::vector<Entry> entries;
  entries.reserve(rows.size());
  for (RowId row : rows) {
    const double w = dataset.weight(row);
    entries.push_back({dataset.numeric(row, attr), w,
                       dataset.label(row) == target ? w : 0.0});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.value < b.value; });

  SortedColumn col;
  col.values.resize(entries.size());
  col.prefix_weight.resize(entries.size() + 1, 0.0);
  col.prefix_positive.resize(entries.size() + 1, 0.0);
  for (size_t i = 0; i < entries.size(); ++i) {
    col.values[i] = entries[i].value;
    col.prefix_weight[i + 1] = col.prefix_weight[i] + entries[i].weight;
    col.prefix_positive[i + 1] =
        col.prefix_positive[i] + entries[i].positive;
    if (i > 0 && entries[i].value > entries[i - 1].value) {
      col.boundaries.push_back(i);
    }
  }
  col.total_weight = col.prefix_weight.back();
  col.total_positive = col.prefix_positive.back();
  return col;
}

// Stats of the slice [from, to) of the sorted column.
RuleStats SliceStats(const SortedColumn& col, size_t from, size_t to) {
  RuleStats stats;
  stats.covered = col.prefix_weight[to] - col.prefix_weight[from];
  stats.positive = col.prefix_positive[to] - col.prefix_positive[from];
  return stats;
}

void ScanNumeric(const Dataset& dataset, const RowSubset& rows,
                 CategoryId target, AttrIndex attr, SearchState* state) {
  const SortedColumn col = BuildSortedColumn(dataset, rows, target, attr);
  if (col.boundaries.empty()) return;  // constant attribute

  // Single scan: best one-sided conditions.
  double best_le_value = kNegInf;
  double best_gt_value = kNegInf;
  size_t best_le_boundary = 0;
  size_t best_gt_boundary = 0;
  for (size_t b : col.boundaries) {
    const double cut = col.CutValue(b);
    const double le_value =
        state->Consider(Condition::LessEqual(attr, cut), SliceStats(col, 0, b));
    if (le_value > best_le_value) {
      best_le_value = le_value;
      best_le_boundary = b;
    }
    const double gt_value = state->Consider(
        Condition::Greater(attr, cut), SliceStats(col, b, col.values.size()));
    if (gt_value > best_gt_value) {
      best_gt_value = gt_value;
      best_gt_boundary = b;
    }
  }

  if (!state->options->enable_range_conditions) return;
  if (!std::isfinite(best_le_value) && !std::isfinite(best_gt_value)) return;

  // Extra scan for a range condition (paper, section 2.2): fix the limit of
  // the better one-sided condition, scan for the opposite limit.
  if (best_gt_value >= best_le_value) {
    // Fix the left limit vl = cut(best_gt_boundary); scan right limits.
    const size_t left = best_gt_boundary;
    const double lo = col.CutValue(left);
    for (size_t b : col.boundaries) {
      if (b <= left) continue;
      state->Consider(Condition::InRange(attr, lo, col.CutValue(b)),
                      SliceStats(col, left, b));
    }
  } else {
    // Fix the right limit vr = cut(best_le_boundary); scan left limits.
    const size_t right = best_le_boundary;
    const double hi = col.CutValue(right);
    for (size_t b : col.boundaries) {
      if (b >= right) break;
      state->Consider(Condition::InRange(attr, col.CutValue(b), hi),
                      SliceStats(col, b, right));
    }
  }
}

}  // namespace

std::optional<CandidateCondition> FindBestCondition(
    const Dataset& dataset, const RowSubset& rows, CategoryId target,
    const ConditionScorer& scorer, const ConditionSearchOptions& options) {
  if (rows.empty()) return std::nullopt;
  SearchState state;
  state.scorer = &scorer;
  state.options = &options;
  state.total_weight = dataset.TotalWeight(rows);

  const Schema& schema = dataset.schema();
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    const AttrIndex attr = static_cast<AttrIndex>(a);
    if (schema.attribute(attr).is_categorical()) {
      ScanCategorical(dataset, rows, target, attr, &state);
    } else {
      ScanNumeric(dataset, rows, target, attr, &state);
    }
  }
  return state.best;
}

}  // namespace pnr
