#include "induction/metric.h"

#include <cassert>
#include <cmath>

#include "common/math_util.h"

namespace pnr {

const char* RuleMetricKindName(RuleMetricKind kind) {
  switch (kind) {
    case RuleMetricKind::kZNumber:
      return "z-number";
    case RuleMetricKind::kInfoGain:
      return "info-gain";
    case RuleMetricKind::kGainRatio:
      return "gain-ratio";
    case RuleMetricKind::kGini:
      return "gini";
    case RuleMetricKind::kChiSquared:
      return "chi-squared";
  }
  return "unknown";
}

double ZNumber(const RuleStats& stats, const ClassDistribution& dist) {
  if (stats.covered <= 0.0) return 0.0;
  const double p0 = dist.prior();
  if (p0 <= 0.0 || p0 >= 1.0) return 0.0;
  const double sigma0 = std::sqrt(p0 * (1.0 - p0));
  return std::sqrt(stats.covered) * (stats.accuracy() - p0) / sigma0;
}

double FoilGain(const RuleStats& parent, const RuleStats& refined) {
  if (refined.positive <= 0.0) return 0.0;
  const double acc_refined =
      (refined.positive + 1.0) / (refined.covered + 2.0);
  const double acc_parent = (parent.positive + 1.0) / (parent.covered + 2.0);
  return refined.positive * (std::log2(acc_refined) - std::log2(acc_parent));
}

namespace {

class ZNumberMetric : public RuleMetric {
 public:
  double Evaluate(const RuleStats& stats,
                  const ClassDistribution& dist) const override {
    return ZNumber(stats, dist);
  }
  RuleMetricKind kind() const override { return RuleMetricKind::kZNumber; }
};

// Each metric below treats the rule as a binary split of `dist` into the
// covered part (stats) and the uncovered remainder, and measures the split's
// quality for separating the target class.

class InfoGainMetric : public RuleMetric {
 public:
  double Evaluate(const RuleStats& stats,
                  const ClassDistribution& dist) const override {
    const double total = dist.total();
    if (total <= 0.0 || stats.covered <= 0.0) return 0.0;
    const double rest = total - stats.covered;
    const double rest_pos = dist.positives - stats.positive;
    const double parent_entropy = BinaryEntropy(dist.prior());
    double children = (stats.covered / total) * BinaryEntropy(stats.accuracy());
    if (rest > 0.0) {
      children += (rest / total) * BinaryEntropy(rest_pos / rest);
    }
    return parent_entropy - children;
  }
  RuleMetricKind kind() const override { return RuleMetricKind::kInfoGain; }
};

class GainRatioMetric : public RuleMetric {
 public:
  double Evaluate(const RuleStats& stats,
                  const ClassDistribution& dist) const override {
    const double total = dist.total();
    if (total <= 0.0 || stats.covered <= 0.0) return 0.0;
    const double gain = info_gain_.Evaluate(stats, dist);
    // Raw gain ratio explodes for near-empty splits (split info -> 0),
    // which is exactly the small-disjunct trap on rare classes. Flooring
    // the denominator at the split info of a 1%-coverage split plays the
    // role of C4.5's average-gain guard in this rule-scoring context.
    const double split_info =
        std::max(BinaryEntropy(stats.covered / total), BinaryEntropy(0.01));
    return gain / split_info;
  }
  RuleMetricKind kind() const override { return RuleMetricKind::kGainRatio; }

 private:
  InfoGainMetric info_gain_;
};

class GiniMetric : public RuleMetric {
 public:
  double Evaluate(const RuleStats& stats,
                  const ClassDistribution& dist) const override {
    const double total = dist.total();
    if (total <= 0.0 || stats.covered <= 0.0) return 0.0;
    const double rest = total - stats.covered;
    const double rest_pos = dist.positives - stats.positive;
    auto gini = [](double p) { return 2.0 * p * (1.0 - p); };
    const double parent = gini(dist.prior());
    double children = (stats.covered / total) * gini(stats.accuracy());
    if (rest > 0.0) children += (rest / total) * gini(rest_pos / rest);
    return parent - children;
  }
  RuleMetricKind kind() const override { return RuleMetricKind::kGini; }
};

class ChiSquaredMetric : public RuleMetric {
 public:
  double Evaluate(const RuleStats& stats,
                  const ClassDistribution& dist) const override {
    const double total = dist.total();
    if (total <= 0.0 || stats.covered <= 0.0 || stats.covered >= total) {
      return 0.0;
    }
    // 2x2 contingency: rows = {covered, uncovered}, cols = {pos, neg}.
    const double observed[2][2] = {
        {stats.positive, stats.negative()},
        {dist.positives - stats.positive,
         dist.negatives - stats.negative()}};
    const double row_sums[2] = {stats.covered, total - stats.covered};
    const double col_sums[2] = {dist.positives, dist.negatives};
    double chi2 = 0.0;
    for (int r = 0; r < 2; ++r) {
      for (int c = 0; c < 2; ++c) {
        const double expected = row_sums[r] * col_sums[c] / total;
        if (expected <= 0.0) continue;
        const double diff = observed[r][c] - expected;
        chi2 += diff * diff / expected;
      }
    }
    // A split can be "good" in chi-squared while anti-correlated with the
    // target; sign it by whether the rule's accuracy beats the prior so the
    // search prefers presence signatures.
    return stats.accuracy() >= dist.prior() ? chi2 : -chi2;
  }
  RuleMetricKind kind() const override { return RuleMetricKind::kChiSquared; }
};

}  // namespace

std::unique_ptr<RuleMetric> MakeRuleMetric(RuleMetricKind kind) {
  switch (kind) {
    case RuleMetricKind::kZNumber:
      return std::make_unique<ZNumberMetric>();
    case RuleMetricKind::kInfoGain:
      return std::make_unique<InfoGainMetric>();
    case RuleMetricKind::kGainRatio:
      return std::make_unique<GainRatioMetric>();
    case RuleMetricKind::kGini:
      return std::make_unique<GiniMetric>();
    case RuleMetricKind::kChiSquared:
      return std::make_unique<ChiSquaredMetric>();
  }
  assert(false && "unreachable");
  return nullptr;
}

}  // namespace pnr
