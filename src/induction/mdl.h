// Minimum-description-length coding of rule sets (Cohen's RIPPER scheme,
// following Quinlan's exception-coding formulation).
//
// A rule set's description length = sum of per-rule theory bits (with the
// standard 50% redundancy discount) + the bits needed to transmit the
// classification exceptions (false positives among covered records, false
// negatives among uncovered ones). RIPPER stops adding rules when the total
// DL exceeds the best seen so far by more than 64 bits; PNrule reuses the
// same criterion to stop adding N-rules.

#ifndef PNR_INDUCTION_MDL_H_
#define PNR_INDUCTION_MDL_H_

#include "data/dataset.h"
#include "rules/rule_set.h"

namespace pnr {

/// RIPPER's stopping window: a rule set whose DL exceeds the minimum DL
/// observed so far by more than this many bits stops rule addition.
inline constexpr double kMdlStopWindowBits = 64.0;

/// Number of "possible conditions" in the dataset: categorical attributes
/// contribute one candidate per category, numeric attributes contribute two
/// one-sided tests per distinct-value boundary (over the full dataset).
/// This is the `n` in the theory cost of choosing a rule's conditions.
double CountPossibleConditions(const Dataset& dataset);

/// Theory cost in bits of one rule with `num_conditions` conditions drawn
/// from `possible_conditions` candidates:
///   0.5 * (||k|| + S(n, k, k/n))
/// where ||k|| is the universal integer code and S is the subset cost.
/// The 0.5 factor is Cohen's redundancy discount. Returns 0 for empty rules.
double RuleTheoryBits(size_t num_conditions, double possible_conditions);

/// Exception (data) cost in bits of a classifier that covers `cover` weight
/// of records with `fp` of them wrong, and leaves `uncover` weight
/// uncovered with `fn` of them wrong. `expected_fp_ratio` is the expected
/// fraction of errors that are false positives (0.5 before optimization).
/// This mirrors the dataDL computation of Cohen's implementation.
double ExceptionBits(double expected_fp_ratio, double cover, double uncover,
                     double fp, double fn);

/// Symmetric variant coding both sides at their empirical error rates.
/// Cohen's asymmetric form charges a phantom cost when coverage exceeds
/// half the data with zero false positives — harmless for RIPPER's target
/// modeling, but it would cut PNrule's N-phase short, so the N-phase uses
/// this form.
double ExceptionBitsEmpirical(double cover, double uncover, double fp,
                              double fn);

/// Total description length in bits of `rules` as a model of `target` over
/// `rows`: theory bits of every rule + exception bits of the rule set's
/// aggregate coverage. With `invert_target` the positive class is "not
/// target" (PNrule's N-phase models the *absence* of the target class).
/// Passing a negative `expected_fp_ratio` selects the symmetric
/// (empirical-rate) exception coding.
double RuleSetDescriptionLength(const Dataset& dataset, const RowSubset& rows,
                                CategoryId target, const RuleSet& rules,
                                double possible_conditions,
                                double expected_fp_ratio = 0.5,
                                bool invert_target = false);

}  // namespace pnr

#endif  // PNR_INDUCTION_MDL_H_
