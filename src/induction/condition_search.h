// Greedy search for the best single condition to append to a rule.
//
// All learners grow rules one conjunct at a time; they differ only in the
// scoring function (PNrule: Z-number against the remaining-data
// distribution; RIPPER: FOIL gain against the parent rule). The search
// enumerates:
//   - every categorical value test (attr = v),
//   - every one-sided numeric cut (attr <= c, attr > c) via a single scan of
//     the rows sorted on the attribute,
//   - and, when enabled, a range condition (vl < attr <= vr) found with the
//     paper's one-extra-scan procedure: fix the limit of the better
//     one-sided condition and scan for the opposite limit.

#ifndef PNR_INDUCTION_CONDITION_SEARCH_H_
#define PNR_INDUCTION_CONDITION_SEARCH_H_

#include <functional>
#include <optional>

#include "rules/rule.h"

namespace pnr {

/// A scored candidate refinement.
struct CandidateCondition {
  Condition condition;
  RuleStats stats;     ///< coverage of the refined rule over the search rows
  double value = 0.0;  ///< scorer value (higher is better)
};

/// Scores the stats of the refined rule; return -infinity to reject.
using ConditionScorer = std::function<double(const RuleStats&)>;

/// Knobs for FindBestCondition.
struct ConditionSearchOptions {
  /// Evaluate explicit range conditions on numeric attributes (the paper's
  /// extra-scan method). When false only one-sided cuts are considered.
  bool enable_range_conditions = true;

  /// Candidates whose covered weight is below this are skipped (PNrule's
  /// minimum-support constraint).
  double min_covered_weight = 0.0;

  /// Candidates whose covered *positive* weight is below this are skipped.
  double min_positive_weight = 0.0;
};

/// Finds the highest-scoring condition over `rows` (the records matched by
/// the rule being grown). Returns nullopt when no candidate is admissible.
///
/// Candidates that cover all of `rows` are skipped (they would not refine
/// the rule), as are candidates covering nothing.
std::optional<CandidateCondition> FindBestCondition(
    const Dataset& dataset, const RowSubset& rows, CategoryId target,
    const ConditionScorer& scorer, const ConditionSearchOptions& options = {});

}  // namespace pnr

#endif  // PNR_INDUCTION_CONDITION_SEARCH_H_
