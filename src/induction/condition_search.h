// Greedy search for the best single condition to append to a rule.
//
// All learners grow rules one conjunct at a time; they differ only in the
// scoring function (PNrule: Z-number against the remaining-data
// distribution; RIPPER: FOIL gain against the parent rule). The search
// enumerates:
//   - every categorical value test (attr = v),
//   - every one-sided numeric cut (attr <= c, attr > c) via a single scan of
//     the rows sorted on the attribute,
//   - and, when enabled, a range condition (vl < attr <= vr) found with the
//     paper's one-extra-scan procedure: fix the limit of the better
//     one-sided condition and scan for the opposite limit.
//
// ConditionSearchEngine is the stateful fast path: it keeps a per-dataset
// SortedColumnCache (each numeric attribute sorted once, prefix sums derived
// per refinement instead of re-sorting) and an optional thread pool that
// evaluates the attributes of one call in parallel. Results are reduced
// under a total order on candidates — (score, attr index, condition kind,
// cut value) — so a parallel search returns bit-identical results to a
// serial one, for any thread count.

#ifndef PNR_INDUCTION_CONDITION_SEARCH_H_
#define PNR_INDUCTION_CONDITION_SEARCH_H_

#include <atomic>
#include <functional>
#include <memory>
#include <optional>

#include "common/thread_pool.h"
#include "induction/sorted_column_cache.h"
#include "rules/rule.h"

namespace pnr {

/// A scored candidate refinement.
struct CandidateCondition {
  Condition condition;
  RuleStats stats;     ///< coverage of the refined rule over the search rows
  double value = 0.0;  ///< scorer value (higher is better)
};

/// The deterministic total order used to reduce per-attribute results:
/// higher score first, ties broken by lower attribute index, then condition
/// kind (categorical, <=, >, range), then cut value / category. Exposed for
/// the determinism tests.
bool CandidateBetter(const CandidateCondition& a, const CandidateCondition& b);

/// Scores the stats of the refined rule; return -infinity to reject.
/// When the search runs multi-threaded the scorer is invoked concurrently
/// from pool workers and must be thread-safe (the built-in metrics are pure
/// functions and qualify).
using ConditionScorer = std::function<double(const RuleStats&)>;

/// Knobs for FindBestCondition.
struct ConditionSearchOptions {
  /// Evaluate explicit range conditions on numeric attributes (the paper's
  /// extra-scan method). When false only one-sided cuts are considered.
  bool enable_range_conditions = true;

  /// Candidates whose covered weight is below this are skipped (PNrule's
  /// minimum-support constraint).
  double min_covered_weight = 0.0;

  /// Candidates whose covered *positive* weight is below this are skipped.
  double min_positive_weight = 0.0;

  /// Threads used by the free FindBestCondition function (which builds a
  /// transient engine per call): 1 = serial, 0 = hardware concurrency.
  /// Persistent engines take their thread count at construction instead.
  size_t num_threads = 1;
};

/// Reusable search engine bound to one dataset.
///
/// Construct once per training run and issue every FindBest through it: the
/// sorted-column cache then amortizes all O(n log n) sorting across the
/// run's refinement calls. Calls must be issued serially from one thread
/// (the engine parallelizes internally).
class ConditionSearchEngine {
 public:
  /// `num_threads`: 1 = serial, 0 = hardware concurrency, n = n workers.
  /// `cache_budget_bytes` caps the sorted-column cache's resident bytes
  /// (0 = unbounded); out-of-core training sets it so the cache spills
  /// instead of growing to O(attrs x rows). Any budget yields bit-identical
  /// results — evicted slots are rebuilt deterministically.
  explicit ConditionSearchEngine(const Dataset& dataset,
                                 size_t num_threads = 1,
                                 size_t cache_budget_bytes = 0);

  const Dataset& dataset() const { return dataset_; }

  /// Resolved thread count (never 0).
  size_t num_threads() const { return num_threads_; }

  /// Cache introspection for tests and diagnostics.
  const SortedColumnCache& cache() const { return cache_; }

  /// Finds the highest-scoring condition over `rows` (the records matched
  /// by the rule being grown). Returns nullopt when no candidate is
  /// admissible. Candidates that cover all of `rows` are skipped (they
  /// would not refine the rule), as are candidates covering nothing.
  std::optional<CandidateCondition> FindBest(
      const RowSubset& rows, CategoryId target, const ConditionScorer& scorer,
      const ConditionSearchOptions& options = {});

  /// Numeric attribute scans skipped because the dataset's zonemap range
  /// hint proves the column constant (a constant column yields no
  /// boundaries, hence no candidates — skipping it never changes the
  /// result, but avoids faulting and sorting the column).
  uint64_t pruned_attr_scans() const { return pruned_attr_scans_.load(); }

 private:
  const Dataset& dataset_;
  size_t num_threads_;
  SortedColumnCache cache_;
  std::unique_ptr<ThreadPool> pool_;          ///< null when serial
  std::vector<SortedColumn> scratch_columns_; ///< one per attribute
  std::vector<uint8_t> membership_;           ///< row mask scratch
  std::atomic<uint64_t> pruned_attr_scans_{0};
};

/// One-shot convenience wrapper: builds a transient engine (thread count
/// from `options.num_threads`) and runs a single search. Training loops
/// should hold a ConditionSearchEngine instead so column sorts are cached
/// across refinements.
std::optional<CandidateCondition> FindBestCondition(
    const Dataset& dataset, const RowSubset& rows, CategoryId target,
    const ConditionScorer& scorer, const ConditionSearchOptions& options = {});

}  // namespace pnr

#endif  // PNR_INDUCTION_CONDITION_SEARCH_H_
