// Drift-triggered background retraining for the streaming scorer.
//
// When the drift detector confirms a shift, the engine hands the trailing
// labeled rows to a RetrainOrchestrator. The orchestrator:
//
//   1. snapshots those rows to a `.pns` shard store *synchronously* via the
//      row-range writer (data/shard_store.h) — the snapshot bytes are a
//      pure function of the rows, so replays produce byte-identical
//      training sets regardless of timing;
//   2. trains a fresh PnruleClassifier on the snapshot in a background
//      thread, sized by a ThreadBudget lease so the learner borrows only
//      unreserved capacity — the scoring path keeps its reserved threads
//      and never stalls behind training (Acquire never blocks and every
//      engine is bit-identical at any thread count, so the lease width
//      changes speed, never bytes);
//   3. saves the model + schema sidecar next to the snapshot and installs
//      it into the ModelRegistry, so a live `pnr serve` fleet sharing the
//      registry hot-swaps on its next SnapshotCache refresh.
//
// The engine polls TryTake() at window boundaries: the hand-off point of a
// finished model is a deterministic stream position (the engine defers
// window processing, not ingestion, while a retrain is in flight).

#ifndef PNR_STREAM_RETRAIN_H_
#define PNR_STREAM_RETRAIN_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "common/thread_pool.h"
#include "data/dataset.h"
#include "pnrule/config.h"
#include "serve/registry.h"

namespace pnr {

struct RetrainOptions {
  /// Shards of the `.pns` training snapshot.
  uint32_t snapshot_shards = 4;
  /// Resident-memory budget for training; 0 loads the snapshot fully in
  /// RAM, > 0 trains through a demand-paged view capped at this many MiB.
  size_t max_resident_mb = 0;
  /// Learner configuration; num_threads is overridden by the budget lease.
  PnruleConfig learner;
  /// Threads requested from the budget for training.
  size_t want_threads = 2;
  /// Directory receiving snapshots and model files (must exist).
  std::string out_dir;
  /// Registry name the retrained model is installed under.
  std::string model_name = "stream";
};

class RetrainOrchestrator {
 public:
  /// Everything one retrain produced. On failure `status` carries the
  /// cause and the model/registry fields are unset.
  struct Result {
    Status status = Status::OK();
    uint64_t window_index = 0;  ///< window whose drift confirmation fired
    uint64_t version = 0;       ///< registry version after the install
    std::string snapshot_path;
    std::string model_path;
    uint64_t trained_rows = 0;
    uint64_t positives = 0;  ///< target-class rows in the training set
  };

  /// `registry` and `budget` must outlive the orchestrator.
  RetrainOrchestrator(ModelRegistry* registry, ThreadBudget* budget,
                      RetrainOptions options);
  ~RetrainOrchestrator();

  RetrainOrchestrator(const RetrainOrchestrator&) = delete;
  RetrainOrchestrator& operator=(const RetrainOrchestrator&) = delete;

  /// Snapshots `rows[0..count)` of `buffer` (all must carry labels) to
  /// `<out_dir>/retrain_w<window_index>.pns` synchronously, then starts the
  /// background train. Fails (without starting) when a retrain is already
  /// running or the snapshot cannot be written.
  Status Begin(const Dataset& buffer, const RowId* rows, size_t count,
               CategoryId target, uint64_t window_index);

  /// True while a background train is in flight (result not yet taken).
  bool running() const;

  /// Claims a finished result; false while still training or idle.
  bool TryTake(Result* out);

  /// Blocks until the in-flight train (if any) finishes. The result
  /// remains claimable via TryTake.
  void Wait();

 private:
  void TrainAndInstall(std::string snapshot_path, CategoryId target,
                       uint64_t window_index, uint64_t positives);

  ModelRegistry* registry_;
  ThreadBudget* budget_;
  RetrainOptions options_;

  mutable std::mutex mutex_;
  std::thread worker_;
  bool running_ = false;  ///< Begin succeeded, result not yet taken
  bool done_ = false;     ///< worker finished, result_ valid
  Result result_;
};

}  // namespace pnr

#endif  // PNR_STREAM_RETRAIN_H_
