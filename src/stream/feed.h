// Feed tailer: schema-validated consumption of an append-only CSV event
// file, the front of the `pnr stream` pipeline.
//
// Two layers:
//
//   * FeedParser — an incremental, transport-free CSV parser bound to a
//     fixed Schema. Bytes may arrive in arbitrary fragments (tail reads
//     deliver whatever the producer flushed); the parser buffers the
//     unterminated suffix and emits one ParsedRow per complete line through
//     a row callback. The grammar is the strict WriteCsv dialect: a header
//     naming every feature in schema order with the class column last, no
//     quoting, `?` for a missing categorical cell or a not-yet-known
//     (delayed) label. A categorical *feature* value absent from the
//     dictionary maps to kInvalidCategory and is kept — post-drift traffic
//     is exactly where unseen values appear, and the drift detector counts
//     them — while a structural defect (wrong arity, unparseable or
//     non-finite numeric, unknown class label) rejects only that row with a
//     located error "feed:<name>:<line>: <msg>". Feeding the same bytes in
//     different fragmentations is bit-identical by construction, and
//     AppendParallel chunks a large backlog over a ThreadPool with the same
//     guarantee (fixed schema = no dictionary merge; rows re-emitted in
//     file order).
//
//   * FeedTailer — the file transport: an initial catch-up pass over the
//     existing content (MappedFile + AppendParallel), then incremental
//     io::Read tail polls from the consumed offset, so the syscall fault-
//     injection harness covers the read path. The tailer never seeks
//     backward and never re-reads consumed bytes; a final Finish() flushes
//     a trailing unterminated line at explicit end-of-feed only.

#ifndef PNR_STREAM_FEED_H_
#define PNR_STREAM_FEED_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "data/schema.h"

namespace pnr {

/// One schema-validated feed record. The per-attribute slots are parallel
/// to the schema: exactly one of numeric[a] / categorical[a] is meaningful
/// depending on the attribute's type.
struct ParsedRow {
  std::vector<double> numeric;          ///< size num_attributes
  std::vector<CategoryId> categorical;  ///< size num_attributes
  /// Class label, or kInvalidCategory for a `?` (delayed) label.
  CategoryId label = kInvalidCategory;
  uint64_t line = 0;  ///< 1-based feed line the row came from
};

class FeedParser {
 public:
  struct Options {
    char delimiter = ',';
    /// Located error messages retained; further errors only count.
    size_t max_errors = 64;
  };

  using RowFn = std::function<void(const ParsedRow&)>;

  /// `schema` must outlive the parser. `name` labels errors.
  FeedParser(const Schema* schema, std::string name, Options options);
  FeedParser(const Schema* schema, std::string name)
      : FeedParser(schema, std::move(name), Options()) {}

  /// Sink for emitted rows. Must be set before the first Append.
  void set_row_fn(RowFn fn) { row_fn_ = std::move(fn); }

  /// Consumes a fragment: parses every complete line, buffers the rest.
  void Append(std::string_view bytes);

  /// Consumes a large fragment with `num_threads` workers (clamped by
  /// ThreadPool::ClampThreadsForBytes): complete lines are split into
  /// line-aligned chunks, parsed concurrently into per-chunk rows/errors,
  /// and re-emitted in file order — bit-identical to Append at any thread
  /// count. The trailing unterminated line is buffered exactly as Append
  /// would.
  void AppendParallel(std::string_view bytes, size_t num_threads);

  /// Flushes a trailing unterminated line as a final record. Only call at
  /// explicit end-of-feed; Append may not be called afterwards.
  void Finish();

  /// True once a valid header line has been consumed.
  bool header_ok() const { return header_ok_; }

  uint64_t rows_emitted() const { return rows_emitted_; }
  uint64_t lines_seen() const { return lines_seen_; }

  /// Total rejected lines (header failures count once per bad line).
  uint64_t error_count() const { return error_count_; }

  /// The first `max_errors` located messages.
  const std::vector<std::string>& errors() const { return errors_; }

 private:
  /// Parses one complete line (no terminator) into `row`; returns false
  /// with `error` set (already located) when the line is rejected.
  bool ParseLine(std::string_view line, uint64_t line_number, ParsedRow* row,
                 std::string* error) const;
  /// Validates the header line against the schema.
  bool CheckHeader(std::string_view line, uint64_t line_number,
                   std::string* error) const;
  void RecordError(std::string&& message);
  std::string Located(uint64_t line_number, const std::string& message) const;

  const Schema* schema_;
  std::string name_;
  Options options_;
  RowFn row_fn_;
  std::string pending_;  ///< unterminated trailing fragment
  bool header_ok_ = false;
  bool finished_ = false;
  uint64_t lines_seen_ = 0;
  uint64_t rows_emitted_ = 0;
  uint64_t error_count_ = 0;
  std::vector<std::string> errors_;
  ParsedRow scratch_;
};

/// File transport over a FeedParser: catch-up then incremental tailing.
class FeedTailer {
 public:
  struct Options {
    FeedParser::Options parser;
    /// Threads for the initial catch-up parse (0 = hardware concurrency).
    size_t catchup_threads = 1;
    /// Memory-map the catch-up region when possible.
    bool allow_mmap = true;
  };

  /// Opens `path` and runs the catch-up pass over its current content.
  /// Rows reach `fn` during this call. The underlying file may keep
  /// growing; call Poll() to consume appended bytes.
  static StatusOr<FeedTailer> Open(const std::string& path,
                                   const Schema* schema, FeedParser::RowFn fn,
                                   Options options);
  static StatusOr<FeedTailer> Open(const std::string& path,
                                   const Schema* schema,
                                   FeedParser::RowFn fn) {
    return Open(path, schema, std::move(fn), Options());
  }

  FeedTailer(FeedTailer&& other) noexcept;
  FeedTailer& operator=(FeedTailer&& other) noexcept;
  FeedTailer(const FeedTailer&) = delete;
  FeedTailer& operator=(const FeedTailer&) = delete;
  ~FeedTailer();

  /// Reads every byte currently appended past the consumed offset and
  /// feeds it to the parser. Returns the number of bytes consumed (0 =
  /// nothing new). Read failures surface as a Status.
  StatusOr<size_t> Poll();

  /// Declares end-of-feed: flushes a trailing unterminated line.
  void Finish() { parser_.Finish(); }

  uint64_t bytes_consumed() const { return bytes_consumed_; }
  const FeedParser& parser() const { return parser_; }
  FeedParser& parser() { return parser_; }

 private:
  FeedTailer(FeedParser parser, int fd)
      : parser_(std::move(parser)), fd_(fd) {}

  FeedParser parser_;
  int fd_ = -1;
  uint64_t bytes_consumed_ = 0;
};

}  // namespace pnr

#endif  // PNR_STREAM_FEED_H_
