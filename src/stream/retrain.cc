#include "stream/retrain.h"

#include <utility>

#include "data/schema_io.h"
#include "data/shard_store.h"
#include "pnrule/model_io.h"
#include "pnrule/pnrule.h"

namespace pnr {

RetrainOrchestrator::RetrainOrchestrator(ModelRegistry* registry,
                                         ThreadBudget* budget,
                                         RetrainOptions options)
    : registry_(registry), budget_(budget), options_(std::move(options)) {}

RetrainOrchestrator::~RetrainOrchestrator() { Wait(); }

Status RetrainOrchestrator::Begin(const Dataset& buffer, const RowId* rows,
                                  size_t count, CategoryId target,
                                  uint64_t window_index) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (running_) {
      return Status::FailedPrecondition(
          "stream retrain: a retrain is already in flight");
    }
  }
  if (count == 0) {
    return Status::InvalidArgument(
        "stream retrain: no labeled rows to train on");
  }
  if (worker_.joinable()) worker_.join();  // reap the previous worker

  // Synchronous snapshot: the training set is fixed at the moment of the
  // drift confirmation, byte-identical across replays.
  const std::string snapshot_path = options_.out_dir + "/retrain_w" +
                                    std::to_string(window_index) + ".pns";
  ShardStoreWriteOptions write_options;
  write_options.num_shards = options_.snapshot_shards;
  Status written =
      WriteShardStoreRows(buffer, rows, count, snapshot_path, write_options);
  if (!written.ok()) return written;
  uint64_t positives = 0;
  for (size_t i = 0; i < count; ++i) {
    if (buffer.label(rows[i]) == target) ++positives;
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    running_ = true;
    done_ = false;
    result_ = Result();
  }
  worker_ = std::thread(&RetrainOrchestrator::TrainAndInstall, this,
                        snapshot_path, target, window_index, positives);
  return Status::OK();
}

void RetrainOrchestrator::TrainAndInstall(std::string snapshot_path,
                                          CategoryId target,
                                          uint64_t window_index,
                                          uint64_t positives) {
  Result result;
  result.window_index = window_index;
  result.snapshot_path = snapshot_path;
  result.positives = positives;

  auto finish = [&](Status status) {
    result.status = std::move(status);
    std::lock_guard<std::mutex> lock(mutex_);
    result_ = std::move(result);
    done_ = true;
  };

  StatusOr<std::shared_ptr<const ShardStoreReader>> reader =
      ShardStoreReader::Open(snapshot_path);
  if (!reader.ok()) return finish(reader.status());
  StatusOr<Dataset> dataset =
      options_.max_resident_mb > 0
          ? MakePagedDataset(*reader, options_.max_resident_mb << 20)
          : (*reader)->LoadDataset();
  if (!dataset.ok()) return finish(dataset.status());
  result.trained_rows = dataset->num_rows();

  // Lease training width from the shared budget; the scoring path's
  // reservation is untouched, so this never blocks and never steals the
  // reactor's threads. Width affects speed only — training is bit-identical
  // at any thread count.
  PnruleConfig config = options_.learner;
  {
    ThreadBudget::Lease lease = budget_->Acquire(options_.want_threads);
    config.num_threads = lease.count();
    PnruleLearner learner(config);
    StatusOr<PnruleClassifier> model = learner.Train(*dataset, target);
    if (!model.ok()) return finish(model.status());

    result.model_path = options_.out_dir + "/model_w" +
                        std::to_string(window_index) + ".txt";
    Status saved = SavePnruleModel(*model, dataset->schema(),
                                   result.model_path);
    if (!saved.ok()) return finish(saved);
    // Schema sidecar: lets `pnr serve --load` and checkpoint resume read
    // the pair straight from disk.
    saved = SaveSchema(dataset->schema(), result.model_path + ".schema");
    if (!saved.ok()) return finish(saved);

    registry_->Install(options_.model_name, dataset->schema(),
                       std::move(*model));
  }
  const std::shared_ptr<const ServedModel> installed =
      registry_->Get(options_.model_name);
  result.version = installed ? installed->version : 0;
  finish(Status::OK());
}

bool RetrainOrchestrator::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

bool RetrainOrchestrator::TryTake(Result* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!running_ || !done_) return false;
  *out = std::move(result_);
  running_ = false;
  done_ = false;
  return true;
}

void RetrainOrchestrator::Wait() {
  if (worker_.joinable()) worker_.join();
}

}  // namespace pnr
