// StreamEngine: the `pnr stream` core loop tying the feed parser, windowed
// scorer, drift detector, and retrain orchestrator together.
//
// The engine owns a rolling in-RAM buffer of recent rows. Ingest() appends
// schema-valid rows (from a FeedParser callback); Pump() processes every
// complete tumbling window: score through the current model, fold window
// metrics, feed the drift detector, and — on a confirmed drift — hand the
// trailing labeled rows to the retrain orchestrator.
//
// Determinism contract (pinned by tests/stream_test.cc): the journal, every
// retrained model file, and the registry swap sequence are byte-identical
// at any --threads and any feed fragmentation. Three rules make that hold:
//
//   * window boundaries are row ordinals (window w = ordinals
//     [w*window_rows, (w+1)*window_rows)), never poll timing;
//   * a retrain's training set is the trailing labeled rows *at or before
//     the confirming window's end ordinal* — rows that happen to be
//     buffered past the boundary are invisible to it;
//   * while a retrain is in flight, window *processing* defers (ingestion
//     continues — the feed never stalls and the buffer keeps absorbing
//     rows); deferred windows are processed after the hand-off, so window
//     W+1 onward is always scored by the post-swap model no matter how
//     long training took. The swap point in the journal is therefore a
//     stream position, not a wall-clock event.
//
// Model versions in the journal are *logical* (1 + completed swaps,
// restored from checkpoints), so a resumed run renders the same lines as
// an uninterrupted one even though the process-local registry restarts its
// version counter.
//
// Checkpoints ("pnr-stream-checkpoint v1") capture the stream position,
// swap count, current model path, and the drift detector blob; they are
// written atomically (tmp + rename) at window boundaries while no retrain
// is in flight. Resume = reinstall the checkpointed model, Restore the
// engine, and replay the feed: already-processed rows fast-forward (the
// trailing retain span refills the buffer), and processing continues at
// the checkpointed window. The sliding aggregate intentionally restarts
// empty — it is a display smoother, not state the drift or retrain logic
// depends on.

#ifndef PNR_STREAM_ENGINE_H_
#define PNR_STREAM_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "serve/registry.h"
#include "stream/drift.h"
#include "stream/feed.h"
#include "stream/retrain.h"
#include "stream/window.h"

namespace pnr {

struct StreamEngineOptions {
  /// Tumbling window size in schema-valid rows.
  uint64_t window_rows = 1000;
  /// Trailing windows in the sliding aggregate.
  size_t sliding_windows = 5;
  /// Score >= threshold predicts the target class.
  double threshold = 0.5;
  /// ScoreBatch fan-out width (bit-identical at any value).
  size_t score_threads = 1;
  /// The rare class being watched.
  CategoryId target = kInvalidCategory;
  /// Master switch for drift-triggered retraining.
  bool retrain_enabled = true;
  /// Trailing labeled rows per retrain snapshot.
  uint64_t retrain_rows = 6000;
  /// Cap on completed swaps (~0 = unlimited).
  uint64_t max_swaps = ~uint64_t{0};
  /// Path of the initial model artifact (recorded in checkpoints).
  std::string model_path;
  /// Checkpoint file; empty disables checkpointing.
  std::string checkpoint_path;
  DriftOptions drift;
  RetrainOptions retrain;
  /// Journal sink (e.g. file writer). Lines are also retained in
  /// journal() regardless.
  std::function<void(const std::string&)> line_fn;
};

/// The serializable engine state between runs.
struct StreamCheckpoint {
  uint64_t windows = 0;        ///< tumbling windows fully processed
  uint64_t rows = 0;           ///< rows consumed == windows * window_rows
  uint64_t swaps = 0;          ///< completed hot-swaps
  uint64_t model_version = 1;  ///< logical version of the current model
  std::string model_path;      ///< model file to reinstall on resume
  std::string drift_blob;      ///< embedded DriftDetector v1 blob, verbatim
};

/// Renders / parses the v1 checkpoint. Parse is strict — every accepted
/// input serializes back byte-identically (fuzzed via the `stream`
/// target); the drift blob is carried verbatim and validated separately by
/// DriftDetector::Restore.
std::string SerializeStreamCheckpoint(const StreamCheckpoint& checkpoint);
StatusOr<StreamCheckpoint> ParseStreamCheckpoint(const std::string& text);

class StreamEngine {
 public:
  /// `schema`, `registry`, and `budget` must outlive the engine. The
  /// current model is looked up in `registry` under
  /// options.retrain.model_name.
  StreamEngine(const Schema* schema, ModelRegistry* registry,
               ThreadBudget* budget, StreamEngineOptions options);

  /// Adopts a checkpoint. Call before Start()/Ingest(): positions the
  /// stream (already-processed rows will fast-forward), restores the swap
  /// count, logical model version, and drift detector.
  Status RestoreCheckpoint(const StreamCheckpoint& checkpoint);

  /// Resolves the current model from the registry. Call after the initial
  /// (or checkpointed) model was installed and before the first Pump().
  Status Start();

  /// Appends one schema-valid row to the rolling buffer. Labels may be
  /// kInvalidCategory (delayed); such rows score and drift-count but are
  /// excluded from the confusion proxy and from retrain snapshots.
  void Ingest(const ParsedRow& row);

  /// Processes every complete window (deferring while a retrain is in
  /// flight), resolves finished retrains, compacts the buffer, and writes
  /// a checkpoint when due.
  Status Pump();

  /// Declares end-of-feed: drains deferred windows (waiting out any
  /// in-flight retrain), then emits the final partial window (scored and
  /// journaled, excluded from drift) and a final checkpoint.
  Status FinishStream();

  // -- Observability ---------------------------------------------------------

  uint64_t rows_ingested() const { return rows_ingested_; }
  uint64_t windows_processed() const { return windows_processed_; }
  uint64_t swaps_done() const { return swaps_done_; }
  uint64_t model_version() const { return logical_version_; }
  const std::string& model_path() const { return model_path_; }
  const DriftDetector& drift() const { return drift_; }
  const SlidingAggregate& sliding() const { return sliding_; }
  /// Every journal line emitted so far, in order.
  const std::vector<std::string>& journal() const { return journal_; }
  /// Stats of every processed window (including the final partial one).
  const std::vector<WindowStats>& window_history() const { return history_; }

  /// Current engine state as a checkpoint value.
  StreamCheckpoint MakeCheckpoint() const;

 private:
  void Emit(std::string line);
  void ProcessWindow();
  void StartRetrain(uint64_t window_index);
  void Resolve(const RetrainOrchestrator::Result& result);
  void MaybeCompact();
  Status MaybeCheckpoint();
  uint64_t RetainRows() const;

  const Schema* schema_;
  ModelRegistry* registry_;
  StreamEngineOptions options_;
  RetrainOrchestrator orchestrator_;
  DriftDetector drift_;
  SlidingAggregate sliding_;
  Dataset buffer_;

  std::shared_ptr<const ServedModel> model_;
  std::string model_path_;
  uint64_t logical_version_ = 1;
  uint64_t rows_ingested_ = 0;   ///< valid rows seen (incl. fast-forwarded)
  uint64_t base_ordinal_ = 0;    ///< stream ordinal of buffer row 0
  uint64_t skip_before_ = 0;     ///< resume fast-forward boundary
  uint64_t windows_processed_ = 0;
  uint64_t swaps_done_ = 0;
  uint64_t checkpointed_windows_ = ~uint64_t{0};
  std::vector<std::string> journal_;
  std::vector<WindowStats> history_;
};

}  // namespace pnr

#endif  // PNR_STREAM_ENGINE_H_
