#include "stream/feed.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <utility>

#include "common/io_hooks.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "data/mapped_file.h"

namespace pnr {

FeedParser::FeedParser(const Schema* schema, std::string name,
                       Options options)
    : schema_(schema), name_(std::move(name)), options_(options) {
  assert(schema_ != nullptr);
  scratch_.numeric.resize(schema_->num_attributes(), 0.0);
  scratch_.categorical.resize(schema_->num_attributes(), kInvalidCategory);
}

std::string FeedParser::Located(uint64_t line_number,
                                const std::string& message) const {
  return "feed:" + name_ + ":" + std::to_string(line_number) + ": " + message;
}

void FeedParser::RecordError(std::string&& message) {
  ++error_count_;
  if (errors_.size() < options_.max_errors) {
    errors_.push_back(std::move(message));
  }
}

bool FeedParser::CheckHeader(std::string_view line, uint64_t line_number,
                             std::string* error) const {
  const size_t num_attrs = schema_->num_attributes();
  size_t field = 0;
  size_t start = 0;
  while (true) {
    const size_t end = line.find(options_.delimiter, start);
    const std::string_view name = TrimWhitespace(
        line.substr(start, end == std::string_view::npos ? end : end - start));
    const std::string_view expected =
        field < num_attrs
            ? std::string_view(
                  schema_->attribute(static_cast<AttrIndex>(field)).name())
            : (field == num_attrs
                   ? std::string_view(schema_->class_attr().name())
                   : std::string_view());
    if (field > num_attrs || name != expected) {
      *error = Located(line_number,
                       "header does not match the schema at column " +
                           std::to_string(field + 1) + " (expected '" +
                           std::string(expected) + "', got '" +
                           std::string(name) + "')");
      return false;
    }
    ++field;
    if (end == std::string_view::npos) break;
    start = end + 1;
  }
  if (field != num_attrs + 1) {
    *error = Located(line_number,
                     "header has " + std::to_string(field) + " columns, " +
                         "schema needs " + std::to_string(num_attrs + 1));
    return false;
  }
  return true;
}

bool FeedParser::ParseLine(std::string_view line, uint64_t line_number,
                           ParsedRow* row, std::string* error) const {
  const size_t num_attrs = schema_->num_attributes();
  size_t field = 0;
  size_t start = 0;
  while (true) {
    const size_t end = line.find(options_.delimiter, start);
    const std::string_view cell = TrimWhitespace(
        line.substr(start, end == std::string_view::npos ? end : end - start));
    if (field < num_attrs) {
      const AttrIndex attr = static_cast<AttrIndex>(field);
      const Attribute& attribute = schema_->attribute(attr);
      if (attribute.is_numeric()) {
        double value = 0.0;
        if (!ParseDouble(cell, &value) || !std::isfinite(value)) {
          *error = Located(line_number, "bad numeric value '" +
                                            std::string(cell) +
                                            "' for attribute '" +
                                            attribute.name() + "'");
          return false;
        }
        row->numeric[field] = value;
      } else {
        // `?` and values outside the dictionary both map to
        // kInvalidCategory: unseen values are data (the drift detector's
        // unseen bucket), not defects.
        row->categorical[field] =
            cell == "?" ? kInvalidCategory : attribute.FindCategory(cell);
      }
    } else if (field == num_attrs) {
      if (cell == "?") {
        row->label = kInvalidCategory;  // delayed label
      } else {
        const CategoryId label = schema_->class_attr().FindCategory(cell);
        if (label == kInvalidCategory) {
          *error = Located(line_number,
                           "unknown class label '" + std::string(cell) + "'");
          return false;
        }
        row->label = label;
      }
    }
    ++field;
    if (end == std::string_view::npos) break;
    start = end + 1;
  }
  if (field != num_attrs + 1) {
    *error =
        Located(line_number, "expected " + std::to_string(num_attrs + 1) +
                                 " fields, got " + std::to_string(field));
    return false;
  }
  row->line = line_number;
  return true;
}

namespace {

std::string_view StripCr(std::string_view line) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return line;
}

}  // namespace

void FeedParser::Append(std::string_view bytes) {
  assert(!finished_);
  size_t start = 0;
  while (start <= bytes.size()) {
    const size_t nl = bytes.find('\n', start);
    if (nl == std::string_view::npos) {
      pending_.append(bytes.substr(start));
      return;
    }
    std::string_view line;
    if (pending_.empty()) {
      line = bytes.substr(start, nl - start);
    } else {
      pending_.append(bytes.substr(start, nl - start));
      line = pending_;
    }
    const uint64_t line_number = ++lines_seen_;
    line = StripCr(line);
    std::string error;
    if (!header_ok_) {
      if (CheckHeader(line, line_number, &error)) {
        header_ok_ = true;
      } else {
        RecordError(std::move(error));
      }
    } else if (line.empty()) {
      RecordError(Located(line_number, "empty line"));
    } else if (ParseLine(line, line_number, &scratch_, &error)) {
      ++rows_emitted_;
      if (row_fn_) row_fn_(scratch_);
    } else {
      RecordError(std::move(error));
    }
    pending_.clear();
    start = nl + 1;
  }
}

void FeedParser::AppendParallel(std::string_view bytes, size_t num_threads) {
  assert(!finished_);
  // Serial prefix: complete any buffered fragment and consume the header
  // line; the chunk workers assume a validated header and line-aligned
  // input.
  while (!bytes.empty() && (!header_ok_ || !pending_.empty())) {
    const size_t nl = bytes.find('\n');
    if (nl == std::string_view::npos) {
      Append(bytes);
      return;
    }
    Append(bytes.substr(0, nl + 1));
    bytes.remove_prefix(nl + 1);
  }
  const size_t last_nl = bytes.rfind('\n');
  if (last_nl == std::string_view::npos) {
    Append(bytes);
    return;
  }
  const std::string_view region = bytes.substr(0, last_nl + 1);
  const std::string_view tail = bytes.substr(last_nl + 1);
  const size_t threads =
      ThreadPool::ClampThreadsForBytes(num_threads, region.size());
  if (threads <= 1) {
    Append(region);
    if (!tail.empty()) Append(tail);
    return;
  }

  // Line-aligned chunks, one per worker.
  struct Chunk {
    size_t begin = 0;
    size_t end = 0;
    uint64_t first_line = 0;  ///< 1-based line number of the chunk's first line
    std::vector<ParsedRow> rows;
    std::vector<std::pair<uint64_t, std::string>> errors;
    uint64_t error_count = 0;
  };
  std::vector<Chunk> chunks;
  chunks.reserve(threads);
  const size_t target = region.size() / threads;
  size_t begin = 0;
  while (begin < region.size()) {
    size_t end = std::min(begin + std::max<size_t>(target, 1), region.size());
    const size_t nl = region.find('\n', end == 0 ? 0 : end - 1);
    end = nl == std::string_view::npos ? region.size() : nl + 1;
    Chunk chunk;
    chunk.begin = begin;
    chunk.end = end;
    chunks.push_back(std::move(chunk));
    begin = end;
  }
  // Line numbers are a prefix sum of per-chunk newline counts, computed
  // before the parallel parse so workers can label errors exactly as the
  // serial path would.
  uint64_t line = lines_seen_;
  for (Chunk& chunk : chunks) {
    chunk.first_line = line + 1;
    line += static_cast<uint64_t>(
        std::count(region.begin() + chunk.begin, region.begin() + chunk.end,
                   '\n'));
  }

  ThreadPool pool(threads);
  pool.ParallelFor(chunks.size(), [&](size_t index) {
    Chunk& chunk = chunks[index];
    std::string_view text = region.substr(chunk.begin, chunk.end - chunk.begin);
    uint64_t line_number = chunk.first_line;
    ParsedRow row;
    row.numeric.resize(schema_->num_attributes(), 0.0);
    row.categorical.resize(schema_->num_attributes(), kInvalidCategory);
    size_t start = 0;
    while (start < text.size()) {
      size_t nl = text.find('\n', start);
      assert(nl != std::string_view::npos);
      const std::string_view full = text.substr(start, nl - start);
      const std::string_view line_text = StripCr(full);
      std::string error;
      if (line_text.empty()) {
        ++chunk.error_count;
        chunk.errors.emplace_back(line_number,
                                  Located(line_number, "empty line"));
      } else if (ParseLine(line_text, line_number, &row, &error)) {
        chunk.rows.push_back(row);
      } else {
        ++chunk.error_count;
        chunk.errors.emplace_back(line_number, std::move(error));
      }
      ++line_number;
      start = nl + 1;
    }
  });

  // Deterministic merge in file order.
  for (Chunk& chunk : chunks) {
    for (const ParsedRow& row : chunk.rows) {
      ++rows_emitted_;
      if (row_fn_) row_fn_(row);
    }
    error_count_ += chunk.error_count;
    for (auto& [line_number, message] : chunk.errors) {
      (void)line_number;
      if (errors_.size() < options_.max_errors) {
        errors_.push_back(std::move(message));
      }
    }
  }
  lines_seen_ = line;
  if (!tail.empty()) Append(tail);
}

void FeedParser::Finish() {
  if (finished_) return;
  if (!pending_.empty()) {
    // Consume the unterminated final line exactly as if the producer had
    // terminated it.
    std::string last;
    last.swap(pending_);
    last.push_back('\n');
    Append(last);
  }
  finished_ = true;
}

// -- FeedTailer --------------------------------------------------------------

StatusOr<FeedTailer> FeedTailer::Open(const std::string& path,
                                      const Schema* schema,
                                      FeedParser::RowFn fn, Options options) {
  FeedParser parser(schema, path, options.parser);
  parser.set_row_fn(std::move(fn));
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::NotFound("stream feed: cannot open " + path + ": " +
                            std::strerror(errno));
  }
  StatusOr<MappedFile> mapped = MappedFile::Open(path, options.allow_mmap);
  if (!mapped.ok()) {
    ::close(fd);
    return mapped.status();
  }
  FeedTailer tailer(std::move(parser), fd);
  const std::string_view bytes = mapped->bytes();
  tailer.parser_.AppendParallel(bytes, options.catchup_threads);
  tailer.bytes_consumed_ = bytes.size();
  if (::lseek(fd, static_cast<off_t>(bytes.size()), SEEK_SET) < 0) {
    return Status::IOError("stream feed: cannot seek " + path + ": " +
                           std::strerror(errno));
  }
  return tailer;
}

FeedTailer::FeedTailer(FeedTailer&& other) noexcept
    : parser_(std::move(other.parser_)),
      fd_(other.fd_),
      bytes_consumed_(other.bytes_consumed_) {
  other.fd_ = -1;
}

FeedTailer& FeedTailer::operator=(FeedTailer&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    parser_ = std::move(other.parser_);
    fd_ = other.fd_;
    bytes_consumed_ = other.bytes_consumed_;
    other.fd_ = -1;
  }
  return *this;
}

FeedTailer::~FeedTailer() {
  if (fd_ >= 0) ::close(fd_);
}

StatusOr<size_t> FeedTailer::Poll() {
  size_t total = 0;
  char buf[1 << 16];
  while (true) {
    const ssize_t n = io::Read(fd_, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("stream feed: read failed: ") +
                             std::strerror(errno));
    }
    if (n == 0) break;
    parser_.Append(std::string_view(buf, static_cast<size_t>(n)));
    total += static_cast<size_t>(n);
    bytes_consumed_ += static_cast<size_t>(n);
  }
  return total;
}

}  // namespace pnr
