// Windowed rare-class metrics for the streaming scorer.
//
// The stream is cut into tumbling windows of a fixed row count — window
// boundaries are a pure function of the number of schema-valid rows
// consumed, never of wall-clock or thread timing, which is what makes a
// replay byte-identical at any --threads. Every completed window yields a
// WindowStats: rare-class support and score histogram over all rows, plus a
// precision/recall proxy over the rows whose (possibly delayed) labels were
// present. A SlidingAggregate folds the trailing K windows into the
// smoothed view the journal reports next to each tumbling line.
//
// All rendering is deterministic text: fixed field order, FormatDouble with
// fixed precision, no timestamps.

#ifndef PNR_STREAM_WINDOW_H_
#define PNR_STREAM_WINDOW_H_

#include <array>
#include <cstdint>
#include <deque>
#include <string>

#include "data/attribute.h"
#include "eval/confusion.h"

namespace pnr {

/// Fixed score-histogram resolution: bin i holds scores in
/// [i/16, (i+1)/16), with 1.0 clamped into the last bin.
inline constexpr size_t kStreamScoreBins = 16;

/// Maps a score in [0, 1] to its histogram bin.
size_t StreamScoreBin(double score);

/// Metrics of one completed tumbling window.
struct WindowStats {
  uint64_t index = 0;          ///< tumbling window index (0-based)
  uint64_t first_ordinal = 0;  ///< stream ordinal of the window's first row
  uint64_t rows = 0;
  uint64_t labeled_rows = 0;     ///< rows whose label had arrived
  uint64_t predicted_positive = 0;  ///< rows scored >= threshold (all rows)
  uint64_t labeled_positive = 0;    ///< target-class rows among the labeled
  /// Confusion over labeled rows only (the delayed-label proxy).
  Confusion confusion;
  /// Score distribution over all rows.
  std::array<uint64_t, kStreamScoreBins> score_histogram{};
  uint64_t model_version = 0;  ///< version of the model that scored it
  bool partial = false;        ///< end-of-feed remainder (< window_rows rows)
};

/// Computes one window's stats from parallel arrays: `scores[i]` is row i's
/// model score, `labels[i]` its class id or kInvalidCategory when the label
/// has not arrived, `target` the rare class. Pure function — determinism
/// follows from the inputs.
WindowStats ComputeWindowStats(const double* scores, const CategoryId* labels,
                               uint64_t count, CategoryId target,
                               double threshold);

/// Rolling aggregate of the trailing `capacity` windows.
class SlidingAggregate {
 public:
  explicit SlidingAggregate(size_t capacity) : capacity_(capacity) {}

  void Push(const WindowStats& window);

  size_t size() const { return windows_.size(); }
  const Confusion& confusion() const { return confusion_; }
  uint64_t rows() const { return rows_; }
  uint64_t labeled_positive() const { return labeled_positive_; }
  uint64_t predicted_positive() const { return predicted_positive_; }

 private:
  size_t capacity_;
  std::deque<WindowStats> windows_;
  Confusion confusion_;
  uint64_t rows_ = 0;
  uint64_t labeled_positive_ = 0;
  uint64_t predicted_positive_ = 0;
};

/// Renders the deterministic journal line for a completed window:
///   window <i> rows=... labeled=... pos=... pred=... recall=... precision=...
///   slide_recall=... slide_precision=... hist=a:b:c... model=v<V>[ partial]
std::string RenderWindowLine(const WindowStats& window,
                             const SlidingAggregate& sliding);

}  // namespace pnr

#endif  // PNR_STREAM_WINDOW_H_
