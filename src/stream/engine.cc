#include "stream/engine.h"

#include <cassert>
#include <cstdio>
#include <utility>

#include "common/file_io.h"
#include "common/string_util.h"
#include "eval/batch.h"

namespace pnr {

StreamEngine::StreamEngine(const Schema* schema, ModelRegistry* registry,
                           ThreadBudget* budget, StreamEngineOptions options)
    : schema_(schema),
      registry_(registry),
      options_(std::move(options)),
      orchestrator_(registry, budget, options_.retrain),
      drift_(schema, options_.drift),
      sliding_(options_.sliding_windows),
      buffer_(*schema),
      model_path_(options_.model_path) {
  assert(schema_ != nullptr);
  assert(options_.window_rows > 0);
}

Status StreamEngine::RestoreCheckpoint(const StreamCheckpoint& checkpoint) {
  if (rows_ingested_ != 0 || windows_processed_ != 0) {
    return Status::FailedPrecondition(
        "stream: RestoreCheckpoint must precede ingestion");
  }
  if (checkpoint.rows != checkpoint.windows * options_.window_rows) {
    return Status::InvalidArgument(
        "stream checkpoint: rows " + std::to_string(checkpoint.rows) +
        " does not equal windows " + std::to_string(checkpoint.windows) +
        " x window_rows " + std::to_string(options_.window_rows) +
        " (was the checkpoint written with a different --window?)");
  }
  Status restored = drift_.Restore(checkpoint.drift_blob);
  if (!restored.ok()) return restored;
  windows_processed_ = checkpoint.windows;
  swaps_done_ = checkpoint.swaps;
  logical_version_ = checkpoint.model_version;
  model_path_ = checkpoint.model_path;
  // Refill only the trailing retain span on replay; older rows fast-forward.
  skip_before_ = checkpoint.rows > RetainRows()
                     ? checkpoint.rows - RetainRows()
                     : 0;
  base_ordinal_ = skip_before_;
  return Status::OK();
}

Status StreamEngine::Start() {
  model_ = registry_->Get(options_.retrain.model_name);
  if (model_ == nullptr) {
    return Status::NotFound("stream: no model named '" +
                            options_.retrain.model_name +
                            "' in the registry");
  }
  if (model_->schema.num_attributes() != schema_->num_attributes()) {
    return Status::InvalidArgument(
        "stream: model schema has " +
        std::to_string(model_->schema.num_attributes()) +
        " attributes, the feed schema has " +
        std::to_string(schema_->num_attributes()));
  }
  return Status::OK();
}

void StreamEngine::Ingest(const ParsedRow& row) {
  const uint64_t ordinal = rows_ingested_++;
  if (ordinal < skip_before_) return;  // resume fast-forward
  const RowId id = buffer_.AddRow();
  for (size_t a = 0; a < schema_->num_attributes(); ++a) {
    const AttrIndex attr = static_cast<AttrIndex>(a);
    if (schema_->attribute(attr).is_numeric()) {
      buffer_.set_numeric(id, attr, row.numeric[a]);
    } else {
      buffer_.set_categorical(id, attr, row.categorical[a]);
    }
  }
  buffer_.set_label(id, row.label);
}

void StreamEngine::Emit(std::string line) {
  if (options_.line_fn) options_.line_fn(line);
  journal_.push_back(std::move(line));
}

Status StreamEngine::Pump() {
  while (true) {
    if (orchestrator_.running()) {
      RetrainOrchestrator::Result result;
      // Window processing defers until the in-flight retrain hands off —
      // that is what pins the swap to a stream position. Ingestion has
      // already happened; nothing upstream stalls.
      if (!orchestrator_.TryTake(&result)) break;
      Resolve(result);
    }
    if (rows_ingested_ <
        (windows_processed_ + 1) * options_.window_rows) {
      break;
    }
    ProcessWindow();
  }
  MaybeCompact();
  return MaybeCheckpoint();
}

Status StreamEngine::FinishStream() {
  while (true) {
    Status pumped = Pump();
    if (!pumped.ok()) return pumped;
    if (!orchestrator_.running()) break;
    orchestrator_.Wait();  // next Pump() claims the result
  }
  // Final partial window: scored and journaled, never drift-observed (a
  // short remainder would skew the histograms it is compared against).
  const uint64_t first = windows_processed_ * options_.window_rows;
  if (rows_ingested_ > first) {
    const uint64_t count = rows_ingested_ - first;
    assert(first >= base_ordinal_);
    const size_t begin = static_cast<size_t>(first - base_ordinal_);
    std::vector<RowId> rows(count);
    std::vector<CategoryId> labels(count);
    for (uint64_t i = 0; i < count; ++i) {
      rows[i] = static_cast<RowId>(begin + i);
      labels[i] = buffer_.label(rows[i]);
    }
    std::vector<double> scores(count, 0.0);
    BatchScoreOptions score_options;
    score_options.num_threads = options_.score_threads;
    model_->model->ScoreBatch(buffer_, rows.data(), rows.size(), scores.data(),
                             ClampOptionsForDataset(buffer_, score_options));
    WindowStats stats =
        ComputeWindowStats(scores.data(), labels.data(), count,
                           options_.target, options_.threshold);
    stats.index = windows_processed_;
    stats.first_ordinal = first;
    stats.model_version = logical_version_;
    stats.partial = true;
    sliding_.Push(stats);
    Emit(RenderWindowLine(stats, sliding_));
    history_.push_back(stats);
  }
  return MaybeCheckpoint();
}

void StreamEngine::ProcessWindow() {
  const uint64_t window_index = windows_processed_;
  const uint64_t first = window_index * options_.window_rows;
  const uint64_t count = options_.window_rows;
  assert(first >= base_ordinal_);
  const size_t begin = static_cast<size_t>(first - base_ordinal_);
  assert(begin + count <= buffer_.num_rows());

  std::vector<RowId> rows(count);
  std::vector<CategoryId> labels(count);
  for (uint64_t i = 0; i < count; ++i) {
    rows[i] = static_cast<RowId>(begin + i);
    labels[i] = buffer_.label(rows[i]);
  }
  std::vector<double> scores(count, 0.0);
  BatchScoreOptions score_options;
  score_options.num_threads = options_.score_threads;
  model_->model->ScoreBatch(buffer_, rows.data(), rows.size(), scores.data(),
                           ClampOptionsForDataset(buffer_, score_options));

  WindowStats stats = ComputeWindowStats(scores.data(), labels.data(), count,
                                         options_.target, options_.threshold);
  stats.index = window_index;
  stats.first_ordinal = first;
  stats.model_version = logical_version_;
  sliding_.Push(stats);
  Emit(RenderWindowLine(stats, sliding_));
  history_.push_back(stats);
  windows_processed_ = window_index + 1;

  const DriftDetector::WindowReport report = drift_.Observe(
      buffer_, rows.data(), rows.size(), scores.data(), options_.target);
  if (report.warmup) return;
  if (report.over_threshold) {
    std::string line = "drift window=" + std::to_string(window_index);
    line += " psi=" + FormatDouble(report.max_feature_psi, 6);
    line += " attr=" +
            (report.worst_attr >= 0
                 ? schema_->attribute(report.worst_attr).name()
                 : std::string("-"));
    line += " score_psi=" + FormatDouble(report.score_psi, 6);
    line += " label_psi=" + FormatDouble(report.label_psi, 6);
    line += " streak=" + std::to_string(report.consecutive);
    if (report.confirmed) line += " confirmed";
    Emit(std::move(line));
  }
  if (report.confirmed) {
    if (!options_.retrain_enabled || swaps_done_ >= options_.max_swaps) {
      drift_.ResetBaseline();  // re-arm instead of confirming every window
      return;
    }
    StartRetrain(window_index);
  }
}

void StreamEngine::StartRetrain(uint64_t window_index) {
  // Training set: trailing labeled rows whose ordinal is at or before the
  // confirming window's end — rows buffered past the boundary are
  // invisible, so the set is a pure function of the stream position.
  const uint64_t boundary = (window_index + 1) * options_.window_rows;
  assert(boundary >= base_ordinal_);
  const size_t end = static_cast<size_t>(boundary - base_ordinal_);
  std::vector<RowId> labeled;
  for (size_t i = 0; i < end; ++i) {
    if (buffer_.label(static_cast<RowId>(i)) != kInvalidCategory) {
      labeled.push_back(static_cast<RowId>(i));
    }
  }
  if (labeled.size() > options_.retrain_rows) {
    labeled.erase(labeled.begin(),
                  labeled.end() - static_cast<size_t>(options_.retrain_rows));
  }
  if (labeled.empty()) {
    Emit("retrain skipped window=" + std::to_string(window_index) +
         ": no labeled rows");
    drift_.ResetBaseline();
    return;
  }
  Status begun = orchestrator_.Begin(buffer_, labeled.data(), labeled.size(),
                                     options_.target, window_index);
  if (!begun.ok()) {
    Emit("retrain failed window=" + std::to_string(window_index) + ": " +
         begun.message());
    drift_.ResetBaseline();
    return;
  }
  Emit("retrain start window=" + std::to_string(window_index) +
       " rows=" + std::to_string(labeled.size()));
}

void StreamEngine::Resolve(const RetrainOrchestrator::Result& result) {
  if (result.status.ok()) {
    ++swaps_done_;
    ++logical_version_;
    model_ = registry_->Get(options_.retrain.model_name);
    assert(model_ != nullptr);
    model_path_ = result.model_path;
    Emit("retrain done window=" + std::to_string(result.window_index) +
         " rows=" + std::to_string(result.trained_rows) +
         " pos=" + std::to_string(result.positives));
    Emit("swap window=" + std::to_string(result.window_index) +
         " version=v" + std::to_string(logical_version_));
  } else {
    Emit("retrain failed window=" + std::to_string(result.window_index) +
         ": " + result.status.message());
  }
  // Either way the baseline restarts from post-event traffic; the warmup
  // doubles as the retrain cooldown.
  drift_.ResetBaseline();
}

uint64_t StreamEngine::RetainRows() const {
  return std::max<uint64_t>(4 * options_.window_rows,
                            2 * options_.retrain_rows);
}

void StreamEngine::MaybeCompact() {
  const uint64_t processed = windows_processed_ * options_.window_rows;
  if (processed <= base_ordinal_) return;
  const uint64_t in_buffer = processed - base_ordinal_;
  const uint64_t retain = RetainRows();
  // Trigger on processed rows only, so compaction points are a function of
  // the window sequence — not of how far ingestion ran ahead.
  if (in_buffer <= 2 * retain) return;
  const uint64_t drop = in_buffer - retain;
  Dataset compacted(buffer_.schema());
  const size_t keep = buffer_.num_rows() - static_cast<size_t>(drop);
  compacted.AppendRows(keep);
  for (size_t i = 0; i < keep; ++i) {
    const RowId from = static_cast<RowId>(drop + i);
    const RowId to = static_cast<RowId>(i);
    for (size_t a = 0; a < schema_->num_attributes(); ++a) {
      const AttrIndex attr = static_cast<AttrIndex>(a);
      if (schema_->attribute(attr).is_numeric()) {
        compacted.set_numeric(to, attr, buffer_.numeric(from, attr));
      } else {
        compacted.set_categorical(to, attr, buffer_.categorical(from, attr));
      }
    }
    compacted.set_label(to, buffer_.label(from));
  }
  buffer_ = std::move(compacted);
  base_ordinal_ += drop;
}

StreamCheckpoint StreamEngine::MakeCheckpoint() const {
  StreamCheckpoint checkpoint;
  checkpoint.windows = windows_processed_;
  checkpoint.rows = windows_processed_ * options_.window_rows;
  checkpoint.swaps = swaps_done_;
  checkpoint.model_version = logical_version_;
  checkpoint.model_path = model_path_;
  checkpoint.drift_blob = drift_.Serialize();
  return checkpoint;
}

Status StreamEngine::MaybeCheckpoint() {
  if (options_.checkpoint_path.empty()) return Status::OK();
  if (orchestrator_.running()) return Status::OK();  // mid-retrain state
  if (windows_processed_ == checkpointed_windows_) return Status::OK();
  const std::string text = SerializeStreamCheckpoint(MakeCheckpoint());
  const std::string tmp = options_.checkpoint_path + ".tmp";
  Status written = WriteStringToFile(text, tmp);
  if (!written.ok()) return written;
  if (std::rename(tmp.c_str(), options_.checkpoint_path.c_str()) != 0) {
    return Status::IOError("stream: cannot rename " + tmp + " to " +
                           options_.checkpoint_path);
  }
  checkpointed_windows_ = windows_processed_;
  return Status::OK();
}

// -- Checkpoint serialization -------------------------------------------------

std::string SerializeStreamCheckpoint(const StreamCheckpoint& checkpoint) {
  std::string out = "pnr-stream-checkpoint v1\n";
  out += "windows " + std::to_string(checkpoint.windows) + "\n";
  out += "rows " + std::to_string(checkpoint.rows) + "\n";
  out += "swaps " + std::to_string(checkpoint.swaps) + "\n";
  out += "model_version " + std::to_string(checkpoint.model_version) + "\n";
  out += "model " + checkpoint.model_path + "\n";
  // The drift blob embeds with a line-count prefix, the same device the
  // multiclass model format uses for nested blobs.
  size_t blob_lines = 0;
  for (const char c : checkpoint.drift_blob) {
    if (c == '\n') ++blob_lines;
  }
  out += "drift " + std::to_string(blob_lines) + "\n";
  out += checkpoint.drift_blob;
  out += "end\n";
  return out;
}

namespace {

Status CheckpointError(size_t line_number, const std::string& message) {
  return Status::InvalidArgument("stream-checkpoint:" +
                                 std::to_string(line_number) + ": " + message);
}

/// Strict counter field: the canonical rendering of the parsed value must
/// reproduce the input token, so accepted checkpoints serialize back
/// byte-identically (no leading zeros, no '+').
bool ParseStrictUint(std::string_view token, uint64_t* out) {
  long long value = 0;
  if (!ParseInt64(token, &value) || value < 0) return false;
  if (std::to_string(value) != token) return false;
  *out = static_cast<uint64_t>(value);
  return true;
}

}  // namespace

StatusOr<StreamCheckpoint> ParseStreamCheckpoint(const std::string& text) {
  if (text.empty() || text.back() != '\n') {
    return CheckpointError(1, "checkpoint must end with a newline");
  }
  std::vector<std::string_view> lines;
  {
    size_t start = 0;
    const std::string_view view(text);
    while (start < view.size()) {
      const size_t end = view.find('\n', start);
      lines.push_back(view.substr(start, end - start));
      start = end + 1;
    }
  }
  size_t at = 0;
  auto next_line = [&](std::string_view* out) {
    if (at >= lines.size()) return false;
    *out = lines[at++];
    return true;
  };
  std::string_view line;
  if (!next_line(&line) || line != "pnr-stream-checkpoint v1") {
    return CheckpointError(1, "expected header 'pnr-stream-checkpoint v1'");
  }
  StreamCheckpoint checkpoint;
  const auto take_counter = [&](std::string_view name,
                                uint64_t* out) -> Status {
    if (!next_line(&line)) {
      return CheckpointError(at + 1,
                             "missing '" + std::string(name) + "' line");
    }
    const std::string prefix = std::string(name) + " ";
    if (line.substr(0, prefix.size()) != prefix ||
        !ParseStrictUint(line.substr(prefix.size()), out)) {
      return CheckpointError(at, "expected '" + std::string(name) + " <n>'");
    }
    return Status::OK();
  };
  Status status = take_counter("windows", &checkpoint.windows);
  if (!status.ok()) return status;
  status = take_counter("rows", &checkpoint.rows);
  if (!status.ok()) return status;
  status = take_counter("swaps", &checkpoint.swaps);
  if (!status.ok()) return status;
  status = take_counter("model_version", &checkpoint.model_version);
  if (!status.ok()) return status;
  if (checkpoint.model_version == 0) {
    return CheckpointError(at, "model_version must be >= 1");
  }
  if (!next_line(&line) || line.substr(0, 6) != "model " ||
      line.size() == 6) {
    return CheckpointError(at == 0 ? 1 : at, "expected 'model <path>'");
  }
  checkpoint.model_path = std::string(line.substr(6));
  uint64_t blob_lines = 0;
  status = take_counter("drift", &blob_lines);
  if (!status.ok()) return status;
  checkpoint.drift_blob.clear();
  for (uint64_t i = 0; i < blob_lines; ++i) {
    if (!next_line(&line)) {
      return CheckpointError(at + 1, "drift blob truncated (expected " +
                                         std::to_string(blob_lines) +
                                         " lines)");
    }
    checkpoint.drift_blob.append(line);
    checkpoint.drift_blob.push_back('\n');
  }
  if (!next_line(&line) || line != "end") {
    return CheckpointError(at == 0 ? 1 : at, "expected 'end' terminator");
  }
  if (at != lines.size()) {
    return CheckpointError(at + 1, "trailing content after 'end'");
  }
  return checkpoint;
}

}  // namespace pnr
