#include "stream/window.h"

#include <algorithm>

#include "common/string_util.h"

namespace pnr {

size_t StreamScoreBin(double score) {
  if (score <= 0.0) return 0;
  if (score >= 1.0) return kStreamScoreBins - 1;
  return std::min(kStreamScoreBins - 1,
                  static_cast<size_t>(score * kStreamScoreBins));
}

WindowStats ComputeWindowStats(const double* scores, const CategoryId* labels,
                               uint64_t count, CategoryId target,
                               double threshold) {
  WindowStats stats;
  stats.rows = count;
  for (uint64_t i = 0; i < count; ++i) {
    const bool predicted = scores[i] >= threshold;
    if (predicted) ++stats.predicted_positive;
    ++stats.score_histogram[StreamScoreBin(scores[i])];
    if (labels[i] == kInvalidCategory) continue;  // label not yet arrived
    ++stats.labeled_rows;
    const bool actual = labels[i] == target;
    if (actual) ++stats.labeled_positive;
    stats.confusion.Add(actual, predicted);
  }
  return stats;
}

void SlidingAggregate::Push(const WindowStats& window) {
  windows_.push_back(window);
  confusion_.Merge(window.confusion);
  rows_ += window.rows;
  labeled_positive_ += window.labeled_positive;
  predicted_positive_ += window.predicted_positive;
  while (windows_.size() > capacity_) {
    const WindowStats& old = windows_.front();
    // Confusion has no subtract; rebuild from the retained windows. K is
    // small (default 5), so this is a handful of additions per window.
    rows_ -= old.rows;
    labeled_positive_ -= old.labeled_positive;
    predicted_positive_ -= old.predicted_positive;
    windows_.pop_front();
    confusion_ = Confusion();
    for (const WindowStats& kept : windows_) confusion_.Merge(kept.confusion);
  }
}

std::string RenderWindowLine(const WindowStats& window,
                             const SlidingAggregate& sliding) {
  std::string line = "window " + std::to_string(window.index);
  line += " rows=" + std::to_string(window.rows);
  line += " labeled=" + std::to_string(window.labeled_rows);
  line += " pos=" + std::to_string(window.labeled_positive);
  line += " pred=" + std::to_string(window.predicted_positive);
  line += " recall=" + FormatDouble(window.confusion.recall(), 6);
  line += " precision=" + FormatDouble(window.confusion.precision(), 6);
  line += " slide_recall=" + FormatDouble(sliding.confusion().recall(), 6);
  line +=
      " slide_precision=" + FormatDouble(sliding.confusion().precision(), 6);
  line += " hist=";
  for (size_t i = 0; i < kStreamScoreBins; ++i) {
    if (i > 0) line += ':';
    line += std::to_string(window.score_histogram[i]);
  }
  line += " model=v" + std::to_string(window.model_version);
  if (window.partial) line += " partial";
  return line;
}

}  // namespace pnr
