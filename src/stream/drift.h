// Distribution-drift detection for the streaming scorer.
//
// A 0.1%-positive stream starves error-rate monitors — windowed accuracy
// barely moves when the rare class mutates — so the detector watches the
// *input* and *score* distributions instead:
//
//   * numeric features: an equi-depth histogram whose bin edges are
//     quantiles of a reference sample (first `reference_windows` windows
//     after each baseline reset, capped at `max_reference_values` values
//     per attribute, taken in stream order so the reference is
//     deterministic);
//   * categorical features: per-category frequency counts plus an "unseen
//     value" bucket — dictionary misses are exactly what a novel attack
//     subclass produces;
//   * model scores: the fixed kStreamScoreBins histogram of window.h,
//     which catches calibration shift even when no single feature moves;
//   * the delayed-label positive rate: a two-bin target-vs-rest histogram
//     over the rows whose labels have arrived. This is the channel that
//     actually fires on a rare-class surge — when the positive rate moves
//     from 0.2% to 5% the *marginal* feature distributions barely budge
//     (the needle is 5% of the haystack and reuses its feature values),
//     but the label-rate PSI jumps two orders of magnitude above its
//     noise floor, so it gets its own, much lower threshold.
//
// Each completed window is compared to the reference with the Population
// Stability Index, PSI = sum_i (q_i - p_i) * ln(q_i / p_i) over smoothed
// bin frequencies (0.5 pseudo-count, so empty bins never divide by zero).
// A window is "over threshold" when any feature PSI exceeds psi_threshold
// or the score PSI exceeds score_psi_threshold; drift is *confirmed* only
// after `confirm_windows` consecutive over-threshold windows (hysteresis —
// one noisy window never flaps the retrain loop). After the orchestrator
// acts (swap or failed retrain), ResetBaseline() rebuilds the reference
// from post-action traffic, which doubles as the retrain cooldown.
//
// The whole detector state serializes to a line-oriented text blob
// ("pnr-stream-drift v1") embedded in the stream checkpoint; Restore is
// strict with located errors, and serialize-restore-serialize is a
// fixpoint (fuzzed via the `stream` target).

#ifndef PNR_STREAM_DRIFT_H_
#define PNR_STREAM_DRIFT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "data/schema.h"
#include "stream/window.h"

namespace pnr {

struct DriftOptions {
  /// Windows that build the reference after each baseline reset.
  size_t reference_windows = 4;
  /// Per-feature PSI trigger.
  double psi_threshold = 0.25;
  /// Score-histogram PSI trigger.
  double score_psi_threshold = 0.25;
  /// Labeled positive-rate PSI trigger (two bins, so the noise floor is
  /// far lower than the feature channels' — see the header comment).
  double label_psi_threshold = 0.05;
  /// Consecutive over-threshold windows required to confirm drift.
  size_t confirm_windows = 2;
  /// Bins of the numeric equi-depth histograms.
  size_t numeric_bins = 8;
  /// Per-attribute cap on reference sample values (bounds checkpoint size).
  size_t max_reference_values = 4096;
};

class DriftDetector {
 public:
  /// What one Observe() concluded. All fields are pure functions of the
  /// rows observed since construction/restore — never of timing.
  struct WindowReport {
    bool warmup = false;  ///< window went into the reference, no comparison
    double max_feature_psi = 0.0;
    AttrIndex worst_attr = -1;  ///< arg-max feature (-1 during warmup)
    double score_psi = 0.0;
    double label_psi = 0.0;  ///< 0 when the window had no labeled rows
    bool over_threshold = false;
    size_t consecutive = 0;  ///< current over-threshold streak
    bool confirmed = false;  ///< streak reached confirm_windows
  };

  /// `schema` must outlive the detector.
  DriftDetector(const Schema* schema, DriftOptions options);

  /// Folds one completed window in: `rows[0..count)` index `dataset` (the
  /// engine's rolling buffer), `scores[i]` is the model score of rows[i].
  /// Labels come from the dataset (kInvalidCategory = not yet arrived);
  /// `target` selects the positive bin of the label-rate channel.
  WindowReport Observe(const Dataset& dataset, const RowId* rows,
                       size_t count, const double* scores,
                       CategoryId target);

  /// Discards the reference and streak; the next `reference_windows`
  /// observed windows rebuild it. Called after every swap or failed
  /// retrain (cooldown).
  void ResetBaseline();

  bool baseline_ready() const { return ready_; }
  size_t warmup_windows_seen() const { return warmup_seen_; }
  size_t consecutive_over() const { return consecutive_; }
  uint64_t resets() const { return resets_; }
  const DriftOptions& options() const { return options_; }

  /// Renders the full detector state as the v1 text blob.
  std::string Serialize() const;

  /// Replaces this detector's state from a v1 blob. The blob must agree
  /// with the schema and options the detector was constructed with;
  /// malformed or inconsistent input fails with a located error
  /// ("drift-state:<line>: ...") and leaves the detector unchanged.
  Status Restore(const std::string& text);

 private:
  struct NumericState {
    std::vector<double> sample;    ///< warmup values (stream order, capped)
    std::vector<double> edges;     ///< numeric_bins - 1 ascending cut points
    std::vector<uint64_t> counts;  ///< reference counts per bin
  };
  struct CategoricalState {
    std::vector<uint64_t> counts;  ///< num_categories + 1 ("unseen" last)
  };

  void FinalizeBaseline();
  size_t NumericBin(const NumericState& state, double value) const;

  const Schema* schema_;
  DriftOptions options_;
  std::vector<NumericState> numeric_;          ///< indexed by attr
  std::vector<CategoricalState> categorical_;  ///< indexed by attr
  std::vector<uint64_t> score_counts_;         ///< kStreamScoreBins
  std::vector<uint64_t> label_counts_;         ///< {target, other-labeled}
  bool ready_ = false;
  size_t warmup_seen_ = 0;
  size_t consecutive_ = 0;
  uint64_t resets_ = 0;
};

/// Smoothed PSI between a reference and a window count vector of equal
/// length (0.5 pseudo-count per bin). Exposed for tests.
double SmoothedPsi(const std::vector<uint64_t>& reference,
                   const std::vector<uint64_t>& window);

}  // namespace pnr

#endif  // PNR_STREAM_DRIFT_H_
