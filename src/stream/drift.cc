#include "stream/drift.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/math_util.h"
#include "common/string_util.h"

namespace pnr {

namespace {

Status DriftError(size_t line_number, const std::string& message) {
  return Status::InvalidArgument(
      "drift-state:" + std::to_string(line_number) + ": " + message);
}

}  // namespace

double SmoothedPsi(const std::vector<uint64_t>& reference,
                   const std::vector<uint64_t>& window) {
  assert(reference.size() == window.size());
  const size_t bins = reference.size();
  if (bins == 0) return 0.0;
  uint64_t ref_total = 0;
  uint64_t win_total = 0;
  for (size_t i = 0; i < bins; ++i) {
    ref_total += reference[i];
    win_total += window[i];
  }
  const double ref_denom =
      static_cast<double>(ref_total) + 0.5 * static_cast<double>(bins);
  const double win_denom =
      static_cast<double>(win_total) + 0.5 * static_cast<double>(bins);
  double psi = 0.0;
  for (size_t i = 0; i < bins; ++i) {
    const double p = (static_cast<double>(reference[i]) + 0.5) / ref_denom;
    const double q = (static_cast<double>(window[i]) + 0.5) / win_denom;
    psi += (q - p) * std::log(q / p);
  }
  return psi;
}

DriftDetector::DriftDetector(const Schema* schema, DriftOptions options)
    : schema_(schema), options_(options) {
  assert(schema_ != nullptr);
  assert(options_.reference_windows > 0);
  assert(options_.confirm_windows > 0);
  assert(options_.numeric_bins >= 2);
  const size_t num_attrs = schema_->num_attributes();
  numeric_.resize(num_attrs);
  categorical_.resize(num_attrs);
  for (size_t a = 0; a < num_attrs; ++a) {
    const Attribute& attribute = schema_->attribute(static_cast<AttrIndex>(a));
    if (!attribute.is_numeric()) {
      categorical_[a].counts.assign(attribute.num_categories() + 1, 0);
    }
  }
  score_counts_.assign(kStreamScoreBins, 0);
  label_counts_.assign(2, 0);
}

void DriftDetector::ResetBaseline() {
  for (NumericState& state : numeric_) {
    state.sample.clear();
    state.edges.clear();
    state.counts.clear();
  }
  for (CategoricalState& state : categorical_) {
    std::fill(state.counts.begin(), state.counts.end(), 0);
  }
  std::fill(score_counts_.begin(), score_counts_.end(), 0);
  std::fill(label_counts_.begin(), label_counts_.end(), 0);
  ready_ = false;
  warmup_seen_ = 0;
  consecutive_ = 0;
  ++resets_;
}

size_t DriftDetector::NumericBin(const NumericState& state,
                                 double value) const {
  // First edge strictly greater than `value`: equal values fall into the
  // lower bin, which keeps binning independent of how ties were sampled.
  return static_cast<size_t>(
      std::upper_bound(state.edges.begin(), state.edges.end(), value) -
      state.edges.begin());
}

void DriftDetector::FinalizeBaseline() {
  const size_t bins = options_.numeric_bins;
  for (size_t a = 0; a < numeric_.size(); ++a) {
    const Attribute& attribute = schema_->attribute(static_cast<AttrIndex>(a));
    if (!attribute.is_numeric()) continue;
    NumericState& state = numeric_[a];
    // Equi-depth cut points from the sorted reference sample (the shared
    // EquiDepthEdges rule, also used by the associative-miner discretizer).
    // A constant column yields equal edges; every value then lands in bin 0
    // and PSI only moves when genuinely new values appear.
    std::vector<double> sorted = state.sample;
    std::sort(sorted.begin(), sorted.end());
    state.edges = EquiDepthEdges(sorted, bins);
    state.counts.assign(bins, 0);
    for (const double value : state.sample) {
      ++state.counts[NumericBin(state, value)];
    }
    state.sample.clear();
    state.sample.shrink_to_fit();
  }
  ready_ = true;
}

DriftDetector::WindowReport DriftDetector::Observe(const Dataset& dataset,
                                                   const RowId* rows,
                                                   size_t count,
                                                   const double* scores,
                                                   CategoryId target) {
  WindowReport report;
  const size_t num_attrs = schema_->num_attributes();
  if (!ready_) {
    // Warmup: the window extends the reference.
    for (size_t a = 0; a < num_attrs; ++a) {
      const Attribute& attribute =
          schema_->attribute(static_cast<AttrIndex>(a));
      if (attribute.is_numeric()) {
        NumericState& state = numeric_[a];
        for (size_t i = 0; i < count; ++i) {
          if (state.sample.size() >= options_.max_reference_values) break;
          state.sample.push_back(
              dataset.numeric(rows[i], static_cast<AttrIndex>(a)));
        }
      } else {
        CategoricalState& state = categorical_[a];
        const size_t unseen = state.counts.size() - 1;
        for (size_t i = 0; i < count; ++i) {
          const CategoryId value =
              dataset.categorical(rows[i], static_cast<AttrIndex>(a));
          ++state.counts[value == kInvalidCategory
                             ? unseen
                             : static_cast<size_t>(value)];
        }
      }
    }
    for (size_t i = 0; i < count; ++i) {
      ++score_counts_[StreamScoreBin(scores[i])];
      const CategoryId label = dataset.label(rows[i]);
      if (label != kInvalidCategory) {
        ++label_counts_[label == target ? 0 : 1];
      }
    }
    ++warmup_seen_;
    if (warmup_seen_ >= options_.reference_windows) FinalizeBaseline();
    report.warmup = true;
    return report;
  }

  // Comparison: bin the window and PSI it against the reference.
  std::vector<uint64_t> window_counts;
  for (size_t a = 0; a < num_attrs; ++a) {
    const Attribute& attribute = schema_->attribute(static_cast<AttrIndex>(a));
    double psi = 0.0;
    if (attribute.is_numeric()) {
      const NumericState& state = numeric_[a];
      window_counts.assign(options_.numeric_bins, 0);
      for (size_t i = 0; i < count; ++i) {
        ++window_counts[NumericBin(
            state, dataset.numeric(rows[i], static_cast<AttrIndex>(a)))];
      }
      psi = SmoothedPsi(state.counts, window_counts);
    } else {
      const CategoricalState& state = categorical_[a];
      const size_t unseen = state.counts.size() - 1;
      window_counts.assign(state.counts.size(), 0);
      for (size_t i = 0; i < count; ++i) {
        const CategoryId value =
            dataset.categorical(rows[i], static_cast<AttrIndex>(a));
        ++window_counts[value == kInvalidCategory ? unseen
                                                  : static_cast<size_t>(value)];
      }
      psi = SmoothedPsi(state.counts, window_counts);
    }
    if (psi > report.max_feature_psi) {
      report.max_feature_psi = psi;
      report.worst_attr = static_cast<AttrIndex>(a);
    }
  }
  window_counts.assign(kStreamScoreBins, 0);
  for (size_t i = 0; i < count; ++i) {
    ++window_counts[StreamScoreBin(scores[i])];
  }
  report.score_psi = SmoothedPsi(score_counts_, window_counts);

  std::vector<uint64_t> label_window(2, 0);
  for (size_t i = 0; i < count; ++i) {
    const CategoryId label = dataset.label(rows[i]);
    if (label != kInvalidCategory) ++label_window[label == target ? 0 : 1];
  }
  // A window whose labels have not arrived at all says nothing about the
  // positive rate; comparing all-zero counts against the reference would
  // manufacture a huge PSI out of the smoothing terms.
  if (label_window[0] + label_window[1] > 0) {
    report.label_psi = SmoothedPsi(label_counts_, label_window);
  }

  report.over_threshold = report.max_feature_psi > options_.psi_threshold ||
                          report.score_psi > options_.score_psi_threshold ||
                          report.label_psi > options_.label_psi_threshold;
  consecutive_ = report.over_threshold ? consecutive_ + 1 : 0;
  report.consecutive = consecutive_;
  report.confirmed = consecutive_ >= options_.confirm_windows;
  return report;
}

// -- Serialization ------------------------------------------------------------
//
// Line-oriented v1 blob, one section per attribute plus the score section:
//
//   pnr-stream-drift v1
//   state <warmup|ready>
//   warmup_seen <n>
//   consecutive <n>
//   resets <n>
//   attrs <num_attrs>
//   attr <i> numeric sample <k> [v...]            (warmup)
//   attr <i> numeric edges <k> [v...] counts <b> [c...]  (ready)
//   attr <i> cat counts <k> [c...]
//   score counts <k> [c...]
//   label counts 2 [c c]
//   end
//
// Doubles render with FormatDouble(x, 17) so restore is exact.

std::string DriftDetector::Serialize() const {
  std::string out = "pnr-stream-drift v1\n";
  out += std::string("state ") + (ready_ ? "ready" : "warmup") + "\n";
  out += "warmup_seen " + std::to_string(warmup_seen_) + "\n";
  out += "consecutive " + std::to_string(consecutive_) + "\n";
  out += "resets " + std::to_string(resets_) + "\n";
  out += "attrs " + std::to_string(schema_->num_attributes()) + "\n";
  for (size_t a = 0; a < schema_->num_attributes(); ++a) {
    const Attribute& attribute = schema_->attribute(static_cast<AttrIndex>(a));
    out += "attr " + std::to_string(a);
    if (attribute.is_numeric()) {
      const NumericState& state = numeric_[a];
      if (ready_) {
        out += " numeric edges " + std::to_string(state.edges.size());
        for (const double edge : state.edges) {
          out += ' ';
          out += FormatDouble(edge, 17);
        }
        out += " counts " + std::to_string(state.counts.size());
        for (const uint64_t count : state.counts) {
          out += ' ';
          out += std::to_string(count);
        }
      } else {
        out += " numeric sample " + std::to_string(state.sample.size());
        for (const double value : state.sample) {
          out += ' ';
          out += FormatDouble(value, 17);
        }
      }
    } else {
      const CategoricalState& state = categorical_[a];
      out += " cat counts " + std::to_string(state.counts.size());
      for (const uint64_t count : state.counts) {
        out += ' ';
        out += std::to_string(count);
      }
    }
    out += '\n';
  }
  out += "score counts " + std::to_string(score_counts_.size());
  for (const uint64_t count : score_counts_) {
    out += ' ';
    out += std::to_string(count);
  }
  out += "\nlabel counts " + std::to_string(label_counts_.size());
  for (const uint64_t count : label_counts_) {
    out += ' ';
    out += std::to_string(count);
  }
  out += "\nend\n";
  return out;
}

namespace {

/// Tokenizer over one line: whitespace-split fields consumed in order.
struct LineFields {
  std::vector<std::string_view> fields;
  size_t next = 0;

  bool Take(std::string_view* out) {
    if (next >= fields.size()) return false;
    *out = fields[next++];
    return true;
  }
  bool TakeUint(uint64_t* out) {
    std::string_view field;
    long long value = 0;
    if (!Take(&field) || !ParseInt64(field, &value) || value < 0) return false;
    *out = static_cast<uint64_t>(value);
    return true;
  }
  bool TakeDouble(double* out) {
    std::string_view field;
    return Take(&field) && ParseDouble(field, out) && std::isfinite(*out);
  }
  bool Exhausted() const { return next >= fields.size(); }
};

LineFields SplitFields(std::string_view line) {
  LineFields out;
  size_t start = 0;
  while (start < line.size()) {
    const size_t end = line.find(' ', start);
    if (end == std::string_view::npos) {
      out.fields.push_back(line.substr(start));
      break;
    }
    if (end > start) out.fields.push_back(line.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

}  // namespace

Status DriftDetector::Restore(const std::string& text) {
  std::vector<std::string_view> lines;
  {
    size_t start = 0;
    while (start < text.size()) {
      size_t end = text.find('\n', start);
      if (end == std::string_view::npos) end = text.size();
      lines.push_back(std::string_view(text).substr(start, end - start));
      start = end + 1;
    }
  }
  size_t at = 0;
  auto next_line = [&](std::string_view* out) {
    if (at >= lines.size()) return false;
    *out = lines[at++];
    return true;
  };
  std::string_view line;
  if (!next_line(&line) || line != "pnr-stream-drift v1") {
    return DriftError(1, "expected header 'pnr-stream-drift v1'");
  }

  // Parse into a scratch copy; commit only on full success.
  bool ready = false;
  uint64_t warmup_seen = 0;
  uint64_t consecutive = 0;
  uint64_t resets = 0;
  std::vector<NumericState> numeric(numeric_.size());
  std::vector<CategoricalState> categorical(categorical_.size());
  std::vector<uint64_t> score_counts;
  std::vector<uint64_t> label_counts;

  if (!next_line(&line)) return DriftError(at + 1, "missing 'state' line");
  {
    LineFields fields = SplitFields(line);
    std::string_view keyword;
    std::string_view value;
    if (!fields.Take(&keyword) || keyword != "state" || !fields.Take(&value) ||
        !fields.Exhausted() || (value != "warmup" && value != "ready")) {
      return DriftError(at, "expected 'state warmup|ready'");
    }
    ready = value == "ready";
  }
  const auto take_counter = [&](std::string_view name,
                                uint64_t* out) -> Status {
    if (!next_line(&line)) {
      return DriftError(at + 1, "missing '" + std::string(name) + "' line");
    }
    LineFields fields = SplitFields(line);
    std::string_view keyword;
    if (!fields.Take(&keyword) || keyword != name || !fields.TakeUint(out) ||
        !fields.Exhausted()) {
      return DriftError(at, "expected '" + std::string(name) + " <n>'");
    }
    return Status::OK();
  };
  Status status = take_counter("warmup_seen", &warmup_seen);
  if (!status.ok()) return status;
  status = take_counter("consecutive", &consecutive);
  if (!status.ok()) return status;
  status = take_counter("resets", &resets);
  if (!status.ok()) return status;
  uint64_t attr_count = 0;
  status = take_counter("attrs", &attr_count);
  if (!status.ok()) return status;
  if (attr_count != schema_->num_attributes()) {
    return DriftError(at, "blob has " + std::to_string(attr_count) +
                              " attributes, schema has " +
                              std::to_string(schema_->num_attributes()));
  }
  if (ready ? warmup_seen < options_.reference_windows
            : warmup_seen >= options_.reference_windows) {
    return DriftError(3, "warmup_seen inconsistent with state");
  }
  if (!ready && consecutive != 0) {
    return DriftError(4, "consecutive must be 0 during warmup");
  }

  for (size_t a = 0; a < schema_->num_attributes(); ++a) {
    const Attribute& attribute = schema_->attribute(static_cast<AttrIndex>(a));
    if (!next_line(&line)) {
      return DriftError(at + 1, "missing 'attr " + std::to_string(a) + "'");
    }
    LineFields fields = SplitFields(line);
    std::string_view keyword;
    uint64_t index = 0;
    std::string_view kind;
    if (!fields.Take(&keyword) || keyword != "attr" ||
        !fields.TakeUint(&index) || index != a || !fields.Take(&kind)) {
      return DriftError(at, "expected 'attr " + std::to_string(a) + " ...'");
    }
    if (attribute.is_numeric()) {
      if (kind != "numeric") {
        return DriftError(at, "attribute " + std::to_string(a) +
                                  " is numeric in the schema");
      }
      NumericState& state = numeric[a];
      std::string_view section;
      uint64_t size = 0;
      if (!fields.Take(&section) || !fields.TakeUint(&size)) {
        return DriftError(at, "malformed numeric section");
      }
      if (ready) {
        if (section != "edges" || size != options_.numeric_bins - 1) {
          return DriftError(at, "expected 'edges " +
                                    std::to_string(options_.numeric_bins - 1) +
                                    "'");
        }
        state.edges.resize(size);
        for (double& edge : state.edges) {
          if (!fields.TakeDouble(&edge)) {
            return DriftError(at, "bad edge value");
          }
        }
        if (!std::is_sorted(state.edges.begin(), state.edges.end())) {
          return DriftError(at, "edges must be ascending");
        }
        uint64_t bins = 0;
        if (!fields.Take(&section) || section != "counts" ||
            !fields.TakeUint(&bins) || bins != options_.numeric_bins) {
          return DriftError(at, "expected 'counts " +
                                    std::to_string(options_.numeric_bins) +
                                    "'");
        }
        state.counts.resize(bins);
        for (uint64_t& count : state.counts) {
          if (!fields.TakeUint(&count)) {
            return DriftError(at, "bad bin count");
          }
        }
      } else {
        if (section != "sample" || size > options_.max_reference_values) {
          return DriftError(at, "expected 'sample <k>' with k <= " +
                                    std::to_string(
                                        options_.max_reference_values));
        }
        state.sample.resize(size);
        for (double& value : state.sample) {
          if (!fields.TakeDouble(&value)) {
            return DriftError(at, "bad sample value");
          }
        }
      }
    } else {
      std::string_view section;
      uint64_t size = 0;
      const size_t expected = attribute.num_categories() + 1;
      if (kind != "cat" || !fields.Take(&section) || section != "counts" ||
          !fields.TakeUint(&size) || size != expected) {
        return DriftError(at, "expected 'cat counts " +
                                  std::to_string(expected) + "'");
      }
      CategoricalState& state = categorical[a];
      state.counts.resize(size);
      for (uint64_t& count : state.counts) {
        if (!fields.TakeUint(&count)) {
          return DriftError(at, "bad category count");
        }
      }
    }
    if (!fields.Exhausted()) {
      return DriftError(at, "trailing fields on attr line");
    }
  }

  if (!next_line(&line)) return DriftError(at + 1, "missing 'score' line");
  {
    LineFields fields = SplitFields(line);
    std::string_view keyword;
    std::string_view section;
    uint64_t size = 0;
    if (!fields.Take(&keyword) || keyword != "score" ||
        !fields.Take(&section) || section != "counts" ||
        !fields.TakeUint(&size) || size != kStreamScoreBins) {
      return DriftError(at, "expected 'score counts " +
                                std::to_string(kStreamScoreBins) + "'");
    }
    score_counts.resize(size);
    for (uint64_t& count : score_counts) {
      if (!fields.TakeUint(&count)) return DriftError(at, "bad score count");
    }
    if (!fields.Exhausted()) {
      return DriftError(at, "trailing fields on score line");
    }
  }
  if (!next_line(&line)) return DriftError(at + 1, "missing 'label' line");
  {
    LineFields fields = SplitFields(line);
    std::string_view keyword;
    std::string_view section;
    uint64_t size = 0;
    if (!fields.Take(&keyword) || keyword != "label" ||
        !fields.Take(&section) || section != "counts" ||
        !fields.TakeUint(&size) || size != 2) {
      return DriftError(at, "expected 'label counts 2'");
    }
    label_counts.resize(size);
    for (uint64_t& count : label_counts) {
      if (!fields.TakeUint(&count)) return DriftError(at, "bad label count");
    }
    if (!fields.Exhausted()) {
      return DriftError(at, "trailing fields on label line");
    }
  }
  if (!next_line(&line) || line != "end") {
    return DriftError(at + (at < lines.size() ? 0 : 1),
                      "expected 'end' terminator");
  }
  if (at != lines.size()) {
    return DriftError(at + 1, "trailing content after 'end'");
  }

  ready_ = ready;
  warmup_seen_ = warmup_seen;
  consecutive_ = consecutive;
  resets_ = resets;
  numeric_ = std::move(numeric);
  categorical_ = std::move(categorical);
  score_counts_ = std::move(score_counts);
  label_counts_ = std::move(label_counts);
  return Status::OK();
}

}  // namespace pnr
