// Configuration racing with successive halving and best-arm-identification
// style confidence-bound elimination.
//
// The racer evaluates hyperparameter configurations over stratified K-fold
// cross-validation, cheaply at first and precisely for the survivors: rung
// r scores every surviving configuration on a growing prefix of the folds
// (1, 2, 4, ..., K), then eliminates losers two ways before the next rung
// spends anything on them:
//
//   * confidence-bound (BAI) elimination — a configuration whose upper
//     bound mean + radius falls below the best lower bound mean - radius
//     cannot be the best arm at this confidence and is dropped. The radius
//     is the empirical-Bernstein-style  z * s / sqrt(n) + 0.5 / n  (metric
//     range 1), so single-fold estimates are never trusted enough to kill
//     an arm on their own;
//   * successive halving — of the remainder, only the top
//     ceil(survivors * keep_fraction) by mean advance (ties keep the lower
//     config index), which bounds total work at roughly
//     O(num_configs + K * log(num_configs)) fold-evaluations instead of
//     the full num_configs * K grid.
//
// Determinism contract: the race is a pure function of (dataset, configs,
// options). Fold assignment is seed-deterministic (eval/stratified_cv.h),
// training and scoring are bit-identical at any thread count, per-rung
// results are reduced in config-index order, and every elimination decision
// reads only completed-rung statistics — so the survivor set, the winner,
// and the rendered artifacts are byte-identical for any `num_threads`.
// Threads change speed, never bytes.
//
// Threading shape: rung tasks (config x new-fold pairs) fan out over one
// outer ThreadPool; each task trains through a ThreadBudget lease
// (common/thread_pool.h), so the learners' inner condition-search threads
// share the same global cap instead of multiplying it.

#ifndef PNR_TUNE_RACER_H_
#define PNR_TUNE_RACER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "eval/classifier.h"

#include "common/status.h"
#include "data/dataset.h"
#include "tune/config_space.h"

namespace pnr {

/// Metric the race optimizes (always reported alongside the other two).
enum class TuneMetric { kRecall, kPrecision, kFMeasure };

/// Canonical name ("recall", "precision", "f-measure").
const char* TuneMetricName(TuneMetric metric);

/// Parses "recall" / "precision" / "f" / "f-measure"; false when unknown.
bool ParseTuneMetric(std::string_view text, TuneMetric* out);

/// Racer controls.
struct RacerOptions {
  /// Stratified CV folds K (the final rung evaluates survivors on all K).
  size_t num_folds = 5;
  /// Seed for the fold split; also recorded in artifacts.
  uint64_t seed = 20010521;
  /// Objective the elimination rules compare.
  TuneMetric metric = TuneMetric::kFMeasure;
  /// Maximum total (config, fold) evaluations; 0 = unlimited. A rung that
  /// does not fit in the remainder is not started, so the cap is never
  /// exceeded. Must cover at least rung 0 (num_configs evaluations).
  size_t max_evals = 0;
  /// Confidence-bound multiplier z; <= 0 disables CB elimination.
  double confidence_z = 2.0;
  /// Fraction of survivors successive halving keeps per rung, in (0, 1];
  /// 1.0 disables halving (pure CB racing).
  double keep_fraction = 0.5;
  /// Total thread budget for the race: outer fan-out plus the learners'
  /// inner condition-search threads combined. 0 = hardware concurrency.
  size_t num_threads = 1;

  Status Validate() const;
};

/// Per-fold evaluation of one configuration.
struct FoldEval {
  double recall = 0.0;
  double precision = 0.0;
  double f_measure = 0.0;
};

/// Marks a trial that survived to the end of the race.
inline constexpr size_t kNeverEliminated = static_cast<size_t>(-1);

/// Running state of one configuration in the race.
struct TrialState {
  size_t config_index = 0;
  /// Evaluations on folds 0..n-1 (the schedule's fold order).
  std::vector<FoldEval> folds;
  /// Rung after which the trial was eliminated; kNeverEliminated if it
  /// survived every rung it was offered.
  size_t eliminated_at_rung = kNeverEliminated;
  /// Statistics on the objective metric over the evaluated folds.
  double mean = 0.0;
  double stddev = 0.0;     ///< sample standard deviation (0 for n < 2)
  double radius = 0.0;     ///< last confidence radius (0 when CB disabled)
};

/// Per-rung accounting.
struct RungSummary {
  size_t folds_cumulative = 0;  ///< folds per survivor after this rung
  size_t entrants = 0;          ///< configs evaluated in this rung
  size_t evals = 0;             ///< new (config, fold) evaluations spent
  size_t eliminated_bound = 0;  ///< dropped by confidence bounds
  size_t eliminated_halving = 0;  ///< dropped by successive halving
};

/// Outcome of a race.
struct RaceResult {
  std::vector<TrialState> trials;  ///< index-aligned with the input configs
  std::vector<RungSummary> rungs;
  size_t best_config = 0;  ///< highest final mean among survivors
  size_t evals_used = 0;
  /// True when max_evals stopped the race before the full schedule ran.
  bool budget_exhausted = false;
};

/// Trains the classifier a trial describes — a PNrule model or a CBA-mined
/// associative classifier — on `rows` of `dataset` with `num_threads`
/// workers, and applies the trial's threshold. Shared by the racer's fold
/// evaluations and the CLI's held-out contender path, so both train
/// bit-identical models.
StatusOr<std::unique_ptr<BinaryClassifier>> TrainTrialClassifier(
    const TrialConfig& trial, const Dataset& dataset, const RowSubset& rows,
    CategoryId target, size_t num_threads);

/// Evaluates one configuration on one fold. Must be thread-safe and
/// deterministic per (config_index, fold) — the racer may invoke it from
/// pool workers in any order.
using TrialEvalFn =
    std::function<StatusOr<FoldEval>(const TrialConfig& config,
                                     size_t config_index, size_t fold)>;

/// The configuration-racing engine.
class Racer {
 public:
  explicit Racer(RacerOptions options) : options_(std::move(options)) {}

  const RacerOptions& options() const { return options_; }

  /// Full pipeline: stratified folds over `dataset`, one PNrule training +
  /// held-out evaluation per (config, fold), racing on `options.metric`
  /// with `target` as the positive class.
  StatusOr<RaceResult> Race(const Dataset& dataset, CategoryId target,
                            const std::vector<TrialConfig>& configs) const;

  /// The race loop with an injected evaluator (tests plug deterministic
  /// synthetic arms in here; Race uses it with the real trainer).
  StatusOr<RaceResult> RaceWithEval(const std::vector<TrialConfig>& configs,
                                    const TrialEvalFn& eval) const;

  /// Cumulative-fold rung schedule: 1, 2, 4, ... doubling up to
  /// `num_folds` (always ends exactly at num_folds).
  static std::vector<size_t> RungSchedule(size_t num_folds);

 private:
  RacerOptions options_;
};

}  // namespace pnr

#endif  // PNR_TUNE_RACER_H_
