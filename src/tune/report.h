// Artifact writer for tuning races: EXPERIMENTS.md-style tables and a
// machine-readable BENCH_tune.json.
//
// Byte-identity contract: rendered artifacts contain no wall-clock times,
// hostnames, or thread counts-in-effect — only race inputs and results,
// all of which are thread-count-invariant (see tune/racer.h). Running the
// same race with --threads 1 and --threads 8 must produce byte-identical
// files; the tune tests and the `tune_smoke` ctest pin this.

#ifndef PNR_TUNE_REPORT_H_
#define PNR_TUNE_REPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "tune/racer.h"

namespace pnr {

/// Everything the renderers need about a finished race.
struct TuneReport {
  /// One-line dataset description, e.g. "kdd_sim train=20000 (seed 7)".
  std::string dataset;
  /// Positive-class name.
  std::string target;
  RacerOptions options;
  std::vector<TrialConfig> configs;
  RaceResult result;
};

/// Renders the markdown report: header, rung accounting table, and the
/// full leaderboard with per-fold dispersion (mean ± sd of recall /
/// precision / F per configuration).
std::string RenderTuneMarkdown(const TuneReport& report);

/// Renders the JSON artifact (stable key order, fixed float formatting).
std::string RenderTuneJson(const TuneReport& report);

/// Writes `<out_dir>/EXPERIMENTS.md` and `<out_dir>/BENCH_tune.json`,
/// creating `out_dir` if needed.
Status WriteTuneArtifacts(const TuneReport& report,
                          const std::string& out_dir);

}  // namespace pnr

#endif  // PNR_TUNE_REPORT_H_
