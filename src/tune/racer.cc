#include "tune/racer.h"

#include <algorithm>
#include <cmath>

#include "assoc/cba.h"
#include "common/thread_pool.h"
#include "eval/metrics.h"
#include "eval/stratified_cv.h"
#include "pnrule/pnrule.h"

namespace pnr {
namespace {

double MetricOf(const FoldEval& eval, TuneMetric metric) {
  switch (metric) {
    case TuneMetric::kRecall:
      return eval.recall;
    case TuneMetric::kPrecision:
      return eval.precision;
    case TuneMetric::kFMeasure:
      return eval.f_measure;
  }
  return 0.0;
}

// Recomputes a trial's objective statistics from its evaluated folds.
// Serial and index-ordered, so the doubles are identical on every run.
void UpdateStats(TrialState* trial, TuneMetric metric, double confidence_z) {
  const size_t n = trial->folds.size();
  if (n == 0) return;
  double sum = 0.0;
  for (const FoldEval& eval : trial->folds) sum += MetricOf(eval, metric);
  trial->mean = sum / static_cast<double>(n);
  double sq = 0.0;
  for (const FoldEval& eval : trial->folds) {
    const double d = MetricOf(eval, metric) - trial->mean;
    sq += d * d;
  }
  trial->stddev =
      n >= 2 ? std::sqrt(sq / static_cast<double>(n - 1)) : 0.0;
  // Empirical-Bernstein-style radius: the variance term shrinks as
  // sqrt(1/n) once dispersion is observed; the 0.5/n range term keeps
  // low-n estimates conservative (at n=1 no arm in a [0,1] metric can be
  // CB-eliminated at all, since the bounds always overlap).
  trial->radius =
      confidence_z > 0.0
          ? confidence_z * trial->stddev / std::sqrt(static_cast<double>(n)) +
                0.5 / static_cast<double>(n)
          : 0.0;
}

}  // namespace

const char* TuneMetricName(TuneMetric metric) {
  switch (metric) {
    case TuneMetric::kRecall:
      return "recall";
    case TuneMetric::kPrecision:
      return "precision";
    case TuneMetric::kFMeasure:
      return "f-measure";
  }
  return "unknown";
}

bool ParseTuneMetric(std::string_view text, TuneMetric* out) {
  if (text == "recall") {
    *out = TuneMetric::kRecall;
  } else if (text == "precision") {
    *out = TuneMetric::kPrecision;
  } else if (text == "f" || text == "f-measure") {
    *out = TuneMetric::kFMeasure;
  } else {
    return false;
  }
  return true;
}

StatusOr<std::unique_ptr<BinaryClassifier>> TrainTrialClassifier(
    const TrialConfig& trial, const Dataset& dataset, const RowSubset& rows,
    CategoryId target, size_t num_threads) {
  std::unique_ptr<BinaryClassifier> classifier;
  if (trial.algorithm == TuneAlgorithm::kCba) {
    AssocMineOptions options = trial.cba;
    options.num_threads = num_threads;
    auto mined = MineCba(dataset, rows, target, options);
    if (!mined.ok()) return mined.status();
    classifier =
        std::make_unique<AssocClassifier>(std::move(mined->model));
  } else {
    PnruleConfig config = trial.config;
    config.num_threads = num_threads;
    PnruleLearner learner(config);
    auto model = learner.TrainOnRows(dataset, rows, target);
    if (!model.ok()) return model.status();
    classifier =
        std::make_unique<PnruleClassifier>(std::move(model).value());
  }
  classifier->set_threshold(trial.threshold);
  return classifier;
}

Status RacerOptions::Validate() const {
  if (num_folds < 2) {
    return Status::InvalidArgument("num_folds must be at least 2");
  }
  if (keep_fraction <= 0.0 || keep_fraction > 1.0) {
    return Status::InvalidArgument("keep_fraction must be in (0, 1]");
  }
  return Status::OK();
}

std::vector<size_t> Racer::RungSchedule(size_t num_folds) {
  std::vector<size_t> schedule;
  for (size_t folds = 1; folds < num_folds; folds *= 2) {
    schedule.push_back(folds);
  }
  schedule.push_back(num_folds);
  return schedule;
}

StatusOr<RaceResult> Racer::RaceWithEval(
    const std::vector<TrialConfig>& configs, const TrialEvalFn& eval) const {
  Status valid = options_.Validate();
  if (!valid.ok()) return valid;
  if (configs.empty()) {
    return Status::InvalidArgument("no configurations to race");
  }
  if (options_.max_evals > 0 && options_.max_evals < configs.size()) {
    return Status::InvalidArgument(
        "max_evals (" + std::to_string(options_.max_evals) +
        ") cannot cover rung 0: " + std::to_string(configs.size()) +
        " configurations need one evaluation each");
  }

  RaceResult result;
  result.trials.resize(configs.size());
  for (size_t i = 0; i < configs.size(); ++i) {
    result.trials[i].config_index = i;
  }
  std::vector<size_t> alive(configs.size());
  for (size_t i = 0; i < alive.size(); ++i) alive[i] = i;

  const std::vector<size_t> schedule = RungSchedule(options_.num_folds);
  // One outer pool for the whole race, sized once: rung 0 is always the
  // widest rung (every config, one fold), so later rungs just leave some
  // workers idle rather than re-spawning.
  const size_t budget_total =
      ThreadPool::ResolveThreadCount(options_.num_threads);
  const size_t outer_width = std::min(budget_total, configs.size());
  ThreadPool pool(outer_width);

  size_t folds_done = 0;
  for (size_t rung = 0; rung < schedule.size(); ++rung) {
    const size_t folds_target = schedule[rung];
    const size_t new_folds = folds_target - folds_done;
    const size_t cost = alive.size() * new_folds;
    if (options_.max_evals > 0 &&
        result.evals_used + cost > options_.max_evals) {
      result.budget_exhausted = true;
      break;
    }

    // Fan the rung's (config, fold) tasks out; slot-per-task writes plus
    // the index-ordered merge below keep the result thread-count-invariant.
    struct Task {
      size_t config_index;
      size_t fold;
    };
    std::vector<Task> tasks;
    tasks.reserve(cost);
    for (size_t index : alive) {
      for (size_t fold = folds_done; fold < folds_target; ++fold) {
        tasks.push_back({index, fold});
      }
    }
    std::vector<StatusOr<FoldEval>> evals(tasks.size(), Status::Internal(""));
    pool.ParallelFor(tasks.size(), [&](size_t t) {
      evals[t] = eval(configs[tasks[t].config_index], tasks[t].config_index,
                      tasks[t].fold);
    });
    for (size_t t = 0; t < tasks.size(); ++t) {
      if (!evals[t].ok()) return evals[t].status();
      result.trials[tasks[t].config_index].folds.push_back(*evals[t]);
    }
    result.evals_used += cost;
    folds_done = folds_target;

    RungSummary summary;
    summary.folds_cumulative = folds_target;
    summary.entrants = alive.size();
    summary.evals = cost;

    for (size_t index : alive) {
      UpdateStats(&result.trials[index], options_.metric,
                  options_.confidence_z);
    }

    // Confidence-bound elimination: drop arms whose upper bound cannot
    // reach the best arm's lower bound. Ties (equal bounds) survive, so an
    // all-ties race never eliminates anyone here.
    if (options_.confidence_z > 0.0 && alive.size() > 1) {
      double best_lower = -1.0;
      for (size_t index : alive) {
        best_lower = std::max(best_lower, result.trials[index].mean -
                                              result.trials[index].radius);
      }
      std::vector<size_t> survivors;
      survivors.reserve(alive.size());
      for (size_t index : alive) {
        const TrialState& trial = result.trials[index];
        if (trial.mean + trial.radius < best_lower) {
          result.trials[index].eliminated_at_rung = rung;
          ++summary.eliminated_bound;
        } else {
          survivors.push_back(index);
        }
      }
      alive.swap(survivors);
    }

    // Successive halving on every rung but the last: rank by mean (config
    // index breaks ties, so the order — and the artifact bytes — never
    // depend on sort internals) and keep the top share.
    const bool last_rung = rung + 1 == schedule.size();
    if (!last_rung && options_.keep_fraction < 1.0 && alive.size() > 1) {
      const size_t keep = std::max<size_t>(
          1, static_cast<size_t>(
                 std::ceil(static_cast<double>(alive.size()) *
                           options_.keep_fraction)));
      if (keep < alive.size()) {
        std::vector<size_t> ranked = alive;
        std::sort(ranked.begin(), ranked.end(), [&](size_t a, size_t b) {
          if (result.trials[a].mean != result.trials[b].mean) {
            return result.trials[a].mean > result.trials[b].mean;
          }
          return a < b;
        });
        ranked.resize(keep);
        std::sort(ranked.begin(), ranked.end());
        for (size_t index : alive) {
          if (!std::binary_search(ranked.begin(), ranked.end(), index)) {
            result.trials[index].eliminated_at_rung = rung;
            ++summary.eliminated_halving;
          }
        }
        alive.swap(ranked);
      }
    }

    result.rungs.push_back(summary);
    if (alive.size() == 1 && last_rung) break;
    if (alive.size() == 1) {
      // A lone survivor still finishes the remaining folds (the final
      // statistics should use all K), unless the budget says otherwise —
      // handled by the loop's own budget check on the next iteration.
      continue;
    }
  }

  // Winner: highest final mean among the never-eliminated, lowest config
  // index on ties.
  size_t best = alive.empty() ? 0 : alive[0];
  for (size_t index : alive) {
    if (result.trials[index].mean > result.trials[best].mean) best = index;
  }
  result.best_config = best;
  return result;
}

StatusOr<RaceResult> Racer::Race(
    const Dataset& dataset, CategoryId target,
    const std::vector<TrialConfig>& configs) const {
  StratifiedKFoldOptions fold_options;
  fold_options.num_folds = options_.num_folds;
  fold_options.seed = options_.seed;
  fold_options.num_threads = options_.num_threads;
  auto folds_or = StratifiedKFold::Split(dataset, fold_options);
  if (!folds_or.ok()) return folds_or.status();
  const StratifiedKFold folds = std::move(folds_or).value();

  // Materialize every fold's row subsets once; trainings share them
  // read-only across the race.
  std::vector<RowSubset> train_rows(options_.num_folds);
  std::vector<RowSubset> test_rows(options_.num_folds);
  for (size_t fold = 0; fold < options_.num_folds; ++fold) {
    train_rows[fold] = folds.TrainRows(fold);
    test_rows[fold] = folds.TestRows(fold);
  }

  // Shared thread budget: the outer rung fan-out reserves its workers, and
  // each training leases whatever inner width remains. Oversubscription is
  // impossible by construction; results don't depend on the grants because
  // training is bit-identical at any thread count.
  const size_t budget_total =
      ThreadPool::ResolveThreadCount(options_.num_threads);
  auto budget = std::make_shared<ThreadBudget>(budget_total);
  budget->Reserve(std::min(budget_total, configs.size()));

  TrialEvalFn eval = [this, &dataset, target, &train_rows, &test_rows,
                      budget](const TrialConfig& trial, size_t /*config*/,
                              size_t fold) -> StatusOr<FoldEval> {
    ThreadBudget::Lease lease = budget->Acquire(budget->total());
    auto classifier = TrainTrialClassifier(trial, dataset, train_rows[fold],
                                           target, lease.count());
    if (!classifier.ok()) return classifier.status();
    BatchScoreOptions batch;
    batch.num_threads = lease.count();
    const Confusion confusion = EvaluateClassifierOnRows(
        **classifier, dataset, test_rows[fold], target, batch);
    FoldEval result;
    result.recall = confusion.recall();
    result.precision = confusion.precision();
    result.f_measure = confusion.f_measure();
    return result;
  };
  return RaceWithEval(configs, eval);
}

}  // namespace pnr
