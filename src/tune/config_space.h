// Hyperparameter configuration space for the tuning racer.
//
// A ConfigSpace is a small grid over the PNrule knobs the paper fixes by
// hand: rp / rn (the recall controls), the minimum rule support, the
// P-rule length cap, the rule-growth metric, and the ScoreMatrix decision
// threshold. Spaces come from a line-oriented config file
// (`pnr tune --config grid.cfg`):
//
//     # one key per line; values comma- or space-separated
//     rp        = 0.95, 0.99, 0.995
//     rn        = 0.7, 0.9, 0.95
//     max_p_len = 0, 1
//     metric    = z-number
//     threshold = 0.5
//
// or from Default(), the built-in 24-point grid the flagship sweep races.
//
// Parsing is an untrusted-input surface (config files are user-written and
// fuzzed — see fuzz/fuzz_targets.h): every rejection names the offending
// line, out-of-range values and unknown or duplicate keys are errors, and
// the enumerated grid is capped at kMaxConfigs so a hostile file cannot
// request a combinatorial explosion.

#ifndef PNR_TUNE_CONFIG_SPACE_H_
#define PNR_TUNE_CONFIG_SPACE_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "induction/metric.h"
#include "pnrule/config.h"

namespace pnr {

/// One raced configuration: a full PnruleConfig plus the decision threshold
/// applied to the trained classifier.
struct TrialConfig {
  PnruleConfig config;
  double threshold = 0.5;

  /// Compact cell for report tables, e.g.
  /// "rp=.99 rn=.9 sup=.01 len=1 z-number thr=.5".
  std::string Describe() const;
};

/// A cartesian grid over the tunable PNrule parameters.
class ConfigSpace {
 public:
  /// Largest grid Enumerate will produce; Parse rejects bigger requests.
  static constexpr size_t kMaxConfigs = 4096;

  /// Parses a config-file's contents. Errors name the offending line
  /// ("tune config line 3: unknown key 'foo'").
  static StatusOr<ConfigSpace> Parse(std::string_view text);

  /// The built-in grid raced by the flagship sweep:
  /// rp {.95, .99, .995} x rn {.7, .9, .95, .995} x max_p_len {0, 1}.
  static ConfigSpace Default();

  /// Number of configurations in the grid (product of the value lists).
  size_t size() const;

  /// Expands the grid over `base` (every non-swept parameter keeps the
  /// base's value) in a fixed canonical order: rp outermost, then rn,
  /// min_support, max_p_len, metric, threshold.
  std::vector<TrialConfig> Enumerate(const PnruleConfig& base) const;

 private:
  std::vector<double> rp_ = {0.99};
  std::vector<double> rn_ = {0.9};
  std::vector<double> min_support_ = {0.01};
  std::vector<size_t> max_p_len_ = {0};
  std::vector<RuleMetricKind> metric_ = {RuleMetricKind::kZNumber};
  std::vector<double> threshold_ = {0.5};
};

}  // namespace pnr

#endif  // PNR_TUNE_CONFIG_SPACE_H_
