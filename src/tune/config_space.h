// Hyperparameter configuration space for the tuning racer.
//
// A ConfigSpace is a small grid over the PNrule knobs the paper fixes by
// hand: rp / rn (the recall controls), the minimum rule support, the
// P-rule length cap, the rule-growth metric, and the ScoreMatrix decision
// threshold. Spaces come from a line-oriented config file
// (`pnr tune --config grid.cfg`):
//
//     # one key per line; values comma- or space-separated
//     rp        = 0.95, 0.99, 0.995
//     rn        = 0.7, 0.9, 0.95
//     max_p_len = 0, 1
//     metric    = z-number
//     threshold = 0.5
//
// or from Default(), the built-in 24-point grid the flagship sweep races.
//
// An `algorithm` line widens the race across learner families: each listed
// algorithm contributes its own sub-grid (PNrule trials sweep the rp/rn/...
// axes, CBA trials sweep the cba_* axes; `threshold` applies to both), so
// mined associative classifiers race PNrule head-to-head in one grid:
//
//     algorithm         = pnrule, cba
//     cba_support       = 0.01, 0.02
//     cba_class_support = 0.05
//     cba_conf          = 0.5, 0.7
//     cba_len           = 2, 3
//
// Parsing is an untrusted-input surface (config files are user-written and
// fuzzed — see fuzz/fuzz_targets.h): every rejection names the offending
// line, out-of-range values and unknown or duplicate keys are errors, and
// the enumerated grid is capped at kMaxConfigs so a hostile file cannot
// request a combinatorial explosion.

#ifndef PNR_TUNE_CONFIG_SPACE_H_
#define PNR_TUNE_CONFIG_SPACE_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "assoc/miner.h"
#include "common/status.h"
#include "induction/metric.h"
#include "pnrule/config.h"

namespace pnr {

/// Learner family a trial trains.
enum class TuneAlgorithm { kPnrule, kCba };

/// Canonical name ("pnrule", "cba").
const char* TuneAlgorithmName(TuneAlgorithm algorithm);

/// One raced configuration: the learner family, its full config, and the
/// decision threshold applied to the trained classifier. Only the config of
/// the selected family is meaningful; the other keeps its defaults.
struct TrialConfig {
  TuneAlgorithm algorithm = TuneAlgorithm::kPnrule;
  PnruleConfig config;
  AssocMineOptions cba;
  double threshold = 0.5;

  /// Compact cell for report tables, e.g.
  /// "rp=.99 rn=.9 sup=.01 len=1 z-number thr=.5" or
  /// "cba sup=.01 csup=.05 conf=.5 len=3 thr=.5".
  std::string Describe() const;
};

/// A cartesian grid over the tunable PNrule parameters.
class ConfigSpace {
 public:
  /// Largest grid Enumerate will produce; Parse rejects bigger requests.
  static constexpr size_t kMaxConfigs = 4096;

  /// Parses a config-file's contents. Errors name the offending line
  /// ("tune config line 3: unknown key 'foo'").
  static StatusOr<ConfigSpace> Parse(std::string_view text);

  /// The built-in grid raced by the flagship sweep:
  /// rp {.95, .99, .995} x rn {.7, .9, .95, .995} x max_p_len {0, 1}.
  static ConfigSpace Default();

  /// Number of configurations in the grid (product of the value lists).
  size_t size() const;

  /// Expands the grid over `base` (every non-swept parameter keeps the
  /// base's value) in a fixed canonical order: algorithms in listed order,
  /// then per family — PNrule: rp outermost, then rn, min_support,
  /// max_p_len, metric, threshold; CBA: cba_support, cba_class_support,
  /// cba_conf, cba_len, threshold.
  std::vector<TrialConfig> Enumerate(const PnruleConfig& base) const;

 private:
  std::vector<TuneAlgorithm> algorithm_ = {TuneAlgorithm::kPnrule};
  std::vector<double> rp_ = {0.99};
  std::vector<double> rn_ = {0.9};
  std::vector<double> min_support_ = {0.01};
  std::vector<size_t> max_p_len_ = {0};
  std::vector<RuleMetricKind> metric_ = {RuleMetricKind::kZNumber};
  std::vector<double> threshold_ = {0.5};
  std::vector<double> cba_support_ = {0.01};
  std::vector<double> cba_class_support_ = {0.05};
  std::vector<double> cba_conf_ = {0.5};
  std::vector<size_t> cba_len_ = {3};
};

}  // namespace pnr

#endif  // PNR_TUNE_CONFIG_SPACE_H_
