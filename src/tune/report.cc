#include "tune/report.h"

#include <algorithm>
#include <cmath>
#include <filesystem>

#include "common/file_io.h"
#include "common/string_util.h"
#include "harness/table.h"

namespace pnr {
namespace {

struct MeanSd {
  double mean = 0.0;
  double sd = 0.0;
};

MeanSd Summarize(const std::vector<FoldEval>& folds,
                 double (*pick)(const FoldEval&)) {
  MeanSd out;
  if (folds.empty()) return out;
  for (const FoldEval& f : folds) out.mean += pick(f);
  out.mean /= static_cast<double>(folds.size());
  if (folds.size() >= 2) {
    double sq = 0.0;
    for (const FoldEval& f : folds) {
      const double d = pick(f) - out.mean;
      sq += d * d;
    }
    out.sd = std::sqrt(sq / static_cast<double>(folds.size() - 1));
  }
  return out;
}

double PickRecall(const FoldEval& f) { return f.recall; }
double PickPrecision(const FoldEval& f) { return f.precision; }
double PickF(const FoldEval& f) { return f.f_measure; }

std::string Cell(const MeanSd& stats) {
  return FormatDouble(stats.mean, 4) + " ±" + FormatDouble(stats.sd, 4);
}

std::string StatusCell(const TrialState& trial, size_t best_index) {
  if (trial.config_index == best_index) return "winner";
  if (trial.eliminated_at_rung == kNeverEliminated) return "survivor";
  return "elim@r" + std::to_string(trial.eliminated_at_rung);
}

// Leaderboard order: winner first, then surviving and eliminated trials by
// descending mean, config index breaking ties — a total order, so the
// rendered bytes never depend on container internals.
std::vector<size_t> LeaderboardOrder(const TuneReport& report) {
  std::vector<size_t> order(report.result.trials.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  const auto& trials = report.result.trials;
  const size_t best = report.result.best_config;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if ((a == best) != (b == best)) return a == best;
    const bool a_alive = trials[a].eliminated_at_rung == kNeverEliminated;
    const bool b_alive = trials[b].eliminated_at_rung == kNeverEliminated;
    if (a_alive != b_alive) return a_alive;
    if (trials[a].mean != trials[b].mean) {
      return trials[a].mean > trials[b].mean;
    }
    return a < b;
  });
  return order;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string RenderTuneMarkdown(const TuneReport& report) {
  const RacerOptions& options = report.options;
  const RaceResult& result = report.result;

  std::string out = "# Tune race — " + report.dataset + "\n\n";
  out += "Target class `" + report.target + "`, objective " +
         TuneMetricName(options.metric) + ", " +
         std::to_string(report.configs.size()) + " configurations, " +
         std::to_string(options.num_folds) + "-fold stratified CV, seed " +
         std::to_string(options.seed) + ".\n";
  out += "Elimination: confidence z=" + FormatDouble(options.confidence_z, 2) +
         ", halving keep=" + FormatDouble(options.keep_fraction, 2) +
         ", budget " +
         (options.max_evals == 0 ? std::string("unlimited")
                                 : std::to_string(options.max_evals)) +
         " evals; used " + std::to_string(result.evals_used) +
         (result.budget_exhausted ? " (budget stopped the race early)"
                                  : "") +
         ".\n\n";

  out += "## Rungs\n\n";
  TablePrinter rungs({"rung", "folds", "entrants", "evals", "elim(bound)",
                      "elim(halving)"});
  for (size_t r = 0; r < result.rungs.size(); ++r) {
    const RungSummary& rung = result.rungs[r];
    rungs.AddRow({std::to_string(r), std::to_string(rung.folds_cumulative),
                  std::to_string(rung.entrants), std::to_string(rung.evals),
                  std::to_string(rung.eliminated_bound),
                  std::to_string(rung.eliminated_halving)});
  }
  out += rungs.Render() + "\n";

  out += "## Leaderboard (mean ± sd over evaluated folds)\n\n";
  TablePrinter board(
      {"config", "folds", "Rec", "Prec", "F", "status"});
  for (size_t index : LeaderboardOrder(report)) {
    const TrialState& trial = result.trials[index];
    board.AddRow({report.configs[index].Describe(),
                  std::to_string(trial.folds.size()),
                  Cell(Summarize(trial.folds, PickRecall)),
                  Cell(Summarize(trial.folds, PickPrecision)),
                  Cell(Summarize(trial.folds, PickF)),
                  StatusCell(trial, result.best_config)});
  }
  out += board.Render() + "\n";

  const TrialState& best = result.trials[result.best_config];
  out += "Winner: `" + report.configs[result.best_config].Describe() +
         "` with " + TuneMetricName(options.metric) + " " +
         FormatDouble(best.mean, 4) + " ±" + FormatDouble(best.stddev, 4) +
         " over " + std::to_string(best.folds.size()) + " folds.\n";
  return out;
}

std::string RenderTuneJson(const TuneReport& report) {
  const RacerOptions& options = report.options;
  const RaceResult& result = report.result;
  std::string out = "{\n";
  out += "  \"tool\": \"pnr tune\",\n";
  out += "  \"dataset\": \"" + JsonEscape(report.dataset) + "\",\n";
  out += "  \"target\": \"" + JsonEscape(report.target) + "\",\n";
  out += "  \"metric\": \"" + std::string(TuneMetricName(options.metric)) +
         "\",\n";
  out += "  \"folds\": " + std::to_string(options.num_folds) + ",\n";
  out += "  \"seed\": " + std::to_string(options.seed) + ",\n";
  out += "  \"max_evals\": " + std::to_string(options.max_evals) + ",\n";
  out += "  \"confidence_z\": " + FormatDouble(options.confidence_z, 4) +
         ",\n";
  out += "  \"keep_fraction\": " + FormatDouble(options.keep_fraction, 4) +
         ",\n";
  out += "  \"num_configs\": " + std::to_string(report.configs.size()) +
         ",\n";
  out += "  \"evals_used\": " + std::to_string(result.evals_used) + ",\n";
  out += std::string("  \"budget_exhausted\": ") +
         (result.budget_exhausted ? "true" : "false") + ",\n";

  out += "  \"rungs\": [";
  for (size_t r = 0; r < result.rungs.size(); ++r) {
    const RungSummary& rung = result.rungs[r];
    if (r != 0) out += ", ";
    out += "{\"folds\": " + std::to_string(rung.folds_cumulative) +
           ", \"entrants\": " + std::to_string(rung.entrants) +
           ", \"evals\": " + std::to_string(rung.evals) +
           ", \"eliminated_bound\": " +
           std::to_string(rung.eliminated_bound) +
           ", \"eliminated_halving\": " +
           std::to_string(rung.eliminated_halving) + "}";
  }
  out += "],\n";

  out += "  \"best\": {\"index\": " + std::to_string(result.best_config) +
         ", \"config\": \"" +
         JsonEscape(report.configs[result.best_config].Describe()) +
         "\", \"mean\": " +
         FormatDouble(result.trials[result.best_config].mean, 6) +
         ", \"stddev\": " +
         FormatDouble(result.trials[result.best_config].stddev, 6) + "},\n";

  out += "  \"trials\": [\n";
  for (size_t i = 0; i < result.trials.size(); ++i) {
    const TrialState& trial = result.trials[i];
    const MeanSd recall = Summarize(trial.folds, PickRecall);
    const MeanSd precision = Summarize(trial.folds, PickPrecision);
    const MeanSd f = Summarize(trial.folds, PickF);
    out += "    {\"index\": " + std::to_string(i) + ", \"config\": \"" +
           JsonEscape(report.configs[i].Describe()) +
           "\", \"folds\": " + std::to_string(trial.folds.size()) +
           ", \"eliminated_at_rung\": " +
           (trial.eliminated_at_rung == kNeverEliminated
                ? std::string("null")
                : std::to_string(trial.eliminated_at_rung)) +
           ", \"recall\": [" + FormatDouble(recall.mean, 6) + ", " +
           FormatDouble(recall.sd, 6) + "], \"precision\": [" +
           FormatDouble(precision.mean, 6) + ", " +
           FormatDouble(precision.sd, 6) + "], \"f\": [" +
           FormatDouble(f.mean, 6) + ", " + FormatDouble(f.sd, 6) + "]}";
    out += i + 1 == result.trials.size() ? "\n" : ",\n";
  }
  out += "  ]\n}\n";
  return out;
}

Status WriteTuneArtifacts(const TuneReport& report,
                          const std::string& out_dir) {
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    return Status::IOError("cannot create output directory '" + out_dir +
                           "': " + ec.message());
  }
  Status status = WriteStringToFile(RenderTuneMarkdown(report),
                                    out_dir + "/EXPERIMENTS.md");
  if (!status.ok()) return status;
  return WriteStringToFile(RenderTuneJson(report),
                           out_dir + "/BENCH_tune.json");
}

}  // namespace pnr
