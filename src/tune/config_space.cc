#include "tune/config_space.h"

#include <algorithm>

#include "common/string_util.h"

namespace pnr {
namespace {

// Parse-time representation of one `key = values` line.
struct ParsedLine {
  std::string key;
  std::vector<std::string> values;
};

Status LineError(size_t line_no, const std::string& message) {
  return Status::InvalidArgument("tune config line " +
                                 std::to_string(line_no) + ": " + message);
}

// Splits the value list on commas and whitespace; never yields empties.
std::vector<std::string> SplitValues(std::string_view text) {
  std::vector<std::string> values;
  std::string current;
  for (char c : text) {
    if (c == ',' || c == ' ' || c == '\t' || c == '\r') {
      if (!current.empty()) values.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) values.push_back(std::move(current));
  return values;
}

Status ParseDoubles(const ParsedLine& line, size_t line_no, double lo,
                    double hi, bool lo_exclusive, std::vector<double>* out) {
  out->clear();
  for (const std::string& token : line.values) {
    double value = 0.0;
    if (!ParseDouble(token, &value)) {
      return LineError(line_no, "invalid number '" + token + "' for key '" +
                                    line.key + "'");
    }
    const bool below = lo_exclusive ? value <= lo : value < lo;
    if (below || value > hi) {
      return LineError(line_no, "value " + token + " for key '" + line.key +
                                    "' is outside " +
                                    (lo_exclusive ? "(" : "[") +
                                    FormatDouble(lo, 2) + ", " +
                                    FormatDouble(hi, 2) + "]");
    }
    out->push_back(value);
  }
  return Status::OK();
}

Status ParseLengths(const ParsedLine& line, size_t line_no,
                    std::vector<size_t>* out) {
  out->clear();
  for (const std::string& token : line.values) {
    long long value = 0;
    if (!ParseInt64(token, &value) || value < 0 || value > 64) {
      return LineError(line_no, "value '" + token + "' for key '" + line.key +
                                    "' must be an integer in [0, 64]");
    }
    out->push_back(static_cast<size_t>(value));
  }
  return Status::OK();
}

Status ParseMetrics(const ParsedLine& line, size_t line_no,
                    std::vector<RuleMetricKind>* out) {
  static constexpr RuleMetricKind kKinds[] = {
      RuleMetricKind::kZNumber, RuleMetricKind::kInfoGain,
      RuleMetricKind::kGainRatio, RuleMetricKind::kGini,
      RuleMetricKind::kChiSquared};
  out->clear();
  for (const std::string& token : line.values) {
    bool found = false;
    for (RuleMetricKind kind : kKinds) {
      if (token == RuleMetricKindName(kind)) {
        out->push_back(kind);
        found = true;
        break;
      }
    }
    if (!found) {
      return LineError(line_no, "unknown metric '" + token +
                                    "' (valid: z-number info-gain "
                                    "gain-ratio gini chi-squared)");
    }
  }
  return Status::OK();
}

Status ParseAlgorithms(const ParsedLine& line, size_t line_no,
                       std::vector<TuneAlgorithm>* out) {
  out->clear();
  for (const std::string& token : line.values) {
    TuneAlgorithm algorithm;
    if (token == "pnrule") {
      algorithm = TuneAlgorithm::kPnrule;
    } else if (token == "cba") {
      algorithm = TuneAlgorithm::kCba;
    } else {
      return LineError(line_no, "unknown algorithm '" + token +
                                    "' (valid: pnrule cba)");
    }
    if (std::find(out->begin(), out->end(), algorithm) != out->end()) {
      return LineError(line_no, "duplicate algorithm '" + token + "'");
    }
    out->push_back(algorithm);
  }
  return Status::OK();
}

std::string TrimComment(std::string_view line) {
  const size_t hash = line.find('#');
  if (hash != std::string_view::npos) line = line.substr(0, hash);
  return std::string(TrimWhitespace(line));
}

}  // namespace

const char* TuneAlgorithmName(TuneAlgorithm algorithm) {
  switch (algorithm) {
    case TuneAlgorithm::kPnrule:
      return "pnrule";
    case TuneAlgorithm::kCba:
      return "cba";
  }
  return "unknown";
}

std::string TrialConfig::Describe() const {
  if (algorithm == TuneAlgorithm::kCba) {
    std::string out = "cba sup=" + FormatDouble(cba.min_support, 3);
    out += " csup=" + FormatDouble(cba.per_class_min_support, 3);
    out += " conf=" + FormatDouble(cba.min_confidence, 2);
    out += " len=" + std::to_string(cba.max_len);
    out += " thr=" + FormatDouble(threshold, 2);
    return out;
  }
  std::string out = "rp=" + FormatDouble(config.min_coverage_fraction, 3);
  out += " rn=" + FormatDouble(config.n_recall_lower_limit, 3);
  out += " sup=" + FormatDouble(config.min_support_fraction, 3);
  out += " len=" + (config.max_p_rule_length == 0
                        ? std::string("-")
                        : std::to_string(config.max_p_rule_length));
  out += " " + std::string(RuleMetricKindName(config.metric));
  out += " thr=" + FormatDouble(threshold, 2);
  return out;
}

StatusOr<ConfigSpace> ConfigSpace::Parse(std::string_view text) {
  ConfigSpace space;
  std::vector<std::string> seen_keys;
  size_t line_no = 0;
  size_t parsed_keys = 0;
  while (!text.empty()) {
    ++line_no;
    const size_t newline = text.find('\n');
    const std::string_view raw =
        newline == std::string_view::npos ? text : text.substr(0, newline);
    text = newline == std::string_view::npos ? std::string_view()
                                             : text.substr(newline + 1);

    const std::string stripped = TrimComment(raw);
    if (stripped.empty()) continue;
    const size_t eq = stripped.find('=');
    if (eq == std::string::npos) {
      return LineError(line_no, "expected 'key = value, value, ...', got '" +
                                    stripped + "'");
    }
    ParsedLine line;
    line.key = std::string(TrimWhitespace(stripped.substr(0, eq)));
    line.values = SplitValues(stripped.substr(eq + 1));
    if (line.key.empty()) return LineError(line_no, "missing key before '='");
    if (std::find(seen_keys.begin(), seen_keys.end(), line.key) !=
        seen_keys.end()) {
      return LineError(line_no, "duplicate key '" + line.key + "'");
    }
    seen_keys.push_back(line.key);
    if (line.values.empty()) {
      return LineError(line_no, "empty grid for key '" + line.key + "'");
    }

    Status status;
    if (line.key == "rp") {
      status = ParseDoubles(line, line_no, 0.0, 1.0, /*lo_exclusive=*/true,
                            &space.rp_);
    } else if (line.key == "rn") {
      status = ParseDoubles(line, line_no, 0.0, 1.0, /*lo_exclusive=*/false,
                            &space.rn_);
    } else if (line.key == "min_support") {
      status = ParseDoubles(line, line_no, 0.0, 1.0, /*lo_exclusive=*/false,
                            &space.min_support_);
    } else if (line.key == "threshold") {
      status = ParseDoubles(line, line_no, 0.0, 1.0, /*lo_exclusive=*/false,
                            &space.threshold_);
    } else if (line.key == "max_p_len") {
      status = ParseLengths(line, line_no, &space.max_p_len_);
    } else if (line.key == "metric") {
      status = ParseMetrics(line, line_no, &space.metric_);
    } else if (line.key == "algorithm") {
      status = ParseAlgorithms(line, line_no, &space.algorithm_);
    } else if (line.key == "cba_support") {
      status = ParseDoubles(line, line_no, 0.0, 1.0, /*lo_exclusive=*/true,
                            &space.cba_support_);
    } else if (line.key == "cba_class_support") {
      status = ParseDoubles(line, line_no, 0.0, 1.0, /*lo_exclusive=*/false,
                            &space.cba_class_support_);
    } else if (line.key == "cba_conf") {
      status = ParseDoubles(line, line_no, 0.0, 1.0, /*lo_exclusive=*/false,
                            &space.cba_conf_);
    } else if (line.key == "cba_len") {
      status = ParseLengths(line, line_no, &space.cba_len_);
      if (status.ok()) {
        for (size_t len : space.cba_len_) {
          if (len == 0) {
            status = LineError(line_no, "cba_len values must be >= 1");
            break;
          }
        }
      }
    } else {
      return LineError(line_no, "unknown key '" + line.key +
                                    "' (valid: rp rn min_support max_p_len "
                                    "metric threshold algorithm cba_support "
                                    "cba_class_support cba_conf cba_len)");
    }
    if (!status.ok()) return status;
    ++parsed_keys;
  }
  if (parsed_keys == 0) {
    return Status::InvalidArgument(
        "tune config: no parameter lines found (expected 'key = values')");
  }
  if (space.size() > kMaxConfigs) {
    return Status::InvalidArgument(
        "tune config: grid has " + std::to_string(space.size()) +
        " configurations, more than the maximum " +
        std::to_string(kMaxConfigs));
  }
  return space;
}

ConfigSpace ConfigSpace::Default() {
  ConfigSpace space;
  space.rp_ = {0.95, 0.99, 0.995};
  space.rn_ = {0.7, 0.9, 0.95, 0.995};
  space.max_p_len_ = {0, 1};
  return space;
}

size_t ConfigSpace::size() const {
  // Saturating products: a hostile config file can make each list thousands
  // of entries long, so the naive product overflows size_t long before
  // Parse's kMaxConfigs check sees it.
  const auto product_of = [](std::initializer_list<size_t> sizes) -> size_t {
    size_t product = 1;
    for (size_t n : sizes) {
      if (n == 0) return 0;
      if (product > kMaxConfigs) return product;  // already over the cap
      product *= n;
    }
    return product;
  };
  size_t total = 0;
  for (TuneAlgorithm algorithm : algorithm_) {
    const size_t family =
        algorithm == TuneAlgorithm::kCba
            ? product_of({cba_support_.size(), cba_class_support_.size(),
                          cba_conf_.size(), cba_len_.size(),
                          threshold_.size()})
            : product_of({rp_.size(), rn_.size(), min_support_.size(),
                          max_p_len_.size(), metric_.size(),
                          threshold_.size()});
    if (total > kMaxConfigs) return total;
    total += family;
  }
  return total;
}

std::vector<TrialConfig> ConfigSpace::Enumerate(
    const PnruleConfig& base) const {
  std::vector<TrialConfig> configs;
  configs.reserve(size());
  for (TuneAlgorithm algorithm : algorithm_) {
    if (algorithm == TuneAlgorithm::kCba) {
      for (double support : cba_support_) {
        for (double class_support : cba_class_support_) {
          for (double confidence : cba_conf_) {
            for (size_t len : cba_len_) {
              for (double threshold : threshold_) {
                TrialConfig trial;
                trial.algorithm = TuneAlgorithm::kCba;
                trial.config = base;
                trial.cba.min_support = support;
                trial.cba.per_class_min_support = class_support;
                trial.cba.min_confidence = confidence;
                trial.cba.max_len = len;
                trial.threshold = threshold;
                configs.push_back(std::move(trial));
              }
            }
          }
        }
      }
      continue;
    }
    for (double rp : rp_) {
      for (double rn : rn_) {
        for (double support : min_support_) {
          for (size_t len : max_p_len_) {
            for (RuleMetricKind metric : metric_) {
              for (double threshold : threshold_) {
                TrialConfig trial;
                trial.config = base;
                trial.config.min_coverage_fraction = rp;
                trial.config.n_recall_lower_limit = rn;
                trial.config.min_support_fraction = support;
                trial.config.max_p_rule_length = len;
                trial.config.metric = metric;
                trial.threshold = threshold;
                configs.push_back(std::move(trial));
              }
            }
          }
        }
      }
    }
  }
  return configs;
}

}  // namespace pnr
