#include "c45/compiled_tree.h"

#include <algorithm>

namespace pnr {

CompiledTree CompiledTree::Compile(const DecisionTree& tree,
                                   const Schema& schema) {
  CompiledTree compiled;
  compiled.root_ = tree.root();
  compiled.nodes_.reserve(tree.nodes().size());
  for (const TreeNode& node : tree.nodes()) {
    FlatNode flat;
    flat.is_leaf = node.is_leaf;
    flat.largest_child = node.largest_child;
    if (!node.is_leaf) {
      flat.attr = node.attr;
      flat.is_numeric = schema.attribute(node.attr).is_numeric();
      // RouteToLeaf falls back to largest_child whenever a child link is
      // missing; folding that fallback into the links here removes the
      // extra per-visit branch (-1 survives only when the fallback itself
      // is missing, i.e. the walk stops at this node).
      if (flat.is_numeric) {
        flat.threshold = node.threshold;
        flat.child_low = node.children.size() > 0 ? node.children[0] : -1;
        flat.child_high = node.children.size() > 1 ? node.children[1] : -1;
        if (flat.child_low < 0) flat.child_low = node.largest_child;
        if (flat.child_high < 0) flat.child_high = node.largest_child;
      } else {
        flat.cat_begin = static_cast<uint32_t>(compiled.cat_children_.size());
        flat.cat_count = static_cast<uint32_t>(node.children.size());
        for (int32_t child : node.children) {
          compiled.cat_children_.push_back(child >= 0 ? child
                                                      : node.largest_child);
        }
        compiled.max_cat_fanout_ =
            std::max(compiled.max_cat_fanout_, flat.cat_count + 1);
      }
      const bool seen = std::any_of(
          compiled.used_attrs_.begin(), compiled.used_attrs_.end(),
          [&](const UsedAttr& u) { return u.attr == node.attr; });
      if (!seen) {
        compiled.used_attrs_.push_back(UsedAttr{node.attr, flat.is_numeric});
      }
    }
    compiled.nodes_.push_back(flat);
  }
  return compiled;
}

void CompiledTree::RouteBlock(const Dataset& dataset, const RowId* rows,
                              size_t count, int32_t* out) const {
  if (root_ < 0) {
    for (size_t i = 0; i < count; ++i) out[i] = -1;
    return;
  }

  // Hoist raw column pointers once per block; the per-row walk then reads
  // cells with plain indexing instead of an accessor call per tree level.
  // On a demand-paged dataset the hoist would dangle — faulting one column
  // in can evict an earlier-hoisted one — so the split loops refetch each
  // node's column instead: one fault per segment, pointer taken right
  // after it, and nothing else faults during that segment's pass.
  const bool paged = dataset.paged();
  size_t max_attr = 0;
  for (const UsedAttr& u : used_attrs_) {
    max_attr = std::max(max_attr, static_cast<size_t>(u.attr));
  }
  std::vector<const double*> numeric_cols(max_attr + 1, nullptr);
  std::vector<const CategoryId*> categorical_cols(max_attr + 1, nullptr);
  if (!paged) {
    for (const UsedAttr& u : used_attrs_) {
      if (u.is_numeric) {
        numeric_cols[static_cast<size_t>(u.attr)] =
            dataset.numeric_column(u.attr).data();
      } else {
        categorical_cols[static_cast<size_t>(u.attr)] =
            dataset.categorical_column(u.attr).data();
      }
    }
  }

  const FlatNode* nodes = nodes_.data();
  const int32_t* cat_children = cat_children_.data();

  // Partition-based routing: instead of walking the tree once per row
  // (whose data-dependent branches mispredict constantly), process one
  // node at a time over the whole segment of rows that reached it. A
  // numeric split is one branchless two-end partition pass — every row is
  // stored to both bucket cursors and the comparison only moves them — so
  // the loop has no unpredictable control flow at all. Segments ping-pong
  // between two slot buffers; every row writes exactly its own out slot,
  // so the visit order never affects results.
  std::vector<uint32_t> buf0(count);
  std::vector<uint32_t> buf1(count);
  for (size_t i = 0; i < count; ++i) buf0[i] = static_cast<uint32_t>(i);
  std::vector<uint32_t> bucket_at(max_cat_fanout_ + 1);

  struct Segment {
    int32_t node;
    uint32_t offset;
    uint32_t len;
    uint8_t buf;
  };
  std::vector<Segment> pending;
  pending.push_back({root_, 0, static_cast<uint32_t>(count), 0});

  while (!pending.empty()) {
    const Segment seg = pending.back();
    pending.pop_back();
    uint32_t* slots = (seg.buf != 0 ? buf1.data() : buf0.data()) + seg.offset;
    uint32_t* next_slots =
        (seg.buf != 0 ? buf0.data() : buf1.data()) + seg.offset;
    const uint8_t next_buf = seg.buf != 0 ? 0 : 1;
    const FlatNode& node = nodes[static_cast<size_t>(seg.node)];

    // Terminal segment: a leaf, or a degenerate node with no viable child.
    // (Child links < 0 survive compile-time folding only when the
    // largest-child fallback is missing too, i.e. the walk stops here.)
    if (node.is_leaf) {
      for (uint32_t i = 0; i < seg.len; ++i) out[slots[i]] = seg.node;
      continue;
    }

    if (node.is_numeric) {
      const double* col =
          paged ? dataset.numeric_column(node.attr).data()
                : numeric_cols[static_cast<size_t>(node.attr)];
      const double threshold = node.threshold;
      uint32_t nl = 0;
      uint32_t nh = seg.len;
      for (uint32_t i = 0; i < seg.len; ++i) {
        const uint32_t s = slots[i];
        const bool low = col[rows[s]] <= threshold;
        next_slots[nl] = s;
        next_slots[nh - 1] = s;
        nl += low;
        nh -= !low;
      }
      if (nl > 0) {
        if (node.child_low >= 0) {
          pending.push_back({node.child_low, seg.offset, nl, next_buf});
        } else {
          for (uint32_t i = 0; i < nl; ++i) out[next_slots[i]] = seg.node;
        }
      }
      if (nh < seg.len) {
        if (node.child_high >= 0) {
          pending.push_back(
              {node.child_high, seg.offset + nh, seg.len - nh, next_buf});
        } else {
          for (uint32_t i = nh; i < seg.len; ++i) {
            out[next_slots[i]] = seg.node;
          }
        }
      }
      continue;
    }

    // Categorical split: counting partition into one bucket per seen
    // category plus an overflow bucket (missing / unseen values), which
    // routes to the largest-child fallback.
    const CategoryId* col =
        paged ? dataset.categorical_column(node.attr).data()
              : categorical_cols[static_cast<size_t>(node.attr)];
    const uint32_t fanout = node.cat_count + 1;
    const auto bucket_of = [&](uint32_t s) -> uint32_t {
      const CategoryId c = col[rows[s]];
      return c >= 0 && static_cast<uint32_t>(c) < node.cat_count
                 ? static_cast<uint32_t>(c)
                 : node.cat_count;
    };
    std::fill_n(bucket_at.begin(), fanout + 1, 0u);
    for (uint32_t i = 0; i < seg.len; ++i) ++bucket_at[bucket_of(slots[i]) + 1];
    for (uint32_t k = 1; k <= fanout; ++k) bucket_at[k] += bucket_at[k - 1];
    for (uint32_t i = 0; i < seg.len; ++i) {
      const uint32_t s = slots[i];
      next_slots[bucket_at[bucket_of(s)]++] = s;
    }
    // bucket_at[k] now holds bucket k's END offset within the segment.
    uint32_t begin = 0;
    for (uint32_t k = 0; k < fanout; ++k) {
      const uint32_t end = bucket_at[k];
      if (end == begin) {
        continue;
      }
      const int32_t child = k < node.cat_count
                                ? cat_children[node.cat_begin + k]
                                : node.largest_child;
      if (child >= 0) {
        pending.push_back({child, seg.offset + begin, end - begin, next_buf});
      } else {
        for (uint32_t i = begin; i < end; ++i) out[next_slots[i]] = seg.node;
      }
      begin = end;
    }
  }
}

}  // namespace pnr
