#include "c45/tree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <memory>

#include "common/math_util.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace pnr {

Status C45Config::Validate() const {
  if (min_objs <= 0.0) {
    return Status::InvalidArgument("min_objs must be positive");
  }
  if (cf <= 0.0 || cf >= 1.0) {
    return Status::InvalidArgument("cf must be in (0, 1)");
  }
  if (max_depth == 0) {
    return Status::InvalidArgument("max_depth must be positive");
  }
  return Status::OK();
}

int32_t DecisionTree::AddNode(TreeNode node) {
  nodes_.push_back(std::move(node));
  return static_cast<int32_t>(nodes_.size() - 1);
}

int32_t DecisionTree::RouteToLeaf(const Dataset& dataset, RowId row) const {
  assert(root_ >= 0);
  int32_t index = root_;
  for (;;) {
    const TreeNode& node = nodes_[static_cast<size_t>(index)];
    if (node.is_leaf) return index;
    int32_t next = -1;
    const Attribute& attr = dataset.schema().attribute(node.attr);
    if (attr.is_numeric()) {
      const double v = dataset.numeric(row, node.attr);
      next = node.children[v <= node.threshold ? 0 : 1];
    } else {
      const CategoryId c = dataset.categorical(row, node.attr);
      if (c >= 0 && static_cast<size_t>(c) < node.children.size()) {
        next = node.children[static_cast<size_t>(c)];
      }
    }
    if (next < 0) next = node.largest_child;
    if (next < 0) return index;  // degenerate: treat as leaf
    index = next;
  }
}

CategoryId DecisionTree::Classify(const Dataset& dataset, RowId row) const {
  return nodes_[static_cast<size_t>(RouteToLeaf(dataset, row))]
      .predicted_class;
}

double DecisionTree::ClassProbability(const Dataset& dataset, RowId row,
                                      CategoryId cls) const {
  const TreeNode& leaf =
      nodes_[static_cast<size_t>(RouteToLeaf(dataset, row))];
  const double k = static_cast<double>(num_classes_);
  const double cls_weight =
      cls >= 0 && static_cast<size_t>(cls) < leaf.class_weights.size()
          ? leaf.class_weights[static_cast<size_t>(cls)]
          : 0.0;
  return (cls_weight + 1.0) / (leaf.total_weight + k);
}

size_t DecisionTree::CountLeaves() const {
  size_t leaves = 0;
  // Count only nodes reachable from the root (pruning orphans nodes).
  if (root_ < 0) return 0;
  std::vector<int32_t> stack = {root_};
  while (!stack.empty()) {
    const int32_t index = stack.back();
    stack.pop_back();
    const TreeNode& node = nodes_[static_cast<size_t>(index)];
    if (node.is_leaf) {
      ++leaves;
      continue;
    }
    for (int32_t child : node.children) {
      if (child >= 0) stack.push_back(child);
    }
  }
  return leaves;
}

std::string DecisionTree::ToString(const Schema& schema) const {
  std::string out;
  struct Frame {
    int32_t node;
    int depth;
    std::string edge;
  };
  std::vector<Frame> stack = {{root_, 0, ""}};
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    if (frame.node < 0) continue;
    const TreeNode& node = nodes_[static_cast<size_t>(frame.node)];
    out.append(static_cast<size_t>(frame.depth) * 2, ' ');
    if (!frame.edge.empty()) out += frame.edge + " -> ";
    if (node.is_leaf) {
      out += "class " +
             schema.class_attr().CategoryName(node.predicted_class) + " (" +
             FormatDouble(node.total_weight, 1) + "/" +
             FormatDouble(node.error_weight(), 1) + ")\n";
      continue;
    }
    const Attribute& attr = schema.attribute(node.attr);
    out += "split " + attr.name() + "\n";
    if (attr.is_numeric()) {
      stack.push_back({node.children[1], frame.depth + 1,
                       "> " + FormatDouble(node.threshold, 4)});
      stack.push_back({node.children[0], frame.depth + 1,
                       "<= " + FormatDouble(node.threshold, 4)});
    } else {
      for (size_t c = node.children.size(); c-- > 0;) {
        if (node.children[c] < 0) continue;
        stack.push_back({node.children[c], frame.depth + 1,
                         "= " + attr.CategoryName(static_cast<CategoryId>(c))});
      }
    }
  }
  return out;
}

namespace {

constexpr double kNoGain = -std::numeric_limits<double>::infinity();

struct SplitCandidate {
  AttrIndex attr = -1;
  bool numeric = false;
  double threshold = 0.0;
  double gain = kNoGain;
  double gain_ratio = kNoGain;
  bool valid = false;
};

struct Builder {
  const Dataset& dataset;
  const C45Config& config;
  DecisionTree* tree;
  size_t num_classes;
  ThreadPool* pool = nullptr;  ///< null when serial

  std::vector<double> NodeClassWeights(const RowSubset& rows) const {
    std::vector<double> weights(num_classes, 0.0);
    for (RowId row : rows) {
      weights[static_cast<size_t>(dataset.label(row))] +=
          dataset.weight(row);
    }
    return weights;
  }

  static double Entropy(const std::vector<double>& class_weights,
                        double total) {
    if (total <= 0.0) return 0.0;
    double h = 0.0;
    for (double w : class_weights) {
      if (w > 0.0) h -= XLog2X(w / total);
    }
    return h;
  }

  SplitCandidate EvaluateCategorical(const RowSubset& rows, AttrIndex attr,
                                     double parent_entropy,
                                     double total) const {
    SplitCandidate cand;
    cand.attr = attr;
    const size_t k = dataset.schema().attribute(attr).num_categories();
    if (k < 2) return cand;
    std::vector<std::vector<double>> branch(k,
                                            std::vector<double>(num_classes,
                                                                0.0));
    std::vector<double> branch_total(k, 0.0);
    for (RowId row : rows) {
      const CategoryId c = dataset.categorical(row, attr);
      if (c == kInvalidCategory) continue;
      const double w = dataset.weight(row);
      branch[static_cast<size_t>(c)][static_cast<size_t>(
          dataset.label(row))] += w;
      branch_total[static_cast<size_t>(c)] += w;
    }
    // C4.5's branch constraint: at least two branches carrying min_objs.
    size_t substantial = 0;
    size_t non_empty = 0;
    for (double bt : branch_total) {
      if (bt > 0.0) ++non_empty;
      if (bt >= config.min_objs) ++substantial;
    }
    if (substantial < 2 || non_empty < 2) return cand;
    double children_entropy = 0.0;
    double split_info = 0.0;
    for (size_t b = 0; b < k; ++b) {
      if (branch_total[b] <= 0.0) continue;
      children_entropy +=
          (branch_total[b] / total) * Entropy(branch[b], branch_total[b]);
      split_info -= XLog2X(branch_total[b] / total);
    }
    cand.gain = parent_entropy - children_entropy;
    cand.gain_ratio = split_info > 1e-12 ? cand.gain / split_info : 0.0;
    cand.valid = cand.gain > 0.0;
    return cand;
  }

  SplitCandidate EvaluateNumeric(const RowSubset& rows, AttrIndex attr,
                                 double parent_entropy, double total) const {
    SplitCandidate cand;
    cand.attr = attr;
    cand.numeric = true;
    struct Entry {
      double value;
      double weight;
      CategoryId label;
    };
    std::vector<Entry> entries;
    entries.reserve(rows.size());
    for (RowId row : rows) {
      entries.push_back(
          {dataset.numeric(row, attr), dataset.weight(row),
           dataset.label(row)});
    }
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) { return a.value < b.value; });

    std::vector<double> left(num_classes, 0.0);
    std::vector<double> right = NodeClassWeights(rows);
    double left_total = 0.0;
    double right_total = total;
    size_t distinct = entries.empty() ? 0 : 1;
    for (size_t i = 1; i < entries.size(); ++i) {
      if (entries[i].value > entries[i - 1].value) ++distinct;
    }
    if (distinct < 2) return cand;

    double best_gain = kNoGain;
    double best_split_info = 1.0;
    double best_threshold = 0.0;
    for (size_t i = 0; i + 1 < entries.size(); ++i) {
      const Entry& e = entries[i];
      left[static_cast<size_t>(e.label)] += e.weight;
      left_total += e.weight;
      right[static_cast<size_t>(e.label)] -= e.weight;
      right_total -= e.weight;
      if (entries[i + 1].value <= e.value) continue;  // not a boundary
      if (left_total < config.min_objs || right_total < config.min_objs) {
        continue;
      }
      const double children_entropy =
          (left_total / total) * Entropy(left, left_total) +
          (right_total / total) * Entropy(right, right_total);
      const double gain = parent_entropy - children_entropy;
      if (gain > best_gain) {
        best_gain = gain;
        best_threshold = 0.5 * (e.value + entries[i + 1].value);
        best_split_info = BinaryEntropy(left_total / total);
      }
    }
    if (best_gain == kNoGain) return cand;
    if (config.numeric_gain_penalty) {
      // Release 8: charge the cost of choosing among the candidate
      // thresholds to the gain.
      best_gain -= SafeLog2(static_cast<double>(distinct - 1)) / total;
    }
    cand.gain = best_gain;
    cand.threshold = best_threshold;
    cand.gain_ratio =
        best_split_info > 1e-12 ? best_gain / best_split_info : 0.0;
    cand.valid = best_gain > 0.0;
    return cand;
  }

  int32_t Build(const RowSubset& rows, size_t depth) {
    TreeNode node;
    node.class_weights = NodeClassWeights(rows);
    node.total_weight = 0.0;
    for (double w : node.class_weights) node.total_weight += w;
    node.predicted_class = static_cast<CategoryId>(
        std::max_element(node.class_weights.begin(),
                         node.class_weights.end()) -
        node.class_weights.begin());

    const bool pure = node.error_weight() <= 1e-12;
    if (pure || node.total_weight < 2.0 * config.min_objs ||
        depth >= config.max_depth) {
      return tree->AddNode(std::move(node));
    }

    const double parent_entropy =
        Entropy(node.class_weights, node.total_weight);
    // Evaluate every attribute's best split into a private slot; collecting
    // the valid candidates in attribute order afterwards keeps the
    // average-gain sum and the winner identical for any thread count.
    const size_t num_attrs = dataset.schema().num_attributes();
    std::vector<SplitCandidate> slots(num_attrs);
    const auto evaluate = [&](size_t a) {
      const AttrIndex attr = static_cast<AttrIndex>(a);
      slots[a] = dataset.schema().attribute(attr).is_numeric()
                     ? EvaluateNumeric(rows, attr, parent_entropy,
                                       node.total_weight)
                     : EvaluateCategorical(rows, attr, parent_entropy,
                                           node.total_weight);
    };
    if (pool != nullptr && num_attrs > 1) {
      pool->ParallelFor(num_attrs, evaluate);
    } else {
      for (size_t a = 0; a < num_attrs; ++a) evaluate(a);
    }
    std::vector<SplitCandidate> candidates;
    for (size_t a = 0; a < num_attrs; ++a) {
      if (slots[a].valid) candidates.push_back(slots[a]);
    }
    if (candidates.empty()) return tree->AddNode(std::move(node));

    // Gain-ratio selection restricted to candidates with at least average
    // gain (Quinlan's guard against gain-ratio's bias to tiny splits).
    double average_gain = 0.0;
    for (const SplitCandidate& cand : candidates) average_gain += cand.gain;
    average_gain /= static_cast<double>(candidates.size());
    const SplitCandidate* best = nullptr;
    for (const SplitCandidate& cand : candidates) {
      if (config.use_gain_ratio && cand.gain + 1e-12 < average_gain) {
        continue;
      }
      const double key = config.use_gain_ratio ? cand.gain_ratio : cand.gain;
      const double best_key =
          best == nullptr
              ? kNoGain
              : (config.use_gain_ratio ? best->gain_ratio : best->gain);
      if (best == nullptr || key > best_key) best = &cand;
    }
    if (best == nullptr) return tree->AddNode(std::move(node));

    // Partition rows and recurse.
    node.is_leaf = false;
    node.attr = best->attr;
    node.threshold = best->threshold;
    const SplitCandidate chosen = *best;  // survive vector reallocation

    std::vector<RowSubset> partitions;
    if (chosen.numeric) {
      partitions.resize(2);
      for (RowId row : rows) {
        partitions[dataset.numeric(row, chosen.attr) <= chosen.threshold
                       ? 0
                       : 1]
            .push_back(row);
      }
    } else {
      partitions.resize(
          dataset.schema().attribute(chosen.attr).num_categories());
      for (RowId row : rows) {
        const CategoryId c = dataset.categorical(row, chosen.attr);
        if (c != kInvalidCategory) {
          partitions[static_cast<size_t>(c)].push_back(row);
        }
      }
    }

    node.children.assign(partitions.size(), -1);
    const int32_t node_index = tree->AddNode(node);
    double largest_weight = -1.0;
    int32_t largest_child = -1;
    for (size_t b = 0; b < partitions.size(); ++b) {
      if (partitions[b].empty()) continue;
      const int32_t child = Build(partitions[b], depth + 1);
      tree->mutable_nodes()[static_cast<size_t>(node_index)].children[b] =
          child;
      const double child_weight =
          tree->nodes()[static_cast<size_t>(child)].total_weight;
      if (child_weight > largest_weight) {
        largest_weight = child_weight;
        largest_child = child;
      }
    }
    tree->mutable_nodes()[static_cast<size_t>(node_index)].largest_child =
        largest_child;
    return node_index;
  }
};

}  // namespace

// Defined in prune.cc.
void PruneC45Tree(const Dataset& dataset, const RowSubset& rows,
                  const C45Config& config, DecisionTree* tree);

StatusOr<DecisionTree> BuildC45Tree(const Dataset& dataset,
                                    const RowSubset& rows,
                                    const C45Config& config) {
  Status status = config.Validate();
  if (!status.ok()) return status;
  if (rows.empty()) {
    return Status::InvalidArgument("training set is empty");
  }
  DecisionTree tree;
  tree.set_num_classes(dataset.schema().num_classes());
  // Paged datasets drop to a serial build: the per-node attribute scans
  // read columns without pinning them, which would race with fault-driven
  // eviction. Serial and parallel builds are bit-identical regardless.
  const size_t num_threads =
      dataset.paged() ? 1
                      : ThreadPool::ResolveThreadCount(config.num_threads);
  std::unique_ptr<ThreadPool> pool;
  if (num_threads > 1) pool = std::make_unique<ThreadPool>(num_threads);
  Builder builder{dataset, config, &tree, dataset.schema().num_classes(),
                  pool.get()};
  tree.set_root(builder.Build(rows, 0));
  if (config.prune) {
    PruneC45Tree(dataset, rows, config, &tree);
  }
  return tree;
}

}  // namespace pnr
