// Compiled block routing for C4.5 decision trees.
//
// DecisionTree::RouteToLeaf resolves each node's attribute kind through the
// schema on every visit of every row. CompiledTree flattens the tree into a
// self-contained node array — attribute kind, threshold and child links
// resolved at compile time, categorical child tables in one contiguous
// vector — and routes whole blocks of rows through it. Node indices are
// preserved, so a routed slot can be mapped through any per-node table
// (leaf scores, majority classes) built against the source tree.

#ifndef PNR_C45_COMPILED_TREE_H_
#define PNR_C45_COMPILED_TREE_H_

#include <cstdint>
#include <vector>

#include "c45/tree.h"

namespace pnr {

/// A DecisionTree compiled for batch routing. Immutable; safe to share
/// across threads.
class CompiledTree {
 public:
  CompiledTree() = default;

  /// Compiles `tree` against `schema` (resolves each split's attribute
  /// kind once).
  static CompiledTree Compile(const DecisionTree& tree, const Schema& schema);

  /// Writes the routed leaf's node index (same indices as the source
  /// tree's nodes()) to out[i] for each of rows[0..count). Identical to
  /// DecisionTree::RouteToLeaf per row. An empty tree writes -1.
  void RouteBlock(const Dataset& dataset, const RowId* rows, size_t count,
                  int32_t* out) const;

 private:
  struct FlatNode {
    bool is_leaf = true;
    bool is_numeric = false;
    AttrIndex attr = -1;
    double threshold = 0.0;
    int32_t largest_child = -1;
    int32_t child_low = -1;      ///< numeric: <= threshold branch
    int32_t child_high = -1;     ///< numeric: > threshold branch
    uint32_t cat_begin = 0;      ///< categorical: span into cat_children_
    uint32_t cat_count = 0;
  };

  /// A split attribute and its storage kind, for hoisting raw column
  /// pointers once per routed block instead of per row visit.
  struct UsedAttr {
    AttrIndex attr = -1;
    bool is_numeric = false;
  };

  std::vector<FlatNode> nodes_;
  std::vector<int32_t> cat_children_;
  std::vector<UsedAttr> used_attrs_;  ///< distinct split attributes
  uint32_t max_cat_fanout_ = 0;       ///< widest categorical split + 1
  int32_t root_ = -1;
};

}  // namespace pnr

#endif  // PNR_C45_COMPILED_TREE_H_
