// Binary-classifier adapter over a (multiclass) C4.5 tree — the paper's
// "C4.5" / "C4.5-we (tree model)" rows.

#ifndef PNR_C45_TREE_CLASSIFIER_H_
#define PNR_C45_TREE_CLASSIFIER_H_

#include <string>
#include <vector>

#include "c45/compiled_tree.h"
#include "c45/tree.h"
#include "eval/classifier.h"

namespace pnr {

/// Wraps a decision tree as a binary classifier for `target`.
class C45TreeClassifier : public BinaryClassifier {
 public:
  C45TreeClassifier(DecisionTree tree, CategoryId target);

  /// Laplace-smoothed probability of the target class at the routed leaf.
  double Score(const Dataset& dataset, RowId row) const override;

  /// C4.5 semantics: predict the majority class of the routed leaf.
  bool Predict(const Dataset& dataset, RowId row) const override;

  /// Compiled fast path: block routing through the flattened tree
  /// (c45/compiled_tree.h) plus a per-leaf score table. Bit-identical to
  /// Score per row.
  void ScoreBatch(const Dataset& dataset, const RowId* rows, size_t count,
                  double* out,
                  const BatchScoreOptions& options = {}) const override;

  /// Batched Predict with the same majority-leaf semantics (NOT a score
  /// threshold, so the default thresholding batch would be wrong here).
  void PredictBatch(const Dataset& dataset, const RowId* rows, size_t count,
                    uint8_t* out,
                    const BatchScoreOptions& options = {}) const override;

  std::string Describe(const Schema& schema) const override;

  const DecisionTree& tree() const { return tree_; }

 private:
  DecisionTree tree_;
  CategoryId target_;
  std::vector<double> node_score_;    ///< per-node target probability
  std::vector<uint8_t> node_positive_;  ///< per-node majority == target
};

/// Trains C4.5 tree classifiers.
class C45TreeLearner {
 public:
  explicit C45TreeLearner(C45Config config = {});

  const C45Config& config() const { return config_; }

  /// Builds a tree from all rows and wraps it for `target`.
  StatusOr<C45TreeClassifier> Train(const Dataset& dataset,
                                    CategoryId target) const;

  /// Builds from an explicit subset of rows.
  StatusOr<C45TreeClassifier> TrainOnRows(const Dataset& dataset,
                                          const RowSubset& rows,
                                          CategoryId target) const;

 private:
  C45Config config_;
};

}  // namespace pnr

#endif  // PNR_C45_TREE_CLASSIFIER_H_
