// C4.5rules (Quinlan 1993, ch. 5): rule extraction from an overfitted
// decision tree, per-rule generalization by pessimistic error, MDL-guided
// rule-subset selection per class, class ranking, and a default class.
//
// Documented simplifications vs. Quinlan's release (see DESIGN.md):
//   * subset selection is greedy backward elimination on the same
//     exception-coding DL objective (the release tries greedy hill-climbing
//     and falls back to simulated annealing);
//   * rules within a class group are ordered by ascending pessimistic error.

#ifndef PNR_C45_RULES_H_
#define PNR_C45_RULES_H_

#include <string>
#include <vector>

#include "c45/tree.h"
#include "eval/classifier.h"
#include "rules/compiled_rule_set.h"
#include "rules/rule.h"

namespace pnr {

/// C4.5rules parameters.
struct C45RulesConfig {
  /// Parameters for the initial (deliberately overfitted) tree. `prune` is
  /// ignored: the initial tree is always unpruned.
  C45Config tree;

  /// Confidence factor for the pessimistic error estimates used during rule
  /// generalization.
  double cf = 0.25;

  /// Safety cap on the number of initial rules (tree leaves).
  size_t max_initial_rules = 4096;

  Status Validate() const;
};

/// A trained C4.5rules model: a ranked decision list of (rule, class) pairs
/// with a default class.
class C45RulesClassifier : public BinaryClassifier {
 public:
  /// One ranked rule predicting `cls`; train_stats are with respect to
  /// `cls` over the full training set.
  struct ClassRule {
    Rule rule;
    CategoryId cls = 0;
  };

  C45RulesClassifier(std::vector<ClassRule> rules, CategoryId default_class,
                     CategoryId target, double default_target_score);

  /// First-matching-rule score: the rule's Laplace accuracy if it predicts
  /// the target class, (1 - accuracy) otherwise; the default class score
  /// when nothing matches.
  double Score(const Dataset& dataset, RowId row) const override;

  /// First-matching-rule class (default class when nothing matches)
  /// compared against the target.
  bool Predict(const Dataset& dataset, RowId row) const override;

  /// Compiled fast path: block-wise first match, then per-rule score /
  /// class tables. Bit-identical to the per-row calls.
  void ScoreBatch(const Dataset& dataset, const RowId* rows, size_t count,
                  double* out,
                  const BatchScoreOptions& options = {}) const override;

  /// Batched Predict (first-matching-rule class, NOT a score threshold).
  void PredictBatch(const Dataset& dataset, const RowId* rows, size_t count,
                    uint8_t* out,
                    const BatchScoreOptions& options = {}) const override;

  std::string Describe(const Schema& schema) const override;

  const std::vector<ClassRule>& rules() const { return rules_; }
  CategoryId default_class() const { return default_class_; }

 private:
  std::vector<ClassRule> rules_;
  CategoryId default_class_;
  CategoryId target_;
  double default_target_score_;
  CompiledRuleSet compiled_;           ///< matcher program for rules_
  std::vector<double> rule_scores_;    ///< per-rule target score
  std::vector<uint8_t> rule_positive_;  ///< per-rule class == target
};

/// Trains C4.5rules models.
class C45RulesLearner {
 public:
  explicit C45RulesLearner(C45RulesConfig config = {});

  const C45RulesConfig& config() const { return config_; }

  /// Learns from all rows of `dataset`, reporting for `target`.
  StatusOr<C45RulesClassifier> Train(const Dataset& dataset,
                                     CategoryId target) const;

  /// Learns from an explicit subset of rows.
  StatusOr<C45RulesClassifier> TrainOnRows(const Dataset& dataset,
                                           const RowSubset& rows,
                                           CategoryId target) const;

 private:
  C45RulesConfig config_;
};

/// Extracts one rule per leaf of `tree` (conditions along the path, with
/// same-attribute numeric bounds merged to the tightest). Exposed for
/// testing.
std::vector<C45RulesClassifier::ClassRule> ExtractTreeRules(
    const DecisionTree& tree, const Schema& schema, size_t max_rules);

}  // namespace pnr

#endif  // PNR_C45_RULES_H_
