// C4.5 decision-tree induction (Quinlan 1993), reimplemented from the
// published algorithm: gain-ratio split selection with the average-gain
// constraint, midpoint thresholds with Release-8's log2(d)/|D| penalty on
// continuous attributes, weighted examples, and minimum-branch constraints.

#ifndef PNR_C45_TREE_H_
#define PNR_C45_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace pnr {

/// C4.5 parameters (defaults mirror Quinlan's release defaults).
struct C45Config {
  /// Minimum weight of examples in at least two branches of any split
  /// (Quinlan's MINOBJS).
  double min_objs = 2.0;

  /// Confidence factor for pessimistic error estimates (pruning and
  /// C4.5rules generalization).
  double cf = 0.25;

  /// Select splits by gain ratio (true) or raw information gain (false).
  bool use_gain_ratio = true;

  /// Apply the Release-8 penalty log2(distinct - 1)/|D| to continuous
  /// attribute gains.
  bool numeric_gain_penalty = true;

  /// Prune the tree with pessimistic (confidence-limit) subtree
  /// replacement.
  bool prune = true;

  /// Safety cap on tree depth.
  size_t max_depth = 64;

  /// Threads used to evaluate candidate splits at each node: 1 = serial,
  /// 0 = hardware concurrency. Each attribute's candidate is computed in a
  /// private slot and the winner selected in attribute order, so any thread
  /// count builds the identical tree.
  size_t num_threads = 1;

  Status Validate() const;
};

/// One node of a decision tree. Numeric splits have exactly two children
/// (<= threshold, > threshold); categorical splits have one child per
/// category id.
struct TreeNode {
  bool is_leaf = true;
  AttrIndex attr = -1;       ///< split attribute (internal nodes)
  double threshold = 0.0;    ///< numeric split point
  std::vector<int32_t> children;  ///< node indices; -1 for empty branches
  int32_t largest_child = -1;     ///< fallback route for unseen values

  CategoryId predicted_class = 0;      ///< majority class at this node
  double total_weight = 0.0;           ///< training weight reaching the node
  std::vector<double> class_weights;   ///< per-class training weight

  /// Training weight not of the majority class.
  double error_weight() const {
    return total_weight - (predicted_class >= 0 &&
                                   static_cast<size_t>(predicted_class) <
                                       class_weights.size()
                               ? class_weights[static_cast<size_t>(
                                     predicted_class)]
                               : 0.0);
  }
};

/// A trained (multiclass) C4.5 decision tree.
class DecisionTree {
 public:
  DecisionTree() = default;

  /// Index of the leaf a record is routed to.
  int32_t RouteToLeaf(const Dataset& dataset, RowId row) const;

  /// Majority class of the routed leaf.
  CategoryId Classify(const Dataset& dataset, RowId row) const;

  /// Laplace-smoothed probability of `cls` at the routed leaf.
  double ClassProbability(const Dataset& dataset, RowId row,
                          CategoryId cls) const;

  const std::vector<TreeNode>& nodes() const { return nodes_; }
  std::vector<TreeNode>& mutable_nodes() { return nodes_; }
  int32_t root() const { return root_; }
  size_t num_classes() const { return num_classes_; }

  /// Number of leaves.
  size_t CountLeaves() const;

  /// Indented multi-line rendering.
  std::string ToString(const Schema& schema) const;

  // Internal: used by the builder and pruner.
  void set_root(int32_t root) { root_ = root; }
  void set_num_classes(size_t n) { num_classes_ = n; }
  int32_t AddNode(TreeNode node);

 private:
  std::vector<TreeNode> nodes_;
  int32_t root_ = -1;
  size_t num_classes_ = 0;
};

/// Builds a C4.5 tree from `rows` of `dataset` (all classes of the schema).
/// The tree is pruned per `config.prune`.
StatusOr<DecisionTree> BuildC45Tree(const Dataset& dataset,
                                    const RowSubset& rows,
                                    const C45Config& config);

}  // namespace pnr

#endif  // PNR_C45_TREE_H_
