#include "c45/prune.h"

#include "common/math_util.h"

namespace pnr {
namespace {

// Returns the pessimistic error estimate of the subtree rooted at `index`,
// replacing nodes with leaves where that is no worse.
double PruneRec(const C45Config& config, DecisionTree* tree, int32_t index) {
  TreeNode& node = tree->mutable_nodes()[static_cast<size_t>(index)];
  const double leaf_errors = PessimisticLeafErrors(node, config.cf);
  if (node.is_leaf) return leaf_errors;

  double subtree_errors = 0.0;
  for (int32_t child : node.children) {
    if (child >= 0) subtree_errors += PruneRec(config, tree, child);
  }
  // C4.5 replaces the subtree when the leaf estimate is within 0.1 errors
  // of the subtree estimate.
  if (leaf_errors <= subtree_errors + 0.1) {
    TreeNode& mutable_node =
        tree->mutable_nodes()[static_cast<size_t>(index)];
    mutable_node.is_leaf = true;
    mutable_node.children.clear();
    mutable_node.largest_child = -1;
    return leaf_errors;
  }
  return subtree_errors;
}

}  // namespace

double PessimisticLeafErrors(const TreeNode& node, double cf) {
  if (node.total_weight <= 0.0) return 0.0;
  return BinomialUpperLimit(node.total_weight, node.error_weight(), cf) *
         node.total_weight;
}

void PruneC45Tree(const Dataset& dataset, const RowSubset& rows,
                  const C45Config& config, DecisionTree* tree) {
  (void)dataset;  // Pruning uses the training statistics stored in nodes.
  (void)rows;
  if (tree->root() < 0) return;
  PruneRec(config, tree, tree->root());
}

}  // namespace pnr
