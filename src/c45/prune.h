// Pessimistic (confidence-limit) pruning of C4.5 trees.

#ifndef PNR_C45_PRUNE_H_
#define PNR_C45_PRUNE_H_

#include "c45/tree.h"

namespace pnr {

/// Upper-limit error estimate of a node treated as a leaf:
/// U_cf(total, errors) * total.
double PessimisticLeafErrors(const TreeNode& node, double cf);

/// Prunes `tree` bottom-up by subtree replacement: an internal node becomes
/// a leaf whenever its pessimistic leaf error does not exceed the sum of its
/// children's pessimistic errors (plus C4.5's 0.1 tolerance). Branch
/// raising is not implemented (documented simplification; see DESIGN.md).
void PruneC45Tree(const Dataset& dataset, const RowSubset& rows,
                  const C45Config& config, DecisionTree* tree);

}  // namespace pnr

#endif  // PNR_C45_PRUNE_H_
