#include "c45/tree_classifier.h"

namespace pnr {

C45TreeClassifier::C45TreeClassifier(DecisionTree tree, CategoryId target)
    : tree_(std::move(tree)), target_(target) {}

double C45TreeClassifier::Score(const Dataset& dataset, RowId row) const {
  return tree_.ClassProbability(dataset, row, target_);
}

bool C45TreeClassifier::Predict(const Dataset& dataset, RowId row) const {
  return tree_.Classify(dataset, row) == target_;
}

std::string C45TreeClassifier::Describe(const Schema& schema) const {
  return "C4.5 tree (" + std::to_string(tree_.CountLeaves()) +
         " leaves), target = " + schema.class_attr().CategoryName(target_) +
         "\n" + tree_.ToString(schema);
}

C45TreeLearner::C45TreeLearner(C45Config config)
    : config_(std::move(config)) {}

StatusOr<C45TreeClassifier> C45TreeLearner::Train(const Dataset& dataset,
                                                  CategoryId target) const {
  return TrainOnRows(dataset, dataset.AllRows(), target);
}

StatusOr<C45TreeClassifier> C45TreeLearner::TrainOnRows(
    const Dataset& dataset, const RowSubset& rows, CategoryId target) const {
  auto tree = BuildC45Tree(dataset, rows, config_);
  if (!tree.ok()) return tree.status();
  return C45TreeClassifier(std::move(tree).value(), target);
}

}  // namespace pnr
