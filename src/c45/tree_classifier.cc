#include "c45/tree_classifier.h"

#include <vector>

namespace pnr {

C45TreeClassifier::C45TreeClassifier(DecisionTree tree, CategoryId target)
    : tree_(std::move(tree)), target_(target) {
  // Per-node lookup tables indexed by routed node id: the Laplace target
  // probability and the majority-class vote, precomputed once so batch
  // scoring is a pure table lookup after routing. (The routing program
  // itself needs the schema for attribute kinds, so it is compiled per
  // batch call — linear in node count, negligible against a batch.)
  node_score_.reserve(tree_.nodes().size());
  node_positive_.reserve(tree_.nodes().size());
  const double k = static_cast<double>(tree_.num_classes());
  for (const TreeNode& node : tree_.nodes()) {
    const double cls_weight =
        target_ >= 0 &&
                static_cast<size_t>(target_) < node.class_weights.size()
            ? node.class_weights[static_cast<size_t>(target_)]
            : 0.0;
    node_score_.push_back((cls_weight + 1.0) / (node.total_weight + k));
    node_positive_.push_back(node.predicted_class == target_ ? 1 : 0);
  }
}

double C45TreeClassifier::Score(const Dataset& dataset, RowId row) const {
  return tree_.ClassProbability(dataset, row, target_);
}

bool C45TreeClassifier::Predict(const Dataset& dataset, RowId row) const {
  return tree_.Classify(dataset, row) == target_;
}

void C45TreeClassifier::ScoreBatch(const Dataset& dataset, const RowId* rows,
                                   size_t count, double* out,
                                   const BatchScoreOptions& options) const {
  const CompiledTree compiled = CompiledTree::Compile(tree_, dataset.schema());
  ForEachRowBlock(count, ClampOptionsForDataset(dataset, options),
                  [&](size_t begin, size_t end) {
    const size_t n = end - begin;
    std::vector<int32_t> leaves(n);
    compiled.RouteBlock(dataset, rows + begin, n, leaves.data());
    for (size_t i = 0; i < n; ++i) {
      out[begin + i] =
          leaves[i] < 0 ? 0.0 : node_score_[static_cast<size_t>(leaves[i])];
    }
  });
}

void C45TreeClassifier::PredictBatch(const Dataset& dataset,
                                     const RowId* rows, size_t count,
                                     uint8_t* out,
                                     const BatchScoreOptions& options) const {
  const CompiledTree compiled = CompiledTree::Compile(tree_, dataset.schema());
  ForEachRowBlock(count, ClampOptionsForDataset(dataset, options),
                  [&](size_t begin, size_t end) {
    const size_t n = end - begin;
    std::vector<int32_t> leaves(n);
    compiled.RouteBlock(dataset, rows + begin, n, leaves.data());
    for (size_t i = 0; i < n; ++i) {
      out[begin + i] =
          leaves[i] < 0 ? 0 : node_positive_[static_cast<size_t>(leaves[i])];
    }
  });
}

std::string C45TreeClassifier::Describe(const Schema& schema) const {
  return "C4.5 tree (" + std::to_string(tree_.CountLeaves()) +
         " leaves), target = " + schema.class_attr().CategoryName(target_) +
         "\n" + tree_.ToString(schema);
}

C45TreeLearner::C45TreeLearner(C45Config config)
    : config_(std::move(config)) {}

StatusOr<C45TreeClassifier> C45TreeLearner::Train(const Dataset& dataset,
                                                  CategoryId target) const {
  return TrainOnRows(dataset, dataset.AllRows(), target);
}

StatusOr<C45TreeClassifier> C45TreeLearner::TrainOnRows(
    const Dataset& dataset, const RowSubset& rows, CategoryId target) const {
  auto tree = BuildC45Tree(dataset, rows, config_);
  if (!tree.ok()) return tree.status();
  return C45TreeClassifier(std::move(tree).value(), target);
}

}  // namespace pnr
