#include "c45/rules.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "common/bitmask.h"
#include "common/math_util.h"
#include "common/string_util.h"
#include "induction/mdl.h"

namespace pnr {

Status C45RulesConfig::Validate() const {
  Status tree_status = tree.Validate();
  if (!tree_status.ok()) return tree_status;
  if (cf <= 0.0 || cf >= 1.0) {
    return Status::InvalidArgument("cf must be in (0, 1)");
  }
  if (max_initial_rules == 0) {
    return Status::InvalidArgument("max_initial_rules must be positive");
  }
  return Status::OK();
}

C45RulesClassifier::C45RulesClassifier(std::vector<ClassRule> rules,
                                       CategoryId default_class,
                                       CategoryId target,
                                       double default_target_score)
    : rules_(std::move(rules)),
      default_class_(default_class),
      target_(target),
      default_target_score_(default_target_score) {
  RuleSet flat;
  rule_scores_.reserve(rules_.size());
  rule_positive_.reserve(rules_.size());
  for (const ClassRule& entry : rules_) {
    flat.AddRule(entry.rule);
    const RuleStats& stats = entry.rule.train_stats;
    const double laplace = (stats.positive + 1.0) / (stats.covered + 2.0);
    rule_scores_.push_back(entry.cls == target_ ? laplace : 1.0 - laplace);
    rule_positive_.push_back(entry.cls == target_ ? 1 : 0);
  }
  compiled_ = CompiledRuleSet::Compile(flat);
}

double C45RulesClassifier::Score(const Dataset& dataset, RowId row) const {
  for (const ClassRule& entry : rules_) {
    if (!entry.rule.Matches(dataset, row)) continue;
    const RuleStats& stats = entry.rule.train_stats;
    const double laplace = (stats.positive + 1.0) / (stats.covered + 2.0);
    return entry.cls == target_ ? laplace : 1.0 - laplace;
  }
  return default_target_score_;
}

bool C45RulesClassifier::Predict(const Dataset& dataset, RowId row) const {
  for (const ClassRule& entry : rules_) {
    if (entry.rule.Matches(dataset, row)) return entry.cls == target_;
  }
  return default_class_ == target_;
}

void C45RulesClassifier::ScoreBatch(const Dataset& dataset, const RowId* rows,
                                    size_t count, double* out,
                                    const BatchScoreOptions& options) const {
  ForEachRowBlock(count, ClampOptionsForDataset(dataset, options),
                  [&](size_t begin, size_t end) {
    const size_t n = end - begin;
    // thread_local so consecutive blocks on a worker reuse the scratch
    // masks instead of reallocating them; scratch contents never affect
    // results, so reuse cannot perturb scores.
    thread_local CompiledRuleSet::Scratch scratch;
    thread_local std::vector<int32_t> first;
    first.resize(n);
    compiled_.FirstMatchBlock(dataset, rows + begin, n, first.data(),
                              &scratch);
    for (size_t i = 0; i < n; ++i) {
      out[begin + i] = first[i] == kNoRule
                           ? default_target_score_
                           : rule_scores_[static_cast<size_t>(first[i])];
    }
  });
}

void C45RulesClassifier::PredictBatch(const Dataset& dataset,
                                      const RowId* rows, size_t count,
                                      uint8_t* out,
                                      const BatchScoreOptions& options) const {
  const uint8_t default_positive = default_class_ == target_ ? 1 : 0;
  ForEachRowBlock(count, ClampOptionsForDataset(dataset, options),
                  [&](size_t begin, size_t end) {
    const size_t n = end - begin;
    thread_local CompiledRuleSet::Scratch scratch;
    thread_local std::vector<int32_t> first;
    first.resize(n);
    compiled_.FirstMatchBlock(dataset, rows + begin, n, first.data(),
                              &scratch);
    for (size_t i = 0; i < n; ++i) {
      out[begin + i] = first[i] == kNoRule
                           ? default_positive
                           : rule_positive_[static_cast<size_t>(first[i])];
    }
  });
}

std::string C45RulesClassifier::Describe(const Schema& schema) const {
  std::string out = "C4.5rules model\n";
  for (size_t i = 0; i < rules_.size(); ++i) {
    const ClassRule& entry = rules_[i];
    out += "[" + std::to_string(i) + "] IF " +
           entry.rule.ToString(schema) + " THEN class " +
           schema.class_attr().CategoryName(entry.cls) + "   (cov=" +
           FormatDouble(entry.rule.train_stats.covered, 1) + ", acc=" +
           FormatDouble(entry.rule.train_stats.accuracy(), 4) + ")\n";
  }
  out += "default: class " +
         schema.class_attr().CategoryName(default_class_) + "\n";
  return out;
}

std::vector<C45RulesClassifier::ClassRule> ExtractTreeRules(
    const DecisionTree& tree, const Schema& schema, size_t max_rules) {
  using ClassRule = C45RulesClassifier::ClassRule;
  std::vector<ClassRule> rules;
  if (tree.root() < 0) return rules;

  struct Frame {
    int32_t node;
    std::vector<Condition> path;
  };
  std::vector<Frame> stack = {{tree.root(), {}}};
  while (!stack.empty() && rules.size() < max_rules) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    const TreeNode& node = tree.nodes()[static_cast<size_t>(frame.node)];
    if (node.is_leaf) {
      if (node.total_weight <= 0.0) continue;
      ClassRule entry;
      entry.rule = Rule(frame.path);
      entry.cls = node.predicted_class;
      rules.push_back(std::move(entry));
      continue;
    }
    const Attribute& attr = schema.attribute(node.attr);
    if (attr.is_numeric()) {
      auto descend = [&](int32_t child, Condition condition) {
        if (child < 0) return;
        std::vector<Condition> path = frame.path;
        // Merge with an existing same-direction bound on this attribute:
        // keep the tighter one (paths revisit numeric attributes often).
        bool merged = false;
        for (Condition& existing : path) {
          if (existing.attr != condition.attr ||
              existing.op != condition.op) {
            continue;
          }
          if (condition.op == ConditionOp::kLessEqual) {
            existing.hi = std::min(existing.hi, condition.hi);
          } else {
            existing.lo = std::max(existing.lo, condition.lo);
          }
          merged = true;
          break;
        }
        if (!merged) path.push_back(condition);
        stack.push_back({child, std::move(path)});
      };
      descend(node.children[0],
              Condition::LessEqual(node.attr, node.threshold));
      descend(node.children[1],
              Condition::Greater(node.attr, node.threshold));
    } else {
      for (size_t c = 0; c < node.children.size(); ++c) {
        if (node.children[c] < 0) continue;
        std::vector<Condition> path = frame.path;
        path.push_back(
            Condition::CatEqual(node.attr, static_cast<CategoryId>(c)));
        stack.push_back({node.children[c], std::move(path)});
      }
    }
  }
  return rules;
}

namespace {

using ClassRule = C45RulesClassifier::ClassRule;

// Coverage counting that is popcount-fast for unit weights and falls back
// to set-bit iteration otherwise.
struct WeightCounter {
  const Dataset* dataset = nullptr;
  const RowSubset* rows = nullptr;  // mask bit i corresponds to (*rows)[i]
  bool unit_weights = true;

  double Weight(const BitMask& mask) const {
    if (unit_weights) return static_cast<double>(mask.Count());
    double total = 0.0;
    mask.ForEachSet([&](size_t i) { total += dataset->weight((*rows)[i]); });
    return total;
  }

  double WeightAnd(const BitMask& mask, const BitMask& other) const {
    if (unit_weights) return static_cast<double>(mask.CountAnd(other));
    double total = 0.0;
    mask.ForEachSet([&](size_t i) {
      if (other.Get(i)) total += dataset->weight((*rows)[i]);
    });
    return total;
  }

  double WeightAndNot(const BitMask& mask, const BitMask& other) const {
    if (unit_weights) return static_cast<double>(mask.CountAndNot(other));
    double total = 0.0;
    mask.ForEachSet([&](size_t i) {
      if (!other.Get(i)) total += dataset->weight((*rows)[i]);
    });
    return total;
  }
};

BitMask ConditionMask(const Dataset& dataset, const RowSubset& rows,
                      const Condition& condition) {
  BitMask mask(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    if (condition.Matches(dataset, rows[i])) mask.Set(i);
  }
  return mask;
}

// Pessimistic error rate of a rule covering `cov` weight with `err` of it
// wrong. Empty coverage is maximally pessimistic.
double PessimisticErrorRate(double cov, double err, double cf) {
  if (cov <= 0.0) return 1.0;
  return BinomialUpperLimit(cov, std::min(err, cov), cf);
}

// Greedy generalization (Quinlan ch. 5): repeatedly delete the condition
// whose removal minimizes the rule's pessimistic error rate, while that
// does not exceed the current rule's rate.
void GeneralizeRule(const Dataset& dataset, const RowSubset& rows,
                    const WeightCounter& counter, const BitMask& class_mask,
                    double cf, Rule* rule) {
  std::vector<BitMask> masks;
  masks.reserve(rule->size());
  for (const Condition& condition : rule->conditions()) {
    masks.push_back(ConditionMask(dataset, rows, condition));
  }

  while (!masks.empty()) {
    const size_t k = masks.size();
    // Prefix/suffix ANDs let each single-deletion coverage be computed in
    // one block-wise AND.
    std::vector<BitMask> prefix(k + 1);
    std::vector<BitMask> suffix(k + 1);
    prefix[0] = BitMask(rows.size(), true);
    suffix[k] = BitMask(rows.size(), true);
    for (size_t i = 0; i < k; ++i) prefix[i + 1] = prefix[i] & masks[i];
    for (size_t i = k; i-- > 0;) suffix[i] = suffix[i + 1] & masks[i];

    const BitMask& current = prefix[k];
    const double current_cov = counter.Weight(current);
    const double current_err = counter.WeightAndNot(current, class_mask);
    const double current_rate =
        PessimisticErrorRate(current_cov, current_err, cf);

    double best_rate = std::numeric_limits<double>::infinity();
    size_t best_index = k;
    for (size_t j = 0; j < k; ++j) {
      const BitMask without = prefix[j] & suffix[j + 1];
      const double cov = counter.Weight(without);
      const double err = counter.WeightAndNot(without, class_mask);
      const double rate = PessimisticErrorRate(cov, err, cf);
      if (rate < best_rate) {
        best_rate = rate;
        best_index = j;
      }
    }
    if (best_index == k || best_rate > current_rate) break;
    rule->RemoveCondition(best_index);
    masks.erase(masks.begin() + static_cast<std::ptrdiff_t>(best_index));
  }
}

// Greedy backward MDL subset selection for one class's rules. Returns the
// indices (into `rules`) of the kept subset and the subset's aggregate
// false-positive weight (for class ranking).
struct SubsetResult {
  std::vector<size_t> kept;
  double false_positive_weight = 0.0;
};

SubsetResult SelectRuleSubset(const Dataset& dataset, const RowSubset& rows,
                              const WeightCounter& counter,
                              const BitMask& class_mask,
                              const std::vector<const Rule*>& rules,
                              const std::vector<BitMask>& coverage,
                              double possible_conditions) {
  const size_t n = rules.size();
  std::vector<bool> included(n, true);

  // Per-row cover counts and aggregate exception statistics.
  std::vector<uint32_t> cover_count(rows.size(), 0);
  for (size_t r = 0; r < n; ++r) {
    coverage[r].ForEachSet([&](size_t i) { ++cover_count[i]; });
  }
  double cover_w = 0.0;
  double fp_w = 0.0;
  double total_w = 0.0;
  double class_w = 0.0;
  double covered_class_w = 0.0;
  for (size_t i = 0; i < rows.size(); ++i) {
    const double w = counter.unit_weights ? 1.0 : dataset.weight(rows[i]);
    total_w += w;
    const bool in_class = class_mask.Get(i);
    if (in_class) class_w += w;
    if (cover_count[i] > 0) {
      cover_w += w;
      if (in_class) {
        covered_class_w += w;
      } else {
        fp_w += w;
      }
    }
  }
  double fn_w = class_w - covered_class_w;
  double theory = 0.0;
  for (size_t r = 0; r < n; ++r) {
    theory += RuleTheoryBits(rules[r]->size(), possible_conditions);
  }

  auto total_dl = [&](double th, double cov, double fp, double fn) {
    return th + ExceptionBits(0.5, cov, total_w - cov, fp, fn);
  };
  double current_dl = total_dl(theory, cover_w, fp_w, fn_w);

  for (;;) {
    double best_dl = current_dl;
    size_t best_rule = n;
    double best_cov = 0.0, best_fp = 0.0, best_fn = 0.0, best_theory = 0.0;
    for (size_t r = 0; r < n; ++r) {
      if (!included[r]) continue;
      // Rows covered only by rule r become uncovered if r is removed.
      double cov = cover_w;
      double fp = fp_w;
      double fn = fn_w;
      coverage[r].ForEachSet([&](size_t i) {
        if (cover_count[i] != 1) return;
        const double w =
            counter.unit_weights ? 1.0 : dataset.weight(rows[i]);
        cov -= w;
        if (class_mask.Get(i)) {
          fn += w;
        } else {
          fp -= w;
        }
      });
      const double th =
          theory - RuleTheoryBits(rules[r]->size(), possible_conditions);
      const double dl = total_dl(th, cov, fp, fn);
      if (dl < best_dl) {
        best_dl = dl;
        best_rule = r;
        best_cov = cov;
        best_fp = fp;
        best_fn = fn;
        best_theory = th;
      }
    }
    if (best_rule == n) break;
    included[best_rule] = false;
    coverage[best_rule].ForEachSet([&](size_t i) { --cover_count[i]; });
    cover_w = best_cov;
    fp_w = best_fp;
    fn_w = best_fn;
    theory = best_theory;
    current_dl = best_dl;
  }

  SubsetResult result;
  for (size_t r = 0; r < n; ++r) {
    if (included[r]) result.kept.push_back(r);
  }
  result.false_positive_weight = fp_w;
  return result;
}

}  // namespace

C45RulesLearner::C45RulesLearner(C45RulesConfig config)
    : config_(std::move(config)) {}

StatusOr<C45RulesClassifier> C45RulesLearner::Train(const Dataset& dataset,
                                                    CategoryId target) const {
  return TrainOnRows(dataset, dataset.AllRows(), target);
}

StatusOr<C45RulesClassifier> C45RulesLearner::TrainOnRows(
    const Dataset& dataset, const RowSubset& rows, CategoryId target) const {
  Status status = config_.Validate();
  if (!status.ok()) return status;

  // Step 1: overfitted tree.
  C45Config tree_config = config_.tree;
  tree_config.prune = false;
  auto tree = BuildC45Tree(dataset, rows, tree_config);
  if (!tree.ok()) return tree.status();

  // Step 2: one rule per leaf.
  std::vector<ClassRule> initial = ExtractTreeRules(
      *tree, dataset.schema(), config_.max_initial_rules);

  WeightCounter counter;
  counter.dataset = &dataset;
  counter.rows = &rows;
  counter.unit_weights = true;
  for (RowId row : rows) {
    if (dataset.weight(row) != 1.0) {
      counter.unit_weights = false;
      break;
    }
  }

  const size_t num_classes = dataset.schema().num_classes();
  std::vector<BitMask> class_masks(num_classes, BitMask(rows.size()));
  for (size_t i = 0; i < rows.size(); ++i) {
    class_masks[static_cast<size_t>(dataset.label(rows[i]))].Set(i);
  }

  // Step 3: generalize each rule against the full training rows.
  for (ClassRule& entry : initial) {
    GeneralizeRule(dataset, rows, counter,
                   class_masks[static_cast<size_t>(entry.cls)], config_.cf,
                   &entry.rule);
  }

  // Step 4: drop empties and duplicates.
  std::vector<ClassRule> unique;
  for (ClassRule& entry : initial) {
    if (entry.rule.empty()) continue;
    bool duplicate = false;
    for (const ClassRule& seen : unique) {
      if (seen.cls == entry.cls && seen.rule == entry.rule) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) unique.push_back(std::move(entry));
  }

  // Step 5: per-class MDL subset selection.
  const double possible_conditions = CountPossibleConditions(dataset);
  struct ClassGroup {
    CategoryId cls;
    std::vector<ClassRule> rules;
    double false_positive_weight = 0.0;
  };
  std::vector<ClassGroup> groups;
  for (size_t cls = 0; cls < num_classes; ++cls) {
    std::vector<const Rule*> class_rules;
    std::vector<size_t> source;
    for (size_t i = 0; i < unique.size(); ++i) {
      if (unique[i].cls == static_cast<CategoryId>(cls)) {
        class_rules.push_back(&unique[i].rule);
        source.push_back(i);
      }
    }
    if (class_rules.empty()) continue;
    std::vector<BitMask> coverage;
    coverage.reserve(class_rules.size());
    for (const Rule* rule : class_rules) {
      BitMask mask(rows.size(), true);
      for (const Condition& condition : rule->conditions()) {
        mask &= ConditionMask(dataset, rows, condition);
      }
      coverage.push_back(std::move(mask));
    }
    SubsetResult subset =
        SelectRuleSubset(dataset, rows, counter, class_masks[cls],
                         class_rules, coverage, possible_conditions);
    ClassGroup group;
    group.cls = static_cast<CategoryId>(cls);
    group.false_positive_weight = subset.false_positive_weight;
    for (size_t kept : subset.kept) {
      group.rules.push_back(unique[source[kept]]);
    }
    if (!group.rules.empty()) groups.push_back(std::move(group));
  }

  // Step 6: rank class groups by ascending false positives; within a group,
  // rules by ascending pessimistic error.
  std::stable_sort(groups.begin(), groups.end(),
                   [](const ClassGroup& a, const ClassGroup& b) {
                     return a.false_positive_weight <
                            b.false_positive_weight;
                   });
  std::vector<ClassRule> ordered;
  for (ClassGroup& group : groups) {
    for (ClassRule& entry : group.rules) {
      entry.rule.train_stats = entry.rule.Evaluate(dataset, rows, entry.cls);
    }
    std::stable_sort(
        group.rules.begin(), group.rules.end(),
        [&](const ClassRule& a, const ClassRule& b) {
          const RuleStats& sa = a.rule.train_stats;
          const RuleStats& sb = b.rule.train_stats;
          return PessimisticErrorRate(sa.covered, sa.negative(), config_.cf) <
                 PessimisticErrorRate(sb.covered, sb.negative(), config_.cf);
        });
    for (ClassRule& entry : group.rules) {
      ordered.push_back(std::move(entry));
    }
  }

  // Step 7: default class = majority among records no rule covers.
  std::vector<double> uncovered_weight(num_classes, 0.0);
  double uncovered_target = 0.0;
  double uncovered_total = 0.0;
  for (RowId row : rows) {
    bool covered = false;
    for (const ClassRule& entry : ordered) {
      if (entry.rule.Matches(dataset, row)) {
        covered = true;
        break;
      }
    }
    if (covered) continue;
    const double w = dataset.weight(row);
    uncovered_weight[static_cast<size_t>(dataset.label(row))] += w;
    uncovered_total += w;
    if (dataset.label(row) == target) uncovered_target += w;
  }
  CategoryId default_class = target == 0 ? 1 : 0;  // fallback: not-target
  double best_weight = -1.0;
  for (size_t cls = 0; cls < num_classes; ++cls) {
    if (uncovered_weight[cls] > best_weight) {
      best_weight = uncovered_weight[cls];
      default_class = static_cast<CategoryId>(cls);
    }
  }
  const double default_target_score =
      (uncovered_target + 1.0) / (uncovered_total + 2.0);

  return C45RulesClassifier(std::move(ordered), default_class, target,
                            default_target_score);
}

}  // namespace pnr
