// Rare-item-aware frequent-itemset mining and class-association-rule
// generation over the columnar Dataset.
//
// Items are (attribute, value-bucket) pairs: every category of a
// categorical attribute is an item, every discretizer bin of a numeric
// attribute is an item (see assoc/discretize.h). The miner works on a
// vertical encoding — one coverage BitMask per item over the mined rows —
// so the support of a candidate itemset is a word-parallel AND + popcount,
// and the per-class supports are popcounts against the class masks.
//
// The frequency criterion is the rare-class-aware OR of Ndour et al. /
// Apriori_Goal (PAPERS.md): an itemset is kept when its global support
// clears `min_support` OR its support *within some class c* clears
// `per_class_min_support` of that class's rows. Both disjuncts are
// anti-monotone, so their OR is too and Apriori pruning stays sound —
// while an itemset that only ever appears in a 0.1% rare class survives a
// global floor it could never meet.
//
// Determinism: candidate generation is a pure function of the (ordered)
// frequent list; support counting fans candidate chunks over a ThreadPool
// but each candidate writes only its own slot and the frequent list is
// assembled by a serial in-order sweep, so the mined output is
// byte-identical at any thread count (the repo-wide contract).

#ifndef PNR_ASSOC_MINER_H_
#define PNR_ASSOC_MINER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "assoc/discretize.h"
#include "common/bitmask.h"
#include "common/status.h"
#include "data/dataset.h"
#include "rules/rule.h"

namespace pnr {

/// One minable item: a single-attribute value test.
struct Item {
  AttrIndex attr = -1;
  CategoryId category = kInvalidCategory;  ///< categorical items
  int32_t bin = -1;                        ///< numeric items (discretizer bin)

  bool is_categorical() const { return category != kInvalidCategory; }
};

/// The fixed, schema-ordered universe of items for one mining run:
/// attributes in schema order; within an attribute, categories in id order
/// or bins in ascending order. Item ids index VerticalIndex::item_rows.
class ItemCatalog {
 public:
  /// Enumerates the item universe for `schema` under `discretizer`'s cuts.
  /// Attributes with no usable bucketing (constant/all-missing numerics)
  /// contribute no items.
  static ItemCatalog Build(const Schema& schema,
                           const Discretizer& discretizer);

  size_t size() const { return items_.size(); }
  const Item& item(int32_t id) const { return items_[static_cast<size_t>(id)]; }

  /// True when `attr` contributes at least one item.
  bool AttrHasItems(AttrIndex attr) const {
    return attr_base_[static_cast<size_t>(attr)] >= 0;
  }

  /// Item id of a categorical cell, or -1 for kInvalidCategory (missing).
  int32_t CategoricalItem(AttrIndex attr, CategoryId value) const;

  /// Item id of a numeric cell under `discretizer`, or -1 for NaN / an
  /// attribute with no bins.
  int32_t NumericItem(AttrIndex attr, double value,
                      const Discretizer& discretizer) const;

  /// Appends the condition(s) testing `id` to `rule` (1 condition for a
  /// categorical item or an extreme bin, 2 for an interior bin).
  void AppendConditions(int32_t id, const Discretizer& discretizer,
                        Rule* rule) const;

  /// "attr=value" / "attr in bin k" (diagnostics and tests).
  std::string ToString(int32_t id, const Schema& schema,
                       const Discretizer& discretizer) const;

 private:
  std::vector<Item> items_;
  std::vector<int32_t> attr_base_;  ///< first item id per attribute (-1 none)
};

/// Vertical (item -> covered rows) encoding of a row subset, plus the class
/// masks the per-class supports are counted against. Bit i corresponds to
/// rows[i] of the subset the index was built from.
struct VerticalIndex {
  size_t num_rows = 0;
  std::vector<BitMask> item_rows;      ///< catalog.size() masks
  std::vector<AttrIndex> item_attr;    ///< per item: its attribute
  std::vector<BitMask> class_rows;     ///< schema.num_classes() masks
  std::vector<uint64_t> class_counts;  ///< rows per class

  /// Builds the index, fanning the per-attribute column scans over
  /// `num_threads` workers (each attribute's items are disjoint, and each
  /// scan pins its column so demand-paged datasets cannot evict mid-walk).
  static VerticalIndex Build(const Dataset& dataset, const RowSubset& rows,
                             const ItemCatalog& catalog,
                             const Discretizer& discretizer,
                             size_t num_threads);
};

/// Knobs for frequent-itemset mining and CAR generation.
struct AssocMineOptions {
  /// Global minimum support as a fraction of the mined rows.
  double min_support = 0.01;

  /// Rare-class rescue floor: an itemset also counts as frequent when its
  /// support within some class reaches this fraction of that class's rows.
  /// 0 disables the per-class criterion (plain Apriori).
  double per_class_min_support = 0.05;

  /// Minimum confidence P(class | antecedent) of an emitted rule.
  double min_confidence = 0.5;

  /// Minimum lift confidence / P(class) of an emitted rule. 1.0 demands
  /// the antecedent beats the class prior at all.
  double min_lift = 1.0;

  /// Maximum antecedent length (items per rule).
  size_t max_len = 3;

  /// Hard cap on candidates per Apriori level; exceeding it is an error
  /// (raise the support floors) rather than an unbounded allocation.
  size_t max_candidates = 2'000'000;

  /// Worker threads for support counting and index building (0 = auto).
  size_t num_threads = 1;

  /// Numeric discretization knobs.
  DiscretizeOptions discretize;

  /// Invalid-argument error when any knob is out of range.
  Status Validate() const;
};

/// A frequent itemset with its global and per-class supports (unweighted
/// row counts — integer counts keep parallel reduction order-free).
struct FrequentItemset {
  std::vector<int32_t> items;  ///< ascending item ids, distinct attributes
  uint64_t support = 0;
  std::vector<uint64_t> class_support;
};

/// A class association rule "antecedent items => cls" before selection.
struct CandidateRule {
  std::vector<int32_t> items;
  CategoryId cls = kInvalidCategory;
  uint64_t support = 0;        ///< antecedent coverage
  uint64_t class_support = 0;  ///< antecedent AND class
  double confidence = 0.0;     ///< class_support / support
  double lift = 0.0;           ///< confidence / class prior
};

/// Mining-run counters for reports and tests.
struct MineStats {
  size_t num_items = 0;
  size_t discretized_attrs = 0;      ///< numeric attrs that produced bins
  size_t candidates_generated = 0;   ///< all levels
  size_t frequent_itemsets = 0;
  size_t rules_generated = 0;        ///< CARs passing conf/lift pruning
  size_t rules_selected = 0;         ///< after CBA coverage selection
  size_t itemsets_rescued = 0;  ///< frequent only via the per-class floor
};

/// Levelwise Apriori over the vertical index. The result is ordered
/// lexicographically by item ids within each level, levels ascending.
StatusOr<std::vector<FrequentItemset>> MineFrequentItemsets(
    const VerticalIndex& index, const AssocMineOptions& options,
    MineStats* stats);

/// Emits every CAR passing the confidence / lift / per-class-frequency
/// tests, in frequent-list order x class-id order (deterministic).
std::vector<CandidateRule> GenerateRules(
    const std::vector<FrequentItemset>& frequent, const VerticalIndex& index,
    const AssocMineOptions& options, MineStats* stats);

}  // namespace pnr

#endif  // PNR_ASSOC_MINER_H_
