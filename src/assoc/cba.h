// CBA-style rule selection: precedence-ordered database coverage (the M1
// algorithm of Liu, Hsu & Ma's CBA) over mined class association rules,
// plus the one-call facade the CLI / tuner / tests mine through.
//
// Selection walks the CARs in total precedence order (confidence desc,
// support desc, shorter antecedent first, then a lexicographic tie-break so
// the order is a pure function of the rule list). A rule is kept when it
// covers at least one still-uncovered training row; its covered rows are
// then removed. After each kept rule the would-be default class (majority
// of the uncovered remainder) and the total error of "this prefix + that
// default" are recorded; the final model is the shortest prefix with
// minimal total error — exactly CBA's error-driven list cut, including the
// empty prefix (a pure default model) when no rule helps.

#ifndef PNR_ASSOC_CBA_H_
#define PNR_ASSOC_CBA_H_

#include <vector>

#include "assoc/classifier.h"
#include "assoc/discretize.h"
#include "assoc/miner.h"
#include "common/status.h"
#include "data/dataset.h"

namespace pnr {

/// Sorts `rules` into CBA precedence order (in place): confidence desc,
/// class_support desc, antecedent length asc, items lexicographic asc,
/// class id asc. Deterministic for any input order.
void SortByPrecedence(std::vector<CandidateRule>* rules);

/// Database-coverage selection over precedence-sorted CARs, producing the
/// final classifier bound to `target`. `index` must be the vertical index
/// the rules were mined from.
AssocClassifier SelectCbaRules(std::vector<CandidateRule> rules,
                               const VerticalIndex& index,
                               const ItemCatalog& catalog,
                               const Discretizer& discretizer,
                               CategoryId target, MineStats* stats);

/// Everything MineCba learned, bundled for reports.
struct AssocMineResult {
  AssocClassifier model;
  MineStats stats;
};

/// The full pipeline: discretize -> build the item catalog and vertical
/// index -> mine frequent itemsets -> generate CARs -> CBA coverage
/// selection. Deterministic for any `options.num_threads`.
StatusOr<AssocMineResult> MineCba(const Dataset& dataset,
                                  const RowSubset& rows, CategoryId target,
                                  const AssocMineOptions& options);

}  // namespace pnr

#endif  // PNR_ASSOC_CBA_H_
