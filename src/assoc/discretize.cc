#include "assoc/discretize.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>
#include <utility>

#include "common/math_util.h"
#include "rules/condition.h"

namespace pnr {
namespace {

// One (value, label) observation; sorted by value (label breaks ties so the
// order — and therefore everything downstream — is a pure function of the
// data).
struct Obs {
  double value = 0.0;
  CategoryId label = 0;
};

// Class counts of rows with value <= cut, one snapshot per candidate cut.
// counts[i] covers candidates[0..i]; snapshot differencing gives the class
// histogram of any (cut_a, cut_b] slice in O(num_classes).
struct PrefixCounts {
  std::vector<std::vector<uint64_t>> at;  // per candidate: per-class count
  std::vector<uint64_t> total;            // all rows: per-class count
};

double Entropy(const std::vector<uint64_t>& counts, uint64_t n) {
  if (n == 0) return 0.0;
  double h = 0.0;
  const double dn = static_cast<double>(n);
  for (const uint64_t c : counts) {
    h -= XLog2X(static_cast<double>(c) / dn);
  }
  return h;
}

uint64_t Sum(const std::vector<uint64_t>& counts) {
  uint64_t n = 0;
  for (const uint64_t c : counts) n += c;
  return n;
}

// A contiguous candidate-index range [lo, hi] delimiting rows
// (candidates[lo-1], candidates[hi]] — the unit of recursive partitioning.
// `left_base` is the per-class prefix just below the range.
struct Range {
  size_t lo = 0;  // first selectable candidate index
  size_t hi = 0;  // one past the last selectable candidate index
};

// Best split of `range`: the candidate cut maximizing information gain of
// the induced 2-partition. Returns gain < 0 when no candidate splits the
// range into two non-empty sides.
struct Split {
  double gain = -1.0;
  size_t candidate = 0;
};

Split BestSplit(const PrefixCounts& prefix, const std::vector<uint64_t>& below,
                const std::vector<uint64_t>& upto, const Range& range) {
  // `below`: class counts strictly below the range; `upto`: class counts up
  // to and including the range (rows <= candidates[range.hi - 1]... the
  // range's full slice). Gain is evaluated against that slice.
  const size_t num_classes = below.size();
  std::vector<uint64_t> slice(num_classes);
  for (size_t c = 0; c < num_classes; ++c) slice[c] = upto[c] - below[c];
  const uint64_t n = Sum(slice);
  if (n == 0) return {};
  const double h_all = Entropy(slice, n);
  Split best;
  std::vector<uint64_t> left(num_classes);
  std::vector<uint64_t> right(num_classes);
  for (size_t i = range.lo; i < range.hi; ++i) {
    uint64_t nl = 0;
    for (size_t c = 0; c < num_classes; ++c) {
      left[c] = prefix.at[i][c] - below[c];
      right[c] = slice[c] - left[c];
      nl += left[c];
    }
    const uint64_t nr = n - nl;
    if (nl == 0 || nr == 0) continue;
    const double gain = h_all -
                        (static_cast<double>(nl) / n) * Entropy(left, nl) -
                        (static_cast<double>(nr) / n) * Entropy(right, nr);
    // Strict > keeps the first (lowest-index) best candidate on ties, so
    // selection is deterministic.
    if (gain > best.gain) {
      best.gain = gain;
      best.candidate = i;
    }
  }
  return best;
}

// Supervised best-first selection: repeatedly take the candidate cut with
// the highest information gain anywhere, until max_bins - 1 cuts are chosen
// or no remaining split reduces impurity.
std::vector<double> SelectSupervised(const std::vector<double>& candidates,
                                     const PrefixCounts& prefix,
                                     size_t max_bins, size_t num_classes) {
  struct HeapEntry {
    double gain;
    size_t candidate;
    Range range;
    // Deterministic order: higher gain first, then lower range start.
    bool operator<(const HeapEntry& other) const {
      if (gain != other.gain) return gain < other.gain;
      return range.lo > other.range.lo;
    }
  };

  const std::vector<uint64_t> zero(num_classes, 0);
  auto upto_of = [&](size_t hi) -> const std::vector<uint64_t>& {
    return hi == candidates.size() ? prefix.total : prefix.at[hi];
  };
  // The full range spans all candidates; below it is the empty prefix and
  // above it the whole sample (rows past the last candidate included).
  std::priority_queue<HeapEntry> heap;
  auto push_range = [&](const Range& range, const std::vector<uint64_t>& below) {
    if (range.lo >= range.hi) return;
    const Split split = BestSplit(prefix, below, upto_of(range.hi), range);
    if (split.gain > 1e-12) heap.push({split.gain, split.candidate, range});
  };
  push_range({0, candidates.size()}, zero);

  std::vector<size_t> chosen;
  while (!heap.empty() && chosen.size() + 1 < max_bins) {
    const HeapEntry top = heap.top();
    heap.pop();
    chosen.push_back(top.candidate);
    const std::vector<uint64_t>& below =
        top.range.lo == 0 ? zero : prefix.at[top.range.lo - 1];
    push_range({top.range.lo, top.candidate}, below);
    push_range({top.candidate + 1, top.range.hi}, prefix.at[top.candidate]);
  }
  std::sort(chosen.begin(), chosen.end());
  std::vector<double> cuts;
  cuts.reserve(chosen.size());
  for (const size_t i : chosen) cuts.push_back(candidates[i]);
  return cuts;
}

std::vector<double> FitAttribute(std::vector<Obs> obs,
                                 const DiscretizeOptions& options,
                                 size_t num_classes) {
  // obs holds only non-NaN cells; fewer than 2 rows (all-missing or nearly
  // empty column) cannot support a boundary.
  if (obs.size() < 2) return {};
  std::sort(obs.begin(), obs.end(), [](const Obs& a, const Obs& b) {
    if (a.value != b.value) return a.value < b.value;
    return a.label < b.label;
  });
  const double lo = obs.front().value;
  const double hi = obs.back().value;
  if (lo == hi) return {};  // constant column: no boundary exists

  // Equi-depth candidate boundaries (the shared stream-histogram rule),
  // deduplicated and clamped below the maximum so every bin keeps at least
  // one sample row on each side of some cut.
  std::vector<double> values;
  values.reserve(obs.size());
  for (const Obs& o : obs) values.push_back(o.value);
  std::vector<double> candidates =
      EquiDepthEdges(values, std::max(options.candidate_bins, options.max_bins));
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  while (!candidates.empty() && candidates.back() >= hi) candidates.pop_back();
  if (candidates.empty()) return {};

  if (!options.supervised) {
    std::vector<double> cuts = EquiDepthEdges(values, options.max_bins);
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
    while (!cuts.empty() && cuts.back() >= hi) cuts.pop_back();
    return cuts;
  }

  // Per-candidate class-count prefixes in one merged walk over the sorted
  // observations.
  PrefixCounts prefix;
  prefix.at.assign(candidates.size(), std::vector<uint64_t>(num_classes, 0));
  std::vector<uint64_t> running(num_classes, 0);
  size_t next = 0;
  for (const Obs& o : obs) {
    while (next < candidates.size() && o.value > candidates[next]) {
      prefix.at[next] = running;
      ++next;
    }
    ++running[static_cast<size_t>(o.label)];
  }
  while (next < candidates.size()) {
    prefix.at[next] = running;
    ++next;
  }
  prefix.total = running;

  return SelectSupervised(candidates, prefix, options.max_bins, num_classes);
}

}  // namespace

Status DiscretizeOptions::Validate() const {
  if (max_bins < 2) {
    return Status::InvalidArgument("discretizer max_bins must be >= 2 (got " +
                                   std::to_string(max_bins) + ")");
  }
  if (candidate_bins < 2) {
    return Status::InvalidArgument(
        "discretizer candidate_bins must be >= 2 (got " +
        std::to_string(candidate_bins) + ")");
  }
  return Status::OK();
}

StatusOr<Discretizer> Discretizer::Fit(const Dataset& dataset,
                                       const RowSubset& rows,
                                       const DiscretizeOptions& options) {
  Status status = options.Validate();
  if (!status.ok()) return status;
  const Schema& schema = dataset.schema();
  const size_t num_classes = std::max<size_t>(schema.num_classes(), 1);
  Discretizer out;
  out.cuts_.resize(schema.num_attributes());
  for (AttrIndex a = 0; a < static_cast<AttrIndex>(schema.num_attributes());
       ++a) {
    if (!schema.attribute(a).is_numeric()) continue;
    // Pin the column while scanning so a demand-paged dataset cannot evict
    // it mid-walk.
    const Dataset::ColumnPin pin = dataset.PinColumn(a);
    std::vector<Obs> obs;
    obs.reserve(rows.size());
    for (const RowId row : rows) {
      const double value = dataset.numeric(row, a);
      if (std::isnan(value)) continue;  // missing: never a cut candidate
      obs.push_back({value, dataset.label(row)});
    }
    out.cuts_[static_cast<size_t>(a)] =
        FitAttribute(std::move(obs), options, num_classes);
  }
  return out;
}

int Discretizer::BinOf(AttrIndex attr, double value) const {
  const std::vector<double>& c = cuts_[static_cast<size_t>(attr)];
  if (c.empty() || std::isnan(value)) return -1;
  // Bins are upper-closed — bin i is (c[i-1], c[i]] — so a value equal to a
  // cut belongs to the bin *below*: count the cuts strictly less than it
  // (lower_bound). upper_bound would disagree with the LessEqual condition
  // AppendBinConditions emits exactly at the cut values.
  return static_cast<int>(std::lower_bound(c.begin(), c.end(), value) -
                          c.begin());
}

void Discretizer::AppendBinConditions(AttrIndex attr, int bin,
                                      Rule* rule) const {
  const std::vector<double>& c = cuts_[static_cast<size_t>(attr)];
  assert(!c.empty() && bin >= 0 &&
         static_cast<size_t>(bin) <= c.size());
  // Upper-closed intervals. An interior bin is Greater + LessEqual (NOT
  // kInRange, which is closed on both ends and would disagree with BinOf at
  // the lower boundary).
  if (bin > 0) rule->AddCondition(Condition::Greater(attr, c[bin - 1]));
  if (static_cast<size_t>(bin) < c.size()) {
    rule->AddCondition(Condition::LessEqual(attr, c[bin]));
  }
}

}  // namespace pnr
