#include "assoc/classifier.h"

#include <cassert>
#include <sstream>

namespace pnr {

AssocClassifier::AssocClassifier(RuleSet rules, std::vector<RuleInfo> info,
                                 CategoryId target, CategoryId default_class,
                                 double default_score)
    : rules_(std::move(rules)),
      compiled_(CompiledRuleSet::Compile(rules_)),
      info_(std::move(info)),
      target_(target),
      default_class_(default_class),
      default_score_(default_score) {
  assert(info_.size() == rules_.size());
}

double AssocClassifier::Score(const Dataset& dataset, RowId row) const {
  const int match = rules_.FirstMatch(dataset, row);
  if (match == kNoRule) return default_score_;
  return info_[static_cast<size_t>(match)].target_score;
}

void AssocClassifier::ScoreBatch(const Dataset& dataset, const RowId* rows,
                                 size_t count, double* out,
                                 const BatchScoreOptions& options) const {
  ForEachRowBlock(count, ClampOptionsForDataset(dataset, options),
                  [&](size_t begin, size_t end) {
                    const size_t n = end - begin;
                    // thread_local so consecutive blocks on a worker reuse
                    // the scratch masks; scratch contents never affect
                    // results, so reuse cannot perturb scores.
                    thread_local CompiledRuleSet::Scratch scratch;
                    thread_local std::vector<int32_t> first;
                    first.resize(n);
                    compiled_.FirstMatchBlock(dataset, rows + begin, n,
                                              first.data(), &scratch);
                    for (size_t i = 0; i < n; ++i) {
                      out[begin + i] =
                          first[i] == kNoRule
                              ? default_score_
                              : info_[static_cast<size_t>(first[i])]
                                    .target_score;
                    }
                  });
}

CategoryId AssocClassifier::PredictLabel(const Dataset& dataset,
                                         RowId row) const {
  const int match = rules_.FirstMatch(dataset, row);
  if (match == kNoRule) return default_class_;
  return info_[static_cast<size_t>(match)].cls;
}

std::string AssocClassifier::Describe(const Schema& schema) const {
  std::ostringstream out;
  out.precision(6);
  out << "Associative classifier (CBA): " << rules_.size()
      << " rules, target=" << schema.class_attr().CategoryName(target_)
      << ", default=" << schema.class_attr().CategoryName(default_class_)
      << " (score " << default_score_ << ")\n";
  for (size_t r = 0; r < rules_.size(); ++r) {
    const RuleInfo& info = info_[r];
    out << "  [" << r << "] " << rules_.rule(r).ToString(schema) << " => "
        << schema.class_attr().CategoryName(info.cls)
        << "  (sup=" << info.class_support << '/' << info.support
        << ", conf=" << info.confidence << ", lift=" << info.lift
        << ", target_score=" << info.target_score << ")\n";
  }
  return out.str();
}

}  // namespace pnr
