#include "assoc/miner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <sstream>
#include <utility>

#include "common/thread_pool.h"
#include "rules/condition.h"

namespace pnr {
namespace {

// Support floors in absolute row counts. kUnreachable disables a class
// floor (per-class criterion off, or the class has no rows).
constexpr uint64_t kUnreachable = std::numeric_limits<uint64_t>::max();

struct Floors {
  uint64_t global = 1;
  std::vector<uint64_t> per_class;
};

uint64_t CeilFloor(double fraction, uint64_t n) {
  const double raw = std::ceil(fraction * static_cast<double>(n));
  return std::max<uint64_t>(1, static_cast<uint64_t>(raw));
}

Floors ComputeFloors(const VerticalIndex& index,
                     const AssocMineOptions& options) {
  Floors floors;
  floors.global = CeilFloor(options.min_support, index.num_rows);
  floors.per_class.assign(index.class_counts.size(), kUnreachable);
  if (options.per_class_min_support > 0.0) {
    for (size_t c = 0; c < index.class_counts.size(); ++c) {
      if (index.class_counts[c] == 0) continue;
      floors.per_class[c] =
          CeilFloor(options.per_class_min_support, index.class_counts[c]);
    }
  }
  return floors;
}

// Per-candidate support counts, written to a private slot by whichever
// worker claims the index (order-free; the in-order reduce below restores
// determinism).
struct SupportCounts {
  uint64_t support = 0;
  std::vector<uint64_t> per_class;
};

void CountSupports(const VerticalIndex& index,
                   const std::vector<std::vector<int32_t>>& candidates,
                   size_t num_threads, std::vector<SupportCounts>* out) {
  out->assign(candidates.size(), SupportCounts{});
  const size_t threads =
      ThreadPool::ClampThreadsForRows(num_threads, candidates.size() * 64);
  ThreadPool pool(threads > 1 ? threads : 0);
  pool.ParallelFor(candidates.size(), [&](size_t i) {
    const std::vector<int32_t>& items = candidates[i];
    thread_local BitMask scratch;
    scratch = index.item_rows[static_cast<size_t>(items[0])];
    for (size_t k = 1; k < items.size(); ++k) {
      scratch &= index.item_rows[static_cast<size_t>(items[k])];
    }
    SupportCounts& counts = (*out)[i];
    counts.support = scratch.Count();
    counts.per_class.resize(index.class_rows.size());
    for (size_t c = 0; c < index.class_rows.size(); ++c) {
      counts.per_class[c] = scratch.CountAnd(index.class_rows[c]);
    }
  });
}

// The rare-class-aware frequency test: global floor OR any class floor.
// `rescued` reports itemsets alive only through the per-class disjunct.
bool IsFrequent(const SupportCounts& counts, const Floors& floors,
                bool* rescued) {
  if (counts.support >= floors.global) {
    *rescued = false;
    return true;
  }
  for (size_t c = 0; c < counts.per_class.size(); ++c) {
    if (counts.per_class[c] >= floors.per_class[c]) {
      *rescued = true;
      return true;
    }
  }
  return false;
}

}  // namespace

ItemCatalog ItemCatalog::Build(const Schema& schema,
                               const Discretizer& discretizer) {
  ItemCatalog catalog;
  catalog.attr_base_.assign(schema.num_attributes(), -1);
  for (AttrIndex a = 0; a < static_cast<AttrIndex>(schema.num_attributes());
       ++a) {
    const Attribute& attr = schema.attribute(a);
    if (attr.is_categorical()) {
      if (attr.num_categories() == 0) continue;
      catalog.attr_base_[static_cast<size_t>(a)] =
          static_cast<int32_t>(catalog.items_.size());
      for (CategoryId c = 0;
           c < static_cast<CategoryId>(attr.num_categories()); ++c) {
        catalog.items_.push_back(Item{a, c, -1});
      }
    } else {
      const size_t bins = discretizer.num_bins(a);
      if (bins == 0) continue;
      catalog.attr_base_[static_cast<size_t>(a)] =
          static_cast<int32_t>(catalog.items_.size());
      for (size_t b = 0; b < bins; ++b) {
        catalog.items_.push_back(Item{a, kInvalidCategory,
                                      static_cast<int32_t>(b)});
      }
    }
  }
  return catalog;
}

int32_t ItemCatalog::CategoricalItem(AttrIndex attr, CategoryId value) const {
  if (value == kInvalidCategory) return -1;
  const int32_t base = attr_base_[static_cast<size_t>(attr)];
  if (base < 0) return -1;
  return base + value;
}

int32_t ItemCatalog::NumericItem(AttrIndex attr, double value,
                                 const Discretizer& discretizer) const {
  const int32_t base = attr_base_[static_cast<size_t>(attr)];
  if (base < 0) return -1;
  const int bin = discretizer.BinOf(attr, value);
  if (bin < 0) return -1;
  return base + bin;
}

void ItemCatalog::AppendConditions(int32_t id, const Discretizer& discretizer,
                                   Rule* rule) const {
  const Item& item = items_[static_cast<size_t>(id)];
  if (item.is_categorical()) {
    rule->AddCondition(Condition::CatEqual(item.attr, item.category));
  } else {
    discretizer.AppendBinConditions(item.attr, item.bin, rule);
  }
}

std::string ItemCatalog::ToString(int32_t id, const Schema& schema,
                                  const Discretizer& discretizer) const {
  const Item& item = items_[static_cast<size_t>(id)];
  const Attribute& attr = schema.attribute(item.attr);
  std::ostringstream out;
  out.precision(17);
  if (item.is_categorical()) {
    out << attr.name() << '=' << attr.CategoryName(item.category);
    return out.str();
  }
  const std::vector<double>& cuts = discretizer.cuts(item.attr);
  if (item.bin == 0) {
    out << attr.name() << "<=" << cuts.front();
  } else if (static_cast<size_t>(item.bin) == cuts.size()) {
    out << attr.name() << '>' << cuts.back();
  } else {
    out << attr.name() << " in (" << cuts[static_cast<size_t>(item.bin) - 1]
        << ", " << cuts[static_cast<size_t>(item.bin)] << ']';
  }
  return out.str();
}

VerticalIndex VerticalIndex::Build(const Dataset& dataset,
                                   const RowSubset& rows,
                                   const ItemCatalog& catalog,
                                   const Discretizer& discretizer,
                                   size_t num_threads) {
  const Schema& schema = dataset.schema();
  VerticalIndex index;
  index.num_rows = rows.size();
  index.item_rows.assign(catalog.size(), BitMask(rows.size()));
  index.item_attr.resize(catalog.size());
  for (size_t i = 0; i < catalog.size(); ++i) {
    index.item_attr[i] = catalog.item(static_cast<int32_t>(i)).attr;
  }
  index.class_rows.assign(schema.num_classes(), BitMask(rows.size()));
  index.class_counts.assign(schema.num_classes(), 0);

  for (size_t i = 0; i < rows.size(); ++i) {
    const CategoryId label = dataset.label(rows[i]);
    index.class_rows[static_cast<size_t>(label)].Set(i);
    ++index.class_counts[static_cast<size_t>(label)];
  }

  // One column scan per attribute, fanned over the pool: every attribute's
  // items are disjoint masks, so workers never touch the same slot. Each
  // scan pins its column for the duration — the paged-dataset contract for
  // concurrent readers.
  const size_t threads =
      ThreadPool::ClampThreadsForRows(num_threads, rows.size());
  ThreadPool pool(threads > 1 ? threads : 0);
  pool.ParallelFor(schema.num_attributes(), [&](size_t a) {
    const AttrIndex attr = static_cast<AttrIndex>(a);
    if (!catalog.AttrHasItems(attr)) return;
    const Dataset::ColumnPin pin = dataset.PinColumn(attr);
    const bool categorical = schema.attribute(attr).is_categorical();
    for (size_t i = 0; i < rows.size(); ++i) {
      const int32_t id =
          categorical
              ? catalog.CategoricalItem(attr,
                                        dataset.categorical(rows[i], attr))
              : catalog.NumericItem(attr, dataset.numeric(rows[i], attr),
                                    discretizer);
      if (id >= 0) index.item_rows[static_cast<size_t>(id)].Set(i);
    }
  });
  return index;
}

Status AssocMineOptions::Validate() const {
  if (min_support < 0.0 || min_support > 1.0) {
    return Status::InvalidArgument("min_support must be in [0, 1]");
  }
  if (per_class_min_support < 0.0 || per_class_min_support > 1.0) {
    return Status::InvalidArgument("per_class_min_support must be in [0, 1]");
  }
  if (min_confidence < 0.0 || min_confidence > 1.0) {
    return Status::InvalidArgument("min_confidence must be in [0, 1]");
  }
  if (min_lift < 0.0) {
    return Status::InvalidArgument("min_lift must be >= 0");
  }
  if (max_len < 1) {
    return Status::InvalidArgument("max_len must be >= 1");
  }
  if (max_candidates < 1) {
    return Status::InvalidArgument("max_candidates must be >= 1");
  }
  return discretize.Validate();
}

StatusOr<std::vector<FrequentItemset>> MineFrequentItemsets(
    const VerticalIndex& index, const AssocMineOptions& options,
    MineStats* stats) {
  if (index.num_rows == 0) {
    return Status::InvalidArgument("no rows to mine");
  }
  const Floors floors = ComputeFloors(index, options);

  std::vector<FrequentItemset> frequent;
  // Current level's frequent itemsets (items only; counts live in
  // `frequent`), kept in lexicographic order for the prefix join.
  std::vector<std::vector<int32_t>> level;
  std::vector<std::vector<int32_t>> candidates;
  candidates.reserve(index.item_rows.size());
  for (int32_t i = 0; i < static_cast<int32_t>(index.item_rows.size()); ++i) {
    candidates.push_back({i});
  }

  std::vector<SupportCounts> counts;
  for (size_t k = 1; k <= options.max_len && !candidates.empty(); ++k) {
    if (candidates.size() > options.max_candidates) {
      return Status::OutOfRange(
          "assoc miner: level " + std::to_string(k) + " has " +
          std::to_string(candidates.size()) + " candidates (cap " +
          std::to_string(options.max_candidates) +
          "); raise --min-support / --per-class-support or lower --max-len");
    }
    if (stats != nullptr) stats->candidates_generated += candidates.size();
    CountSupports(index, candidates, options.num_threads, &counts);

    // Serial in-order sweep: the frequent list (and the level list the next
    // join reads) is identical for every thread count.
    level.clear();
    for (size_t i = 0; i < candidates.size(); ++i) {
      bool rescued = false;
      if (!IsFrequent(counts[i], floors, &rescued)) continue;
      if (stats != nullptr && rescued) ++stats->itemsets_rescued;
      level.push_back(candidates[i]);
      FrequentItemset itemset;
      itemset.items = std::move(candidates[i]);
      itemset.support = counts[i].support;
      itemset.class_support = std::move(counts[i].per_class);
      frequent.push_back(std::move(itemset));
    }

    if (k == options.max_len) break;

    // Prefix join + subset pruning (classic Apriori candidate generation),
    // with an attribute-distinctness check: two items of one attribute can
    // never co-occur... except that a row contributes one item per
    // attribute, so such a candidate has support 0 anyway — the check just
    // skips the wasted count.
    std::set<std::vector<int32_t>> level_set(level.begin(), level.end());
    candidates.clear();
    for (size_t i = 0; i < level.size(); ++i) {
      for (size_t j = i + 1; j < level.size(); ++j) {
        const std::vector<int32_t>& a = level[i];
        const std::vector<int32_t>& b = level[j];
        if (!std::equal(a.begin(), a.end() - 1, b.begin())) break;
        if (index.item_attr[static_cast<size_t>(a.back())] ==
            index.item_attr[static_cast<size_t>(b.back())]) {
          continue;
        }
        std::vector<int32_t> cand = a;
        cand.push_back(b.back());
        // All (k-1)-subsets must be frequent. Dropping the last item gives
        // `a`, dropping the second-to-last gives `b` (both present by
        // construction); test the rest.
        bool prune = false;
        for (size_t drop = 0; drop + 2 < cand.size() && !prune; ++drop) {
          std::vector<int32_t> sub;
          sub.reserve(cand.size() - 1);
          for (size_t t = 0; t < cand.size(); ++t) {
            if (t != drop) sub.push_back(cand[t]);
          }
          prune = level_set.find(sub) == level_set.end();
        }
        if (!prune) candidates.push_back(std::move(cand));
        if (candidates.size() > options.max_candidates) {
          return Status::OutOfRange(
              "assoc miner: level " + std::to_string(k + 1) +
              " exceeded the candidate cap (" +
              std::to_string(options.max_candidates) +
              "); raise --min-support / --per-class-support or lower "
              "--max-len");
        }
      }
    }
  }
  if (stats != nullptr) stats->frequent_itemsets = frequent.size();
  return frequent;
}

std::vector<CandidateRule> GenerateRules(
    const std::vector<FrequentItemset>& frequent, const VerticalIndex& index,
    const AssocMineOptions& options, MineStats* stats) {
  const Floors floors = ComputeFloors(index, options);
  const double n = static_cast<double>(index.num_rows);
  std::vector<CandidateRule> rules;
  for (const FrequentItemset& itemset : frequent) {
    for (size_t c = 0; c < itemset.class_support.size(); ++c) {
      const uint64_t cs = itemset.class_support[c];
      if (cs == 0) continue;
      // The ruleitem <itemset, c> must itself be frequent: CBA measures a
      // CAR's support as the count of rows matching antecedent AND class.
      if (cs < floors.global && cs < floors.per_class[c]) continue;
      const double confidence =
          static_cast<double>(cs) / static_cast<double>(itemset.support);
      if (confidence < options.min_confidence) continue;
      const double prior = static_cast<double>(index.class_counts[c]) / n;
      const double lift = confidence / prior;
      if (lift < options.min_lift) continue;
      CandidateRule rule;
      rule.items = itemset.items;
      rule.cls = static_cast<CategoryId>(c);
      rule.support = itemset.support;
      rule.class_support = cs;
      rule.confidence = confidence;
      rule.lift = lift;
      rules.push_back(std::move(rule));
    }
  }
  if (stats != nullptr) stats->rules_generated = rules.size();
  return rules;
}

}  // namespace pnr
