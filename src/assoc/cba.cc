#include "assoc/cba.h"

#include <algorithm>
#include <utility>

namespace pnr {
namespace {

// Antecedent coverage mask of a candidate rule (AND of its item masks).
BitMask AntecedentMask(const CandidateRule& rule, const VerticalIndex& index) {
  BitMask mask = index.item_rows[static_cast<size_t>(rule.items[0])];
  for (size_t k = 1; k < rule.items.size(); ++k) {
    mask &= index.item_rows[static_cast<size_t>(rule.items[k])];
  }
  return mask;
}

// Majority class among the rows of `uncovered`; ties and the empty set
// resolve to the lowest class id (deterministic).
struct DefaultPick {
  CategoryId cls = 0;
  uint64_t count = 0;     ///< rows of the majority class
  uint64_t uncovered = 0; ///< total uncovered rows
};

DefaultPick PickDefault(const BitMask& uncovered, const VerticalIndex& index) {
  DefaultPick pick;
  pick.uncovered = uncovered.Count();
  for (size_t c = 0; c < index.class_rows.size(); ++c) {
    const uint64_t count = uncovered.CountAnd(index.class_rows[c]);
    if (count > pick.count) {
      pick.count = count;
      pick.cls = static_cast<CategoryId>(c);
    }
  }
  return pick;
}

}  // namespace

void SortByPrecedence(std::vector<CandidateRule>* rules) {
  std::sort(rules->begin(), rules->end(),
            [](const CandidateRule& a, const CandidateRule& b) {
              if (a.confidence != b.confidence) {
                return a.confidence > b.confidence;
              }
              if (a.class_support != b.class_support) {
                return a.class_support > b.class_support;
              }
              if (a.items.size() != b.items.size()) {
                return a.items.size() < b.items.size();
              }
              if (a.items != b.items) return a.items < b.items;
              return a.cls < b.cls;
            });
}

AssocClassifier SelectCbaRules(std::vector<CandidateRule> rules,
                               const VerticalIndex& index,
                               const ItemCatalog& catalog,
                               const Discretizer& discretizer,
                               CategoryId target, MineStats* stats) {
  SortByPrecedence(&rules);

  // M1 walk. Each kept rule removes its covered rows; per kept prefix we
  // record the error of "prefix + majority default" so the list can be cut
  // at the global error minimum afterwards.
  struct Kept {
    size_t rule = 0;           ///< index into `rules`
    BitMask antecedent;        ///< full-coverage mask (for target_score)
    uint64_t rule_errors = 0;  ///< wrong rows among those it newly covered
    DefaultPick fallback;      ///< default candidate after this prefix
  };

  BitMask uncovered(index.num_rows, true);
  const DefaultPick initial = PickDefault(uncovered, index);
  std::vector<Kept> kept;
  uint64_t errors_so_far = 0;
  // Error of the empty prefix: everything rides the initial default.
  uint64_t best_errors = initial.uncovered - initial.count;
  size_t best_prefix = 0;

  for (size_t r = 0; r < rules.size(); ++r) {
    if (!uncovered.AnySet()) break;
    BitMask antecedent = AntecedentMask(rules[r], index);
    const BitMask newly = antecedent & uncovered;
    const uint64_t newly_count = newly.Count();
    if (newly_count == 0) continue;  // covers nothing new: discard
    const uint64_t correct =
        newly.CountAnd(index.class_rows[static_cast<size_t>(rules[r].cls)]);
    uncovered.AndNot(antecedent);

    Kept k;
    k.rule = r;
    k.antecedent = std::move(antecedent);
    k.rule_errors = newly_count - correct;
    k.fallback = PickDefault(uncovered, index);
    errors_so_far += k.rule_errors;
    kept.push_back(std::move(k));

    const uint64_t total =
        errors_so_far + (kept.back().fallback.uncovered -
                         kept.back().fallback.count);
    // Strict < keeps the shortest prefix on ties.
    if (total < best_errors) {
      best_errors = total;
      best_prefix = kept.size();
    }
  }

  // Materialize the chosen prefix: rules in precedence order, each with its
  // conditions in item-id (= schema attribute) order.
  RuleSet rule_set;
  std::vector<AssocClassifier::RuleInfo> info;
  for (size_t i = 0; i < best_prefix; ++i) {
    const CandidateRule& src = rules[kept[i].rule];
    Rule rule;
    for (const int32_t item : src.items) {
      catalog.AppendConditions(item, discretizer, &rule);
    }
    rule.train_stats.covered = static_cast<double>(src.support);
    rule.train_stats.positive = static_cast<double>(
        kept[i].antecedent.CountAnd(
            index.class_rows[static_cast<size_t>(target)]));
    AssocClassifier::RuleInfo ri;
    ri.cls = src.cls;
    ri.support = src.support;
    ri.class_support = src.class_support;
    ri.confidence = src.confidence;
    ri.lift = src.lift;
    ri.target_score = src.support > 0
                          ? rule.train_stats.positive /
                                static_cast<double>(src.support)
                          : 0.0;
    info.push_back(ri);
    rule_set.AddRule(std::move(rule));
  }

  const DefaultPick fallback =
      best_prefix == 0 ? initial : kept[best_prefix - 1].fallback;
  // Score of uncovered records: the target rate among the training rows the
  // kept prefix leaves uncovered. When selection covered everything, fall
  // back on the default class's identity.
  double default_score;
  if (fallback.uncovered > 0) {
    BitMask rest(index.num_rows, true);
    for (size_t i = 0; i < best_prefix; ++i) {
      rest.AndNot(kept[i].antecedent);
    }
    default_score =
        static_cast<double>(
            rest.CountAnd(index.class_rows[static_cast<size_t>(target)])) /
        static_cast<double>(fallback.uncovered);
  } else {
    default_score = fallback.cls == target ? 1.0 : 0.0;
  }

  if (stats != nullptr) stats->rules_selected = best_prefix;
  return AssocClassifier(std::move(rule_set), std::move(info), target,
                         fallback.cls, default_score);
}

StatusOr<AssocMineResult> MineCba(const Dataset& dataset,
                                  const RowSubset& rows, CategoryId target,
                                  const AssocMineOptions& options) {
  Status status = options.Validate();
  if (!status.ok()) return status;
  if (target < 0 ||
      target >= static_cast<CategoryId>(dataset.schema().num_classes())) {
    return Status::InvalidArgument("assoc miner: target class id " +
                                   std::to_string(target) +
                                   " is not in the schema");
  }

  AssocMineResult result;
  auto discretizer = Discretizer::Fit(dataset, rows, options.discretize);
  if (!discretizer.ok()) return discretizer.status();
  for (AttrIndex a = 0;
       a < static_cast<AttrIndex>(dataset.schema().num_attributes()); ++a) {
    if (dataset.schema().attribute(a).is_numeric() &&
        discretizer->num_bins(a) > 0) {
      ++result.stats.discretized_attrs;
    }
  }

  const ItemCatalog catalog =
      ItemCatalog::Build(dataset.schema(), *discretizer);
  result.stats.num_items = catalog.size();
  const VerticalIndex index = VerticalIndex::Build(
      dataset, rows, catalog, *discretizer, options.num_threads);

  auto frequent = MineFrequentItemsets(index, options, &result.stats);
  if (!frequent.ok()) return frequent.status();
  std::vector<CandidateRule> cars =
      GenerateRules(*frequent, index, options, &result.stats);
  result.model = SelectCbaRules(std::move(cars), index, catalog, *discretizer,
                                target, &result.stats);
  return result;
}

}  // namespace pnr
