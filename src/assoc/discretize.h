// Deterministic supervised discretization of numeric columns for the
// associative miner.
//
// Numeric attributes cannot be items directly; the miner needs a finite
// per-attribute alphabet. Each numeric column is cut into at most
// `max_bins` upper-closed intervals:
//
//   bin 0:      v <= cut[0]
//   bin k:      cut[k-1] < v <= cut[k]
//   bin last:   v >  cut[last-1]
//
// Candidate cut points come from the SAME equi-depth rule the stream drift
// histograms use (EquiDepthEdges in common/math_util.h), so the miner and
// the PSI monitor agree on where a column's mass boundaries are. In
// supervised mode (the default) the final cuts are chosen from those
// candidates by best-first recursive entropy partitioning over the class
// labels — the boundary that most reduces class impurity is taken first,
// until max_bins is reached or no split reduces impurity.
//
// Edge-case contract (each pinned by tests/assoc_discretize_test.cc):
//   * a constant column produces no cuts (the attribute yields no items);
//   * an all-missing (all-NaN) column produces no cuts;
//   * NaN cells are excluded from cut selection and map to no bin (-1);
//   * +/-inf cells participate normally (they sort to the extremes);
//   * single-row classes are fine: entropy is computed over whatever
//     label distribution exists, never dividing by zero;
//   * cuts are strictly ascending and every bin is non-empty on the
//     fitting sample.
// Fitting is single-threaded per attribute and depends only on the cell
// values and labels, never on thread count — mined models stay
// byte-identical at any --threads.

#ifndef PNR_ASSOC_DISCRETIZE_H_
#define PNR_ASSOC_DISCRETIZE_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "rules/rule.h"

namespace pnr {

/// Knobs for Discretizer::Fit.
struct DiscretizeOptions {
  /// Maximum bins per numeric attribute (>= 2).
  size_t max_bins = 8;

  /// Resolution of the equi-depth candidate grid the supervised search
  /// selects from (>= max_bins). More candidates = finer boundaries.
  size_t candidate_bins = 32;

  /// When true (default), pick cuts by recursive entropy partitioning over
  /// the class labels; when false, keep the plain equi-depth edges.
  bool supervised = true;

  /// Invalid-argument error when the knobs are out of range.
  Status Validate() const;
};

/// Per-attribute numeric cut points fitted on a training sample.
class Discretizer {
 public:
  Discretizer() = default;

  /// Fits cut points for every numeric attribute of `dataset`'s schema over
  /// `rows`. Categorical attributes get no cuts (they are items already).
  static StatusOr<Discretizer> Fit(const Dataset& dataset,
                                   const RowSubset& rows,
                                   const DiscretizeOptions& options);

  /// Strictly ascending cut points of `attr`; empty when the attribute is
  /// categorical or unusable (constant / all-missing / too few rows).
  const std::vector<double>& cuts(AttrIndex attr) const {
    return cuts_[static_cast<size_t>(attr)];
  }

  /// Number of bins of `attr`: cuts+1 when usable, 0 otherwise.
  size_t num_bins(AttrIndex attr) const {
    const auto& c = cuts_[static_cast<size_t>(attr)];
    return c.empty() ? 0 : c.size() + 1;
  }

  /// Bin of `value` under `attr`'s cuts; -1 for NaN or an unusable
  /// attribute. Agrees exactly with the conditions AppendBinConditions
  /// emits (upper-closed intervals), including at the cut values.
  int BinOf(AttrIndex attr, double value) const;

  /// Appends the 1 or 2 numeric conditions expressing `bin` of `attr`
  /// (LessEqual for the lowest, Greater for the highest, Greater+LessEqual
  /// for interior bins) to `rule`.
  void AppendBinConditions(AttrIndex attr, int bin, Rule* rule) const;

  /// Number of attributes covered (== schema.num_attributes()).
  size_t num_attributes() const { return cuts_.size(); }

 private:
  std::vector<std::vector<double>> cuts_;  // per attribute, [] = no items
};

}  // namespace pnr

#endif  // PNR_ASSOC_DISCRETIZE_H_
