#include "assoc/model_io.h"

#include <sstream>
#include <vector>

#include "common/file_io.h"
#include "common/string_util.h"
#include "rules/condition.h"

namespace pnr {
namespace {

// Line cursor with trimmed lines and 1-based physical line tracking; same
// contract as the PNrule model reader (CRLF/whitespace-tolerant, located
// errors, truncation distinguishable from malformation).
class LineReader {
 public:
  explicit LineReader(const std::string& text) : stream_(text) {}

  bool Next(std::string* line) {
    while (std::getline(stream_, *line)) {
      ++line_;
      *line = std::string(TrimWhitespace(*line));
      if (!line->empty()) return true;
    }
    return false;
  }

  size_t line() const { return line_; }

 private:
  std::istringstream stream_;
  size_t line_ = 0;
};

Status ParseError(size_t line, const std::string& detail) {
  return Status::InvalidArgument("assoc model parse error at line " +
                                 std::to_string(line) + ": " + detail);
}

Status TruncatedError(const LineReader& reader, const std::string& expected) {
  return Status::InvalidArgument(
      "assoc model parse error: unexpected end of input after line " +
      std::to_string(reader.line()) + ": expected " + expected);
}

void WriteCondition(std::ostringstream* out, const Condition& condition,
                    const Schema& schema) {
  const Attribute& attr = schema.attribute(condition.attr);
  *out << "cond ";
  switch (condition.op) {
    case ConditionOp::kCatEqual:
      *out << "cat " << attr.name() << ' '
           << attr.CategoryName(condition.category);
      break;
    case ConditionOp::kLessEqual:
      *out << "le " << attr.name() << ' ' << condition.hi;
      break;
    case ConditionOp::kGreater:
      *out << "gt " << attr.name() << ' ' << condition.lo;
      break;
    case ConditionOp::kInRange:
      *out << "range " << attr.name() << ' ' << condition.lo << ' '
           << condition.hi;
      break;
  }
  *out << '\n';
}

StatusOr<Condition> ParseCondition(const std::vector<std::string>& tokens,
                                   const Schema& schema, size_t line) {
  if (tokens.size() < 4 || tokens[0] != "cond") {
    return ParseError(line, "expected a condition line");
  }
  auto attr_or = schema.FindAttribute(tokens[2]);
  if (!attr_or.ok()) {
    return ParseError(line, "unknown attribute '" + tokens[2] + "'");
  }
  const AttrIndex attr = *attr_or;
  const std::string& kind = tokens[1];
  if (kind == "cat") {
    if (!schema.attribute(attr).is_categorical()) {
      return ParseError(line, "'" + tokens[2] + "' is not categorical");
    }
    const CategoryId value = schema.attribute(attr).FindCategory(tokens[3]);
    if (value == kInvalidCategory) {
      return Status::NotFound("assoc model parse error at line " +
                              std::to_string(line) + ": category '" +
                              tokens[3] + "' not in attribute '" + tokens[2] +
                              "'");
    }
    return Condition::CatEqual(attr, value);
  }
  if (!schema.attribute(attr).is_numeric()) {
    return ParseError(line, "'" + tokens[2] + "' is not numeric");
  }
  double a = 0.0;
  if (!ParseDouble(tokens[3], &a)) return ParseError(line, "bad number");
  if (kind == "le") return Condition::LessEqual(attr, a);
  if (kind == "gt") return Condition::Greater(attr, a);
  if (kind == "range") {
    double b = 0.0;
    if (tokens.size() < 5 || !ParseDouble(tokens[4], &b) || b < a) {
      return ParseError(line, "bad range bounds");
    }
    return Condition::InRange(attr, a, b);
  }
  return ParseError(line, "unknown condition kind '" + kind + "'");
}

// Class-name lookup with a located NotFound on failure.
StatusOr<CategoryId> FindClass(const Schema& schema, const std::string& name,
                               size_t line, const char* what) {
  const CategoryId cls = schema.class_attr().FindCategory(name);
  if (cls == kInvalidCategory) {
    return Status::NotFound("assoc model parse error at line " +
                            std::to_string(line) + ": " + what + " '" + name +
                            "' is not a class of the schema");
  }
  return cls;
}

}  // namespace

std::string SerializeAssocModel(const AssocClassifier& model,
                                const Schema& schema) {
  std::ostringstream out;
  out.precision(17);
  out << "pnr-assoc-model v1\n";
  out << "target " << schema.class_attr().CategoryName(model.target()) << '\n';
  out << "default " << schema.class_attr().CategoryName(model.default_class())
      << ' ' << model.default_score() << '\n';
  out << "threshold " << model.threshold() << '\n';
  out << "rules " << model.rules().size() << '\n';
  for (size_t r = 0; r < model.rules().size(); ++r) {
    const Rule& rule = model.rules().rule(r);
    const AssocClassifier::RuleInfo& info = model.rule_info()[r];
    out << "rule " << rule.size() << ' '
        << schema.class_attr().CategoryName(info.cls) << ' ' << info.support
        << ' ' << info.class_support << ' ' << info.confidence << ' '
        << info.lift << ' ' << info.target_score << '\n';
    for (const Condition& condition : rule.conditions()) {
      WriteCondition(&out, condition, schema);
    }
  }
  out << "end\n";
  return out.str();
}

StatusOr<AssocClassifier> ParseAssocModel(const std::string& text,
                                          const Schema& schema) {
  LineReader reader(text);
  std::string line;
  if (!reader.Next(&line)) {
    return TruncatedError(reader, "'pnr-assoc-model v1' header");
  }
  auto tokens = SplitWhitespace(line);
  if (tokens.size() != 2 || tokens[0] != "pnr-assoc-model") {
    return ParseError(reader.line(), "missing 'pnr-assoc-model v1' header");
  }
  if (tokens[1] != "v1") {
    return Status::InvalidArgument(
        "unsupported assoc model format version '" + tokens[1] +
        "' (this build reads v1)");
  }

  if (!reader.Next(&line)) {
    return TruncatedError(reader, "'target <class name>'");
  }
  tokens = SplitWhitespace(line);
  if (tokens.size() != 2 || tokens[0] != "target") {
    return ParseError(reader.line(), "expected 'target <class name>'");
  }
  auto target = FindClass(schema, tokens[1], reader.line(), "target class");
  if (!target.ok()) return target.status();

  if (!reader.Next(&line)) {
    return TruncatedError(reader, "'default <class name> <score>'");
  }
  tokens = SplitWhitespace(line);
  double default_score = 0.0;
  if (tokens.size() != 3 || tokens[0] != "default" ||
      !ParseDouble(tokens[2], &default_score)) {
    return ParseError(reader.line(), "expected 'default <class name> <score>'");
  }
  auto default_class =
      FindClass(schema, tokens[1], reader.line(), "default class");
  if (!default_class.ok()) return default_class.status();
  if (!(default_score >= 0.0 && default_score <= 1.0)) {
    return ParseError(reader.line(), "default score must be in [0, 1]");
  }

  if (!reader.Next(&line)) return TruncatedError(reader, "'threshold <t>'");
  tokens = SplitWhitespace(line);
  double threshold = 0.5;
  if (tokens.size() != 2 || tokens[0] != "threshold" ||
      !ParseDouble(tokens[1], &threshold)) {
    return ParseError(reader.line(), "expected 'threshold <t>'");
  }

  if (!reader.Next(&line)) return TruncatedError(reader, "'rules <count>'");
  tokens = SplitWhitespace(line);
  long long count = 0;
  if (tokens.size() != 2 || tokens[0] != "rules" ||
      !ParseInt64(tokens[1], &count) || count < 0) {
    return ParseError(reader.line(), "expected 'rules <count>'");
  }

  RuleSet rules;
  std::vector<AssocClassifier::RuleInfo> info;
  for (long long r = 0; r < count; ++r) {
    if (!reader.Next(&line)) {
      return TruncatedError(reader, "rule " + std::to_string(r + 1) + " of " +
                                        std::to_string(count));
    }
    tokens = SplitWhitespace(line);
    long long num_conditions = 0;
    long long support = 0;
    long long class_support = 0;
    AssocClassifier::RuleInfo ri;
    if (tokens.size() != 8 || tokens[0] != "rule" ||
        !ParseInt64(tokens[1], &num_conditions) || num_conditions < 0 ||
        !ParseInt64(tokens[3], &support) || support < 0 ||
        !ParseInt64(tokens[4], &class_support) || class_support < 0 ||
        class_support > support ||
        !ParseDouble(tokens[5], &ri.confidence) ||
        !ParseDouble(tokens[6], &ri.lift) ||
        !ParseDouble(tokens[7], &ri.target_score)) {
      return ParseError(reader.line(), "bad rule header '" + line + "'");
    }
    auto cls = FindClass(schema, tokens[2], reader.line(), "rule class");
    if (!cls.ok()) return cls.status();
    if (!(ri.confidence >= 0.0 && ri.confidence <= 1.0) ||
        !(ri.lift >= 0.0) ||
        !(ri.target_score >= 0.0 && ri.target_score <= 1.0)) {
      return ParseError(reader.line(), "rule statistics out of range");
    }
    ri.cls = *cls;
    ri.support = static_cast<uint64_t>(support);
    ri.class_support = static_cast<uint64_t>(class_support);
    Rule rule;
    for (long long c = 0; c < num_conditions; ++c) {
      if (!reader.Next(&line)) {
        return TruncatedError(reader, "condition " + std::to_string(c + 1) +
                                          " of " +
                                          std::to_string(num_conditions));
      }
      auto condition =
          ParseCondition(SplitWhitespace(line), schema, reader.line());
      if (!condition.ok()) return condition.status();
      rule.AddCondition(*condition);
    }
    rule.train_stats.covered = static_cast<double>(support);
    rule.train_stats.positive =
        ri.target_score * static_cast<double>(support);
    info.push_back(ri);
    rules.AddRule(std::move(rule));
  }

  if (!reader.Next(&line)) return TruncatedError(reader, "'end' marker");
  if (line != "end") return ParseError(reader.line(), "missing 'end' marker");
  if (reader.Next(&line)) {
    return ParseError(reader.line(), "trailing content after 'end'");
  }

  AssocClassifier model(std::move(rules), std::move(info), *target,
                        *default_class, default_score);
  model.set_threshold(threshold);
  return model;
}

Status SaveAssocModel(const AssocClassifier& model, const Schema& schema,
                      const std::string& path) {
  return WriteStringToFile(SerializeAssocModel(model, schema), path);
}

StatusOr<AssocClassifier> LoadAssocModel(const std::string& path,
                                         const Schema& schema) {
  auto text = ReadFileToString(path);
  if (!text.ok()) return text.status();
  return ParseAssocModel(*text, schema);
}

bool LooksLikeAssocModel(const std::string& text) {
  const std::string_view trimmed = TrimWhitespace(text);
  const std::string_view header = "pnr-assoc-model";
  return trimmed.substr(0, header.size()) == header;
}

}  // namespace pnr
