// Serialization of associative-classifier models.
//
// Versioned line-oriented text, sibling of the PNrule format
// (pnrule/model_io.h) and parsed with the same hardening contract: located
// errors naming the 1-based line, truncation distinguished from
// malformation, version skew named explicitly, trailing garbage rejected,
// and parse(serialize(m)) a fixpoint (fuzzed by the `mine` target).
//
//   pnr-assoc-model v1
//   target <class name>
//   default <class name> <default score>
//   threshold <t>
//   rules <count>
//   rule <num conds> <class name> <support> <class_support> <confidence>
//        <lift> <target_score>          [one line]
//   cond ...                            [as in the PNrule format]
//   end
//
// Doubles are written with precision 17, so round-tripping is exact.

#ifndef PNR_ASSOC_MODEL_IO_H_
#define PNR_ASSOC_MODEL_IO_H_

#include <string>

#include "assoc/classifier.h"
#include "common/status.h"
#include "data/schema.h"

namespace pnr {

/// Serializes `model` against `schema` (attribute/category/class names are
/// resolved by name on load).
std::string SerializeAssocModel(const AssocClassifier& model,
                                const Schema& schema);

/// Parses a serialized model; every failure names the offending line.
StatusOr<AssocClassifier> ParseAssocModel(const std::string& text,
                                          const Schema& schema);

/// Serialize + write via file_io (fault-injection friendly).
Status SaveAssocModel(const AssocClassifier& model, const Schema& schema,
                      const std::string& path);

/// Read + parse.
StatusOr<AssocClassifier> LoadAssocModel(const std::string& path,
                                         const Schema& schema);

/// Cheap format sniff: true when `text` starts with the assoc header (after
/// leading whitespace). Lets loaders accept both model families through one
/// --model flag without tasting parse errors.
bool LooksLikeAssocModel(const std::string& text);

}  // namespace pnr

#endif  // PNR_ASSOC_MODEL_IO_H_
