// The CBA-style associative classifier: an ordered list of class
// association rules applied first-match-wins, with a default class for
// uncovered records.
//
// AssocClassifier plugs into the same BinaryClassifier interface as
// PNrule/RIPPER/C4.5 — one target class, Score in [0, 1] — so mined models
// flow through the existing eval metrics, the tune racer, and the serving
// fleet unchanged. Classification follows CBA (first matching rule's class;
// default when none matches); the score of a record is the matched rule's
// empirical P(target | antecedent) from training, which makes ranking
// metrics (precision/recall at a threshold) meaningful even for rules whose
// consequent is not the target class.
//
// Scoring compiles the rule list through CompiledRuleSet, so a mined model
// with thousands of CARs rides the same SIMD first-match kernels as the
// hand-induced learners — the scale test ROADMAP item 5 asks for.

#ifndef PNR_ASSOC_CLASSIFIER_H_
#define PNR_ASSOC_CLASSIFIER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "eval/classifier.h"
#include "rules/compiled_rule_set.h"
#include "rules/rule_set.h"

namespace pnr {

/// A trained associative classifier bound to one target class.
class AssocClassifier : public BinaryClassifier {
 public:
  /// Per-rule consequent and training statistics, parallel to the RuleSet.
  struct RuleInfo {
    CategoryId cls = kInvalidCategory;  ///< consequent class
    uint64_t support = 0;               ///< antecedent coverage on train
    uint64_t class_support = 0;         ///< antecedent AND consequent
    double confidence = 0.0;            ///< class_support / support
    double lift = 0.0;                  ///< confidence / class prior
    double target_score = 0.0;          ///< P(target | antecedent) on train
  };

  AssocClassifier() = default;

  /// `info` must have one entry per rule of `rules`. `default_score` is the
  /// score of records no rule covers (the target rate among uncovered
  /// training rows).
  AssocClassifier(RuleSet rules, std::vector<RuleInfo> info, CategoryId target,
                  CategoryId default_class, double default_score);

  /// First matching rule's target_score; default_score when none matches.
  double Score(const Dataset& dataset, RowId row) const override;

  /// Compiled block-wise scoring; bit-identical to Score per row.
  void ScoreBatch(const Dataset& dataset, const RowId* rows, size_t count,
                  double* out,
                  const BatchScoreOptions& options = {}) const override;

  /// CBA classification: first matching rule's class, else default_class.
  CategoryId PredictLabel(const Dataset& dataset, RowId row) const;

  std::string Describe(const Schema& schema) const override;

  const RuleSet& rules() const { return rules_; }
  const std::vector<RuleInfo>& rule_info() const { return info_; }
  CategoryId target() const { return target_; }
  CategoryId default_class() const { return default_class_; }
  double default_score() const { return default_score_; }

 private:
  RuleSet rules_;
  CompiledRuleSet compiled_;
  std::vector<RuleInfo> info_;
  CategoryId target_ = kInvalidCategory;
  CategoryId default_class_ = kInvalidCategory;
  double default_score_ = 0.0;
};

}  // namespace pnr

#endif  // PNR_ASSOC_CLASSIFIER_H_
