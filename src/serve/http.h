// Line-oriented HTTP/1.1 subset for the prediction server.
//
// Covers exactly what an RPC-style scoring service needs: one request at a
// time per connection, headers terminated by a blank line, bodies framed by
// Content-Length (no chunked encoding, no multipart), keep-alive by
// default. Both directions are incremental parsers fed from socket reads,
// with explicit header/body byte bounds so a hostile peer cannot balloon
// memory — the parser *is* the admission filter for malformed traffic
// (oversized bodies surface as 413 before any allocation of that size).

#ifndef PNR_SERVE_HTTP_H_
#define PNR_SERVE_HTTP_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/net.h"
#include "common/status.h"

namespace pnr {

struct HttpRequest {
  std::string method;   // "GET", "POST", ...
  std::string target;   // "/v1/predict"
  std::string version;  // "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Case-insensitive header lookup; empty view when absent.
  std::string_view Header(std::string_view name) const;
  /// False when the client sent "Connection: close" (or HTTP/1.0 without
  /// keep-alive).
  bool keep_alive() const;
};

struct HttpResponse {
  int status = 200;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  bool close_connection = false;  ///< server adds "Connection: close"

  std::string_view Header(std::string_view name) const;
};

/// Canonical reason phrase for the status codes this server emits.
const char* HttpReasonPhrase(int status);

/// Renders a response with Content-Length (and Connection: close when
/// requested) added.
std::string RenderHttpResponse(const HttpResponse& response);

/// Incremental request parser. Feed raw bytes with Consume until Done or
/// Error; `Take` then yields the request and resets the parser for the
/// next one on the same connection (leftover pipelined bytes are kept).
class HttpRequestParser {
 public:
  enum class State { kNeedMore, kDone, kError };

  struct Limits {
    size_t max_head_bytes = 16 * 1024;
    size_t max_body_bytes = 8 * 1024 * 1024;
  };

  HttpRequestParser() = default;
  explicit HttpRequestParser(Limits limits) : limits_(limits) {}

  /// Appends bytes and advances the parse.
  State Consume(std::string_view data);
  State state() const { return state_; }

  /// True when no bytes of a next request are buffered — the connection is
  /// between requests (safe to requeue for cooperative scheduling).
  bool idle() const {
    return !head_done_ && buffer_.empty() && state_ == State::kNeedMore;
  }

  /// On kError: the HTTP status to answer with (400 or 413) and a message.
  int error_status() const { return error_status_; }
  const std::string& error_message() const { return error_message_; }

  /// On kDone: moves the request out and re-arms for the next request.
  HttpRequest Take();

 private:
  State Fail(int status, std::string message);
  State Advance();

  Limits limits_;
  std::string buffer_;
  HttpRequest request_;
  size_t body_needed_ = 0;
  bool head_done_ = false;
  State state_ = State::kNeedMore;
  int error_status_ = 400;
  std::string error_message_;
};

/// Blocking loopback HTTP client (tests and the load generator). One
/// request at a time over a keep-alive connection.
class HttpClient {
 public:
  /// Connects to 127.0.0.1:`port`.
  static StatusOr<HttpClient> Connect(uint16_t port);

  /// Sends `method target` with `body` and reads the full response.
  StatusOr<HttpResponse> Roundtrip(const std::string& method,
                                   const std::string& target,
                                   const std::string& body = "",
                                   int timeout_ms = 30000);

  /// Sends bytes as-is (for malformed-request tests).
  Status SendRaw(std::string_view data);
  /// Reads one response (shared by Roundtrip).
  StatusOr<HttpResponse> ReadResponse(int timeout_ms = 30000);

  HttpClient(HttpClient&&) = default;
  HttpClient& operator=(HttpClient&&) = default;

 private:
  explicit HttpClient(UniqueFd fd) : fd_(std::move(fd)) {}

  UniqueFd fd_;
  std::string leftover_;
};

}  // namespace pnr

#endif  // PNR_SERVE_HTTP_H_
