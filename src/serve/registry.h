// ModelRegistry: named, hot-swappable PNrule models for serving.
//
// Each entry is an immutable ServedModel snapshot held by shared_ptr.
// Lookups copy the pointer under a short mutex; request handlers then score
// against their snapshot with no further coordination, so a concurrent
// Load (hot-swap) never stalls traffic and never changes a request's model
// mid-flight — in-flight requests finish on the snapshot they grabbed, the
// old model is freed when the last of them drops its reference.
//
// Loading is schema-checked: the model text is parsed against the schema
// sidecar (data/schema_io.h), so attribute/category references that do not
// resolve fail the Load, never a request.
//
// Sharded serving never takes the registry mutex on the hot path. The
// registry carries a monotonically increasing epoch, bumped by every
// mutation (Install/Load/Remove); each shard keeps a SnapshotCache whose
// Refresh() compares a relaxed epoch load against the epoch it last copied
// and re-reads the table under the mutex only when they differ. Between
// swaps — i.e. almost always — a lookup is one relaxed atomic load plus a
// local map probe, and the shared_ptr snapshots themselves guarantee a
// shard can never observe a torn model.

#ifndef PNR_SERVE_REGISTRY_H_
#define PNR_SERVE_REGISTRY_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/schema.h"
#include "pnrule/pnrule.h"

namespace pnr {

/// An immutable, shareable (model, schema) snapshot. The model is held
/// through the BinaryClassifier interface so any scoring family — PNrule or
/// the associative classifier — serves through the same fleet; `kind` plus
/// the rule counts feed the /models introspection endpoint.
struct ServedModel {
  /// Wraps a PNrule model (the historical entry point; tests and the
  /// stream retrainer install through this).
  ServedModel(std::string name_in, Schema schema_in, PnruleClassifier model_in)
      : name(std::move(name_in)), schema(std::move(schema_in)) {
    auto owned =
        std::make_shared<const PnruleClassifier>(std::move(model_in));
    kind = "pnrule";
    primary_rules = owned->p_rules().size();
    secondary_rules = owned->n_rules().size();
    model = std::move(owned);
  }

  /// Wraps any classifier. `primary`/`secondary` are the rule counts shown
  /// by /models (P/N for PNrule, CARs/0 for assoc, 0/0 when meaningless).
  ServedModel(std::string name_in, Schema schema_in,
              std::shared_ptr<const BinaryClassifier> model_in,
              std::string kind_in, size_t primary, size_t secondary)
      : name(std::move(name_in)),
        schema(std::move(schema_in)),
        model(std::move(model_in)),
        kind(std::move(kind_in)),
        primary_rules(primary),
        secondary_rules(secondary) {}

  std::string name;
  Schema schema;
  std::shared_ptr<const BinaryClassifier> model;  ///< never null
  std::string kind;
  size_t primary_rules = 0;
  size_t secondary_rules = 0;
  uint64_t version = 1;  ///< bumped on every hot-swap of this name
};

class ModelRegistry {
 public:
  /// Parses `model_path` against the schema at `schema_path` and installs
  /// the result under `name`, atomically replacing any previous version.
  Status Load(const std::string& name, const std::string& model_path,
              const std::string& schema_path);

  /// Installs an already-built model (tests, in-process benches).
  void Install(const std::string& name, Schema schema,
               PnruleClassifier model);

  /// Removes `name`; true when something was removed. In-flight requests
  /// holding the snapshot finish normally.
  bool Remove(const std::string& name);

  /// Snapshot for `name`, or nullptr.
  std::shared_ptr<const ServedModel> Get(const std::string& name) const;

  /// All current snapshots, ordered by name.
  std::vector<std::shared_ptr<const ServedModel>> List() const;

  size_t size() const;

  /// Monotone mutation counter; bumped by Load/Install/Remove. Readable
  /// without the mutex.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

 private:
  friend class SnapshotCache;

  void InstallLocked(const std::string& name,
                     std::shared_ptr<ServedModel> entry);

  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<const ServedModel>> models_;
  std::atomic<uint64_t> epoch_{1};
};

/// A shard-private view of the registry. Not thread-safe — each shard owns
/// exactly one and touches it only from its reactor thread.
class SnapshotCache {
 public:
  explicit SnapshotCache(const ModelRegistry* registry)
      : registry_(registry) {}

  /// Re-copies the table iff the registry epoch moved. One relaxed atomic
  /// load when nothing changed. Returns the number of hot-swaps observed:
  /// the summed version advance of names present both before and after the
  /// refresh (a first Load of a new name is not a swap). Shards feed this
  /// into their pnr_serve_model_swaps_total counter.
  size_t Refresh();

  /// Snapshot for `name`, or the sole model when `name` is empty and
  /// exactly one is loaded, or nullptr. Call Refresh() first.
  std::shared_ptr<const ServedModel> Get(const std::string& name) const;

  /// All cached snapshots, ordered by name.
  const std::vector<std::shared_ptr<const ServedModel>>& List() const {
    return ordered_;
  }

  /// Highest version among the cached snapshots (0 when none) — the value a
  /// shard exports as its pnr_serve_model_version gauge.
  uint64_t max_version() const;

 private:
  const ModelRegistry* registry_;
  uint64_t seen_epoch_ = 0;
  std::map<std::string, std::shared_ptr<const ServedModel>> models_;
  std::vector<std::shared_ptr<const ServedModel>> ordered_;
};

}  // namespace pnr

#endif  // PNR_SERVE_REGISTRY_H_
