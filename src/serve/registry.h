// ModelRegistry: named, hot-swappable PNrule models for serving.
//
// Each entry is an immutable ServedModel snapshot held by shared_ptr.
// Lookups copy the pointer under a short mutex; request handlers then score
// against their snapshot with no further coordination, so a concurrent
// Load (hot-swap) never stalls traffic and never changes a request's model
// mid-flight — in-flight requests finish on the snapshot they grabbed, the
// old model is freed when the last of them drops its reference.
//
// Loading is schema-checked: the model text is parsed against the schema
// sidecar (data/schema_io.h), so attribute/category references that do not
// resolve fail the Load, never a request.

#ifndef PNR_SERVE_REGISTRY_H_
#define PNR_SERVE_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/schema.h"
#include "pnrule/pnrule.h"

namespace pnr {

/// An immutable, shareable (model, schema) snapshot.
struct ServedModel {
  ServedModel(std::string name_in, Schema schema_in,
              PnruleClassifier model_in)
      : name(std::move(name_in)),
        schema(std::move(schema_in)),
        model(std::move(model_in)) {}

  std::string name;
  Schema schema;
  PnruleClassifier model;
  uint64_t version = 1;  ///< bumped on every hot-swap of this name
};

class ModelRegistry {
 public:
  /// Parses `model_path` against the schema at `schema_path` and installs
  /// the result under `name`, atomically replacing any previous version.
  Status Load(const std::string& name, const std::string& model_path,
              const std::string& schema_path);

  /// Installs an already-built model (tests, in-process benches).
  void Install(const std::string& name, Schema schema,
               PnruleClassifier model);

  /// Removes `name`; true when something was removed. In-flight requests
  /// holding the snapshot finish normally.
  bool Remove(const std::string& name);

  /// Snapshot for `name`, or nullptr.
  std::shared_ptr<const ServedModel> Get(const std::string& name) const;

  /// All current snapshots, ordered by name.
  std::vector<std::shared_ptr<const ServedModel>> List() const;

  size_t size() const;

 private:
  void InstallLocked(const std::string& name,
                     std::shared_ptr<ServedModel> entry);

  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<const ServedModel>> models_;
};

}  // namespace pnr

#endif  // PNR_SERVE_REGISTRY_H_
