#include "serve/registry.h"

#include <algorithm>
#include <utility>

#include "assoc/model_io.h"
#include "common/file_io.h"
#include "data/schema_io.h"
#include "pnrule/model_io.h"

namespace pnr {

Status ModelRegistry::Load(const std::string& name,
                           const std::string& model_path,
                           const std::string& schema_path) {
  auto schema = LoadSchema(schema_path);
  if (!schema.ok()) {
    return Status(schema.status().code(),
                  "model '" + name + "': " + schema.status().message());
  }
  Schema schema_value = std::move(schema).value();
  // One read, then a cheap header sniff decides the parser — both model
  // families load through the same flag and serve through the same fleet.
  auto text = ReadFileToString(model_path);
  if (!text.ok()) {
    return Status(text.status().code(),
                  "model '" + name + "': " + text.status().message());
  }
  std::shared_ptr<ServedModel> entry;
  if (LooksLikeAssocModel(*text)) {
    auto model = ParseAssocModel(*text, schema_value);
    if (!model.ok()) {
      return Status(model.status().code(),
                    "model '" + name + "': " + model.status().message());
    }
    const size_t cars = model->rules().size();
    entry = std::make_shared<ServedModel>(
        name, std::move(schema_value),
        std::make_shared<const AssocClassifier>(std::move(model).value()),
        "assoc", cars, 0);
  } else {
    auto model = ParsePnruleModel(*text, schema_value);
    if (!model.ok()) {
      return Status(model.status().code(),
                    "model '" + name + "': " + model.status().message());
    }
    entry = std::make_shared<ServedModel>(name, std::move(schema_value),
                                          std::move(model).value());
  }
  std::lock_guard<std::mutex> lock(mutex_);
  InstallLocked(name, std::move(entry));
  return Status::OK();
}

void ModelRegistry::Install(const std::string& name, Schema schema,
                            PnruleClassifier model) {
  auto entry =
      std::make_shared<ServedModel>(name, std::move(schema), std::move(model));
  std::lock_guard<std::mutex> lock(mutex_);
  InstallLocked(name, std::move(entry));
}

void ModelRegistry::InstallLocked(const std::string& name,
                                  std::shared_ptr<ServedModel> entry) {
  const auto it = models_.find(name);
  if (it != models_.end()) entry->version = it->second->version + 1;
  models_[name] = std::move(entry);  // atomic swap: old snapshot lives on
                                     // until its last in-flight user drops it
  epoch_.fetch_add(1, std::memory_order_release);
}

bool ModelRegistry::Remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (models_.erase(name) == 0) return false;
  epoch_.fetch_add(1, std::memory_order_release);
  return true;
}

std::shared_ptr<const ServedModel> ModelRegistry::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = models_.find(name);
  return it == models_.end() ? nullptr : it->second;
}

std::vector<std::shared_ptr<const ServedModel>> ModelRegistry::List() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::shared_ptr<const ServedModel>> out;
  out.reserve(models_.size());
  for (const auto& [name, entry] : models_) out.push_back(entry);
  return out;
}

size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return models_.size();
}

size_t SnapshotCache::Refresh() {
  if (registry_->epoch_.load(std::memory_order_acquire) == seen_epoch_) {
    return 0;
  }
  std::map<std::string, std::shared_ptr<const ServedModel>> previous =
      std::move(models_);
  std::lock_guard<std::mutex> lock(registry_->mutex_);
  models_ = registry_->models_;
  ordered_.clear();
  ordered_.reserve(models_.size());
  for (const auto& [name, entry] : models_) ordered_.push_back(entry);
  // Read the epoch under the mutex: a swap racing with this copy either
  // landed in the table we just copied or bumps the epoch we re-read here,
  // forcing another refresh next round. Either way no update is skipped.
  seen_epoch_ = registry_->epoch_.load(std::memory_order_acquire);
  // Swaps observed = version advance of names seen both before and after
  // (covers several installs landing between two refreshes); a name's first
  // appearance is a load, not a swap.
  size_t swaps = 0;
  for (const auto& [name, entry] : models_) {
    const auto it = previous.find(name);
    if (it != previous.end() && entry->version > it->second->version) {
      swaps += entry->version - it->second->version;
    }
  }
  return swaps;
}

uint64_t SnapshotCache::max_version() const {
  uint64_t version = 0;
  for (const auto& entry : ordered_) {
    version = std::max(version, entry->version);
  }
  return version;
}

std::shared_ptr<const ServedModel> SnapshotCache::Get(
    const std::string& name) const {
  if (name.empty()) {
    return models_.size() == 1 ? ordered_.front() : nullptr;
  }
  const auto it = models_.find(name);
  return it == models_.end() ? nullptr : it->second;
}

}  // namespace pnr
