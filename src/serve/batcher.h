// Dynamic micro-batcher: coalesces concurrent predict requests into row
// blocks and scores each block with one CompiledRuleSet/ScoreBatch call.
//
// Why: the compiled scorers (rules/compiled_rule_set.h) are columnar —
// their SIMD span kernels amortize over rows, so scoring 256 rows in one
// call is far cheaper than 256 one-row calls. A server receiving many
// small concurrent requests recovers that batch shape by *waiting a tiny
// bounded time* for peers: rows append to a per-model open batch, and the
// batch flushes when it reaches `max_batch_rows` (the arriving request
// becomes the leader and scores it) or when it turns `max_delay_us` old
// (a timer thread flushes it). Under load batches fill instantly and the
// delay bound never binds; when idle a lone request pays at most
// max_delay_us extra latency.
//
// Batching never changes results: ScoreBatch output is bit-identical per
// row for any batch composition, thread count, and block size (the PR 2
// contract), so a row scores the same whether it flushed alone or packed
// with 4095 strangers.
//
// Backpressure: rows waiting in open batches are bounded by
// `max_queue_rows`; past that, Score returns Unavailable immediately
// (the server answers 503 + Retry-After) instead of queueing unboundedly.
// Deadlines: a request whose deadline passes while its batch is queued
// gets DeadlineExceeded; its rows still flush with the batch, the result
// is simply discarded (waiters are shared_ptr, so late completion writes
// to live memory).

#ifndef PNR_SERVE_BATCHER_H_
#define PNR_SERVE_BATCHER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "eval/batch.h"
#include "serve/metrics.h"
#include "serve/registry.h"

namespace pnr {

struct BatcherConfig {
  /// false = score every request immediately on its own thread (the
  /// per-request baseline the load generator compares against).
  bool enabled = true;
  /// Flush an open batch when it reaches this many rows.
  size_t max_batch_rows = 1024;
  /// Flush an open batch when its oldest row is this old.
  uint64_t max_delay_us = 2000;
  /// Admission bound on rows waiting in open batches (503 beyond).
  size_t max_queue_rows = 1 << 16;
  /// Threads/block size for the ScoreBatch call itself.
  BatchScoreOptions score_options;
};

/// Column-major rows resolved against a model's schema: one vector per
/// attribute, numeric or categorical per its type. The unit requests are
/// parsed into and batches accumulate.
struct RowBlock {
  size_t num_rows = 0;
  std::vector<std::vector<double>> numeric;
  std::vector<std::vector<CategoryId>> categorical;

  /// Sizes the per-attribute vectors for `schema` (empty columns).
  void InitFor(const Schema& schema);
  /// Appends all rows of `other` (same schema shape).
  void Append(const RowBlock& other);
};

class MicroBatcher {
 public:
  struct Result {
    std::vector<double> scores;
    std::vector<uint8_t> predicted;
  };

  MicroBatcher(BatcherConfig config, ServerMetrics* metrics);
  ~MicroBatcher();

  /// Flushes every open batch and stops the timer thread. Idempotent;
  /// Score calls after shutdown fail with Unavailable.
  void Shutdown();

  /// Scores `rows` against `model`, blocking until the enclosing batch
  /// flushed (bounded by max_delay_us) or `deadline` passed.
  Status Score(std::shared_ptr<const ServedModel> model, RowBlock rows,
               std::chrono::steady_clock::time_point deadline, Result* out);

  const BatcherConfig& config() const { return config_; }

 private:
  struct Waiter {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    Status status;
    Result result;
  };
  struct Slice {
    std::shared_ptr<Waiter> waiter;
    size_t offset = 0;
    size_t count = 0;
  };
  struct PendingBatch {
    std::shared_ptr<const ServedModel> model;
    RowBlock rows;
    std::vector<Slice> slices;
    std::chrono::steady_clock::time_point opened_at;
  };

  void TimerLoop();
  /// Scores a batch and completes its waiters. Runs outside the lock.
  void Execute(PendingBatch batch);

  BatcherConfig config_;
  ServerMetrics* metrics_;

  std::mutex mutex_;
  std::condition_variable timer_cv_;
  /// Open batches keyed by model snapshot — a hot-swap naturally starts a
  /// fresh batch while the old snapshot's batch drains.
  std::map<const ServedModel*, PendingBatch> pending_;
  size_t pending_rows_ = 0;
  bool shutdown_ = false;
  std::thread timer_;
};

}  // namespace pnr

#endif  // PNR_SERVE_BATCHER_H_
