// Reactor-native micro-batcher: coalesces the predict requests one shard
// drained in a single epoll round and scores them with one compiled
// ScoreBatch call per model.
//
// Why: the compiled scorers (rules/compiled_rule_set.h) are columnar —
// their SIMD span kernels amortize over rows, so scoring 256 rows in one
// call is far cheaper than 256 one-row calls. The old batcher recovered
// batch shape by *waiting* (a timer thread flushed batches max_delay_us
// old), which taxed lone requests with the full delay. The reactor gives
// the same shape for free: every request that was readable in one
// epoll_wait round lands in the open batch, and the shard calls Flush()
// at end of round. Under load a round drains dozens of sockets and
// batches fill; an idle connection's lone request is flushed in the same
// round it arrived — zero added latency, no timer, no thread, no lock
// (the batcher is shard-private and single-threaded).
//
// Batching never changes results: ScoreBatch output is bit-identical per
// row for any batch composition, thread count, and block size (the PR 2
// contract), so a row scores the same whether it flushed alone or packed
// with 4095 strangers.
//
// Backpressure: rows waiting in open batches are bounded by
// `max_queue_rows`; past that, Enqueue returns Unavailable immediately
// (the server answers 503 + Retry-After) instead of queueing unboundedly.
// Completion is a callback, invoked synchronously from Flush/Enqueue on
// the shard thread — callees queue bytes on the connection, they never
// block.

#ifndef PNR_SERVE_BATCHER_H_
#define PNR_SERVE_BATCHER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/status.h"
#include "eval/batch.h"
#include "serve/metrics.h"
#include "serve/registry.h"

namespace pnr {

struct BatcherConfig {
  /// false = score every request immediately on arrival (the per-request
  /// baseline the load generator compares against).
  bool enabled = true;
  /// Flush an open batch early when it reaches this many rows.
  size_t max_batch_rows = 1024;
  /// Admission bound on rows waiting in open batches (503 beyond).
  size_t max_queue_rows = 1 << 16;
  /// Threads/block size for the ScoreBatch call itself.
  BatchScoreOptions score_options;
};

/// Column-major rows resolved against a model's schema: one vector per
/// attribute, numeric or categorical per its type. The unit requests are
/// parsed into and batches accumulate.
struct RowBlock {
  size_t num_rows = 0;
  std::vector<std::vector<double>> numeric;
  std::vector<std::vector<CategoryId>> categorical;

  /// Sizes the per-attribute vectors for `schema` (empty columns).
  void InitFor(const Schema& schema);
  /// Appends all rows of `other` (same schema shape).
  void Append(const RowBlock& other);
};

class MicroBatcher {
 public:
  struct Result {
    std::vector<double> scores;
    std::vector<uint8_t> predicted;
  };

  /// Invoked exactly once per accepted Enqueue, always on the shard
  /// thread, possibly synchronously from Enqueue itself.
  using Callback = std::function<void(const Status&, Result)>;

  MicroBatcher(BatcherConfig config, ServerMetrics* metrics);
  ~MicroBatcher();

  /// Adds `rows` to the open batch for `model`. Returns Unavailable when
  /// the queue bound would be exceeded or after Shutdown — the callback is
  /// NOT invoked in that case. With batching disabled (or max_batch_rows
  /// <= 1) the rows score immediately and the callback fires before
  /// Enqueue returns.
  Status Enqueue(std::shared_ptr<const ServedModel> model, RowBlock rows,
                 Callback done);

  /// Scores every open batch. The shard calls this at the end of each
  /// reactor round, so no request waits past the round it arrived in.
  void Flush();

  /// Flushes outstanding work and rejects further Enqueues. Idempotent.
  void Shutdown();

  /// Rows currently waiting in open batches.
  size_t pending_rows() const { return pending_rows_; }

  const BatcherConfig& config() const { return config_; }

 private:
  struct Slice {
    Callback done;
    size_t offset = 0;
    size_t count = 0;
  };
  /// Requests keep their own RowBlocks until flush: a batch of one (the
  /// lone-request case) moves its block straight into Execute with zero
  /// coalescing cost, so enabling batching never taxes an idle connection.
  struct PendingBatch {
    std::shared_ptr<const ServedModel> model;
    std::vector<RowBlock> blocks;
    std::vector<Slice> slices;
    size_t total_rows = 0;
  };

  /// Scores a batch and runs its callbacks.
  void Execute(PendingBatch batch);
  void UpdateQueueGauge();

  BatcherConfig config_;
  ServerMetrics* metrics_;

  /// Open batches keyed by model snapshot — a hot-swap naturally starts a
  /// fresh batch while the old snapshot's batch drains.
  std::map<const ServedModel*, PendingBatch> pending_;
  size_t pending_rows_ = 0;
  bool shutdown_ = false;
};

}  // namespace pnr

#endif  // PNR_SERVE_BATCHER_H_
