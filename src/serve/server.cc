#include "serve/server.h"

#include <algorithm>
#include <utility>

#include "common/string_util.h"
#include "serve/json.h"

namespace pnr {
namespace {

// Poll slice for idle keep-alive connections: short enough that one worker
// round-robins dozens of connections responsively, long enough not to spin.
constexpr int kIdlePollMs = 10;

// Response sent straight from the acceptor when the connection queue is
// full — the cheapest possible rejection (no parsing, no worker).
constexpr char kQueueFull503[] =
    "HTTP/1.1 503 Service Unavailable\r\n"
    "Retry-After: 1\r\n"
    "Content-Length: 22\r\n"
    "Content-Type: application/json\r\n"
    "Connection: close\r\n"
    "\r\n"
    "{\"error\":\"queue full\"}";

uint64_t ElapsedUs(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

HttpResponse JsonError(int status, const std::string& message) {
  HttpResponse response;
  response.status = status;
  response.headers.emplace_back("Content-Type", "application/json");
  response.body = "{\"error\":";
  AppendJsonString(&response.body, message);
  response.body += "}";
  if (status == 503) response.headers.emplace_back("Retry-After", "1");
  return response;
}

std::string_view PathOf(const HttpRequest& request) {
  std::string_view target = request.target;
  const size_t query = target.find('?');
  if (query != std::string_view::npos) target = target.substr(0, query);
  return target;
}

}  // namespace

PredictionServer::PredictionServer(ServerConfig config,
                                   ModelRegistry* registry)
    : config_(config),
      registry_(registry),
      batcher_(config.batcher, &metrics_) {}

PredictionServer::~PredictionServer() { Shutdown(); }

Status PredictionServer::Start() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mutex_);
  if (started_) return Status::FailedPrecondition("server already started");
  auto listen = ListenTcp(config_.port, /*backlog=*/128, &port_);
  if (!listen.ok()) return listen.status();
  auto wake = MakeWakePipe();
  if (!wake.ok()) return wake.status();
  listen_fd_ = std::move(listen).value();
  wake_ = std::move(wake).value();
  started_ = true;
  acceptor_ = std::thread([this] { AcceptLoop(); });
  const size_t num_workers = std::max<size_t>(1, config_.num_threads);
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void PredictionServer::Shutdown() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mutex_);
  if (!started_) return;
  stopping_.store(true);
  wake_.Wake();
  if (acceptor_.joinable()) acceptor_.join();
  listen_fd_.Reset();  // refuse new connections from here on
  // Flush open batches *before* joining: workers blocked in Score get their
  // results now (in-flight requests finish with real responses) instead of
  // waiting out max_delay_us; a request submitted after this point answers
  // 503, which is correct drain behaviour.
  batcher_.Shutdown();
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

void PredictionServer::AcceptLoop() {
  const int fds[2] = {listen_fd_.get(), wake_.read_end.get()};
  while (!stopping_.load()) {
    auto ready = WaitAnyReadable(fds, 2, /*timeout_ms=*/-1);
    if (!ready.ok()) return;
    if (*ready != 0) return;  // wake pipe: shutdown
    auto accepted = AcceptConnection(listen_fd_.get());
    if (!accepted.ok()) {
      if (accepted.status().code() == StatusCode::kNotFound) return;
      continue;  // transient accept failure
    }
    metrics_.connections_total.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_unique<Conn>();
    conn->fd = std::move(accepted).value();
    conn->parser = HttpRequestParser(
        HttpRequestParser::Limits{16 * 1024, config_.max_body_bytes});
    conn->last_active = std::chrono::steady_clock::now();
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      if (queue_.size() >= config_.max_queued_connections) {
        metrics_.rejected_total.fetch_add(1, std::memory_order_relaxed);
        SendAll(conn->fd.get(), kQueueFull503);
        continue;  // conn closes as it goes out of scope
      }
      metrics_.connections_active.fetch_add(1, std::memory_order_relaxed);
      queue_.push_back(std::move(conn));
    }
    queue_cv_.notify_one();
  }
}

void PredictionServer::WorkerLoop() {
  for (;;) {
    std::unique_ptr<Conn> conn;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return stopping_.load() || !queue_.empty();
      });
      if (queue_.empty()) {
        if (stopping_.load()) return;
        continue;
      }
      conn = std::move(queue_.front());
      queue_.pop_front();
    }
    if (ServeConnection(conn.get())) {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      queue_.push_back(std::move(conn));
      // No notify: if every worker is busy the requeued connection is
      // picked up on the next pop; notifying here would thundering-herd.
    } else {
      CloseConnection(std::move(conn));
    }
  }
}

void PredictionServer::CloseConnection(std::unique_ptr<Conn> conn) {
  metrics_.connections_active.fetch_sub(1, std::memory_order_relaxed);
  conn.reset();
}

bool PredictionServer::CompleteRequest(Conn* conn) {
  // A request head has started arriving: block on this connection until the
  // full request is in (bounded by the request deadline), rather than
  // requeueing a half-read parse.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(config_.request_deadline_ms);
  char buf[16384];
  while (conn->parser.state() == HttpRequestParser::State::kNeedMore) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    const int remaining_ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count());
    auto n = RecvSome(conn->fd.get(), buf, sizeof(buf),
                      std::max(1, remaining_ms));
    if (!n.ok() || *n == 0) return false;
    conn->parser.Consume(std::string_view(buf, *n));
  }
  return true;
}

bool PredictionServer::ServeConnection(Conn* conn) {
  char buf[16384];
  for (;;) {
    const bool stopping = stopping_.load();
    if (conn->parser.state() == HttpRequestParser::State::kError) {
      HttpResponse response = JsonError(conn->parser.error_status(),
                                        conn->parser.error_message());
      response.close_connection = true;
      metrics_.endpoint_other().Record(response.status, 0);
      SendAll(conn->fd.get(), RenderHttpResponse(response));
      return false;
    }
    if (conn->parser.state() == HttpRequestParser::State::kDone) {
      const HttpRequest request = conn->parser.Take();
      const auto start = std::chrono::steady_clock::now();
      HttpResponse response = Route(request);
      response.close_connection = stopping || !request.keep_alive();
      const Status sent =
          SendAll(conn->fd.get(), RenderHttpResponse(response));
      (void)ElapsedUs(start);  // latency recorded inside Route per endpoint
      if (!sent.ok() || response.close_connection) return false;
      conn->last_active = std::chrono::steady_clock::now();
      continue;  // a pipelined request may already be buffered
    }
    // NeedMore. A partially-read request blocks here until complete; an
    // idle connection gets one short poll slice, then is requeued so the
    // worker can serve other connections.
    if (!conn->parser.idle()) {
      if (!CompleteRequest(conn)) return false;
      continue;
    }
    auto readable = WaitReadable(conn->fd.get(), stopping ? 0 : kIdlePollMs);
    if (!readable.ok()) return false;
    if (!*readable) {
      if (stopping) return false;  // drain: drop idle keep-alive conns
      const auto idle_for = std::chrono::steady_clock::now() -
                            conn->last_active;
      return idle_for < std::chrono::milliseconds(config_.idle_timeout_ms);
    }
    auto n = RecvSome(conn->fd.get(), buf, sizeof(buf), 0);
    if (!n.ok() || *n == 0) return false;  // EOF or error
    conn->parser.Consume(std::string_view(buf, *n));
  }
}

HttpResponse PredictionServer::Route(const HttpRequest& request) {
  const std::string_view path = PathOf(request);
  const auto start = std::chrono::steady_clock::now();
  HttpResponse response;
  EndpointMetrics* endpoint = &metrics_.endpoint_other();
  if (path == "/healthz") {
    endpoint = &metrics_.endpoint_healthz();
    if (request.method != "GET") {
      response = JsonError(405, "healthz is GET-only");
    } else {
      response.headers.emplace_back("Content-Type", "text/plain");
      response.body = "ok\n";
    }
  } else if (path == "/metrics") {
    endpoint = &metrics_.endpoint_metrics();
    if (request.method != "GET") {
      response = JsonError(405, "metrics is GET-only");
    } else {
      response.headers.emplace_back("Content-Type",
                                    "text/plain; version=0.0.4");
      response.body = metrics_.Render();
    }
  } else if (path == "/v1/models") {
    endpoint = &metrics_.endpoint_models();
    response = request.method == "GET"
                   ? HandleModels()
                   : JsonError(405, "models is GET-only");
  } else if (path == "/v1/predict") {
    endpoint = &metrics_.endpoint_predict();
    response = request.method == "POST"
                   ? HandlePredict(request)
                   : JsonError(405, "predict is POST-only");
  } else {
    response = JsonError(404, "no such endpoint: " + std::string(path));
  }
  endpoint->Record(response.status, ElapsedUs(start));
  return response;
}

HttpResponse PredictionServer::HandleModels() {
  std::string body = "{\"models\":[";
  bool first = true;
  for (const auto& entry : registry_->List()) {
    if (!first) body += ',';
    first = false;
    body += "{\"name\":";
    AppendJsonString(&body, entry->name);
    body += ",\"p_rules\":" + std::to_string(entry->model.p_rules().size());
    body += ",\"n_rules\":" + std::to_string(entry->model.n_rules().size());
    body += ",\"threshold\":";
    AppendJsonNumber(&body, entry->model.threshold());
    body += ",\"attributes\":" +
            std::to_string(entry->schema.num_attributes());
    body += ",\"version\":" + std::to_string(entry->version);
    body += '}';
  }
  body += "]}";
  HttpResponse response;
  response.headers.emplace_back("Content-Type", "application/json");
  response.body = std::move(body);
  return response;
}

HttpResponse PredictionServer::HandlePredict(const HttpRequest& request) {
  auto doc = ParseJson(request.body);
  if (!doc.ok()) return JsonError(400, doc.status().message());
  if (!doc->is_object()) return JsonError(400, "body must be a JSON object");

  // Resolve the model: explicit name, or the sole loaded model.
  std::string name;
  if (const JsonValue* model_field = doc->Find("model")) {
    if (!model_field->is_string()) {
      return JsonError(400, "\"model\" must be a string");
    }
    name = model_field->text;
  } else {
    const auto all = registry_->List();
    if (all.size() != 1) {
      return JsonError(400,
                       "\"model\" is required when several models are "
                       "loaded");
    }
    name = all[0]->name;
  }
  std::shared_ptr<const ServedModel> model = registry_->Get(name);
  if (model == nullptr) {
    return JsonError(404, "unknown model '" + name + "'");
  }

  const JsonValue* rows = doc->Find("rows");
  if (rows == nullptr || !rows->is_array()) {
    return JsonError(400, "\"rows\" must be an array of objects");
  }

  const Schema& schema = model->schema;
  RowBlock block;
  block.InitFor(schema);
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    const auto attr = static_cast<AttrIndex>(a);
    if (schema.attribute(attr).is_numeric()) {
      block.numeric[a].reserve(rows->array.size());
    } else {
      block.categorical[a].reserve(rows->array.size());
    }
  }
  for (size_t r = 0; r < rows->array.size(); ++r) {
    const JsonValue& row = rows->array[r];
    if (!row.is_object()) {
      return JsonError(400, "row " + std::to_string(r) +
                                " is not an object");
    }
    for (size_t a = 0; a < schema.num_attributes(); ++a) {
      const auto attr = static_cast<AttrIndex>(a);
      const Attribute& attribute = schema.attribute(attr);
      const JsonValue* cell = row.Find(attribute.name());
      if (cell == nullptr) {
        return JsonError(400, "row " + std::to_string(r) +
                                  " is missing attribute '" +
                                  attribute.name() + "'");
      }
      if (attribute.is_numeric()) {
        double value = 0.0;
        // Numbers arrive as JSON numbers or numeric strings; both re-parse
        // through ParseDouble, the same path CSV ingestion uses, which
        // keeps served scores bit-identical to offline scoring.
        if (!cell->is_number() &&
            !(cell->is_string() && ParseDouble(cell->text, &value))) {
          return JsonError(400, "row " + std::to_string(r) +
                                    ": attribute '" + attribute.name() +
                                    "' must be numeric");
        }
        if (cell->is_number()) value = cell->number_value;
        block.numeric[a].push_back(value);
      } else {
        if (!cell->is_string() && !cell->is_number()) {
          return JsonError(400, "row " + std::to_string(r) +
                                    ": attribute '" + attribute.name() +
                                    "' must be a string");
        }
        // Unknown categories map to the no-match sentinel: conditions on
        // the attribute simply never fire, mirroring offline behaviour for
        // values unseen at training time.
        block.categorical[a].push_back(
            attribute.FindCategory(cell->text));
      }
    }
  }
  block.num_rows = rows->array.size();

  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(config_.request_deadline_ms);
  MicroBatcher::Result result;
  const Status scored =
      batcher_.Score(std::move(model), std::move(block), deadline, &result);
  if (!scored.ok()) {
    switch (scored.code()) {
      case StatusCode::kUnavailable:
        return JsonError(503, scored.message());
      case StatusCode::kDeadlineExceeded:
        return JsonError(504, scored.message());
      default:
        return JsonError(500, scored.message());
    }
  }

  std::string body;
  body.reserve(32 + result.scores.size() * 12);
  body += "{\"model\":";
  AppendJsonString(&body, name);
  body += ",\"scores\":[";
  for (size_t i = 0; i < result.scores.size(); ++i) {
    if (i > 0) body += ',';
    AppendJsonNumber(&body, result.scores[i]);
  }
  body += "],\"predicted\":[";
  for (size_t i = 0; i < result.predicted.size(); ++i) {
    if (i > 0) body += ',';
    body += result.predicted[i] ? '1' : '0';
  }
  body += "]}";
  HttpResponse response;
  response.headers.emplace_back("Content-Type", "application/json");
  response.body = std::move(body);
  return response;
}

}  // namespace pnr
