#include "serve/server.h"

#include <algorithm>
#include <thread>
#include <utility>

namespace pnr {
namespace {

ShardOptions ShardOptionsFrom(const ServerConfig& config) {
  ShardOptions options;
  options.max_connections = config.max_connections_per_shard;
  options.max_body_bytes = config.max_body_bytes;
  options.request_deadline_ms = config.request_deadline_ms;
  options.idle_timeout_ms = config.idle_timeout_ms;
  options.max_pipeline_depth = config.max_pipeline_depth;
  options.max_outbuf_bytes = config.max_outbuf_bytes;
  options.batcher = config.batcher;
  return options;
}

}  // namespace

PredictionServer::PredictionServer(ServerConfig config,
                                   ModelRegistry* registry)
    : config_(config), registry_(registry) {}

PredictionServer::~PredictionServer() { Shutdown(); }

Status PredictionServer::Start() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mutex_);
  if (started_) return Status::FailedPrecondition("server already started");

  size_t num_shards = config_.num_shards;
  if (num_shards == 0) {
    num_shards = std::max(1u, std::thread::hardware_concurrency());
  }

  // The fleet /metrics renderer aggregates every shard; it reads only
  // relaxed atomics, so any shard can serve it without coordination.
  auto render = [this] { return RenderMetricsText(); };

  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<ServeShard>(
        i, ShardOptionsFrom(config_), registry_, render));
  }

  // Shard 0 binds first: with config.port == 0 it draws the ephemeral
  // port, and the remaining shards bind the same port via SO_REUSEPORT.
  const bool reuse_port = num_shards > 1;
  Status st = shards_[0]->Listen(config_.port, &port_, reuse_port);
  if (!st.ok()) {
    shards_.clear();
    return st;
  }
  for (size_t i = 1; i < num_shards; ++i) {
    uint16_t bound = 0;
    st = shards_[i]->Listen(port_, &bound, reuse_port);
    if (!st.ok()) {
      shards_.clear();
      return st;
    }
  }
  for (auto& shard : shards_) {
    st = shard->Start();
    if (!st.ok()) {
      for (auto& started : shards_) started->RequestStop();
      for (auto& started : shards_) started->Join();
      shards_.clear();
      return st;
    }
  }
  started_ = true;
  return Status::OK();
}

void PredictionServer::Shutdown() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mutex_);
  if (!started_) return;
  stopping_.store(true);
  // Signal every shard first, then join: the fleet drains in parallel and
  // total drain time is one shard's, not the sum.
  for (auto& shard : shards_) shard->RequestStop();
  for (auto& shard : shards_) shard->Join();
}

MetricsSnapshot PredictionServer::Totals() const {
  MetricsSnapshot total;
  for (const auto& shard : shards_) total.Merge(shard->metrics().Snap());
  return total;
}

std::string PredictionServer::RenderMetricsText() const {
  std::vector<const ServerMetrics*> metrics;
  metrics.reserve(shards_.size());
  for (const auto& shard : shards_) metrics.push_back(&shard->metrics());
  return RenderFleetMetrics(metrics);
}

}  // namespace pnr
