// Minimal JSON for the serving wire protocol.
//
// The predict endpoint exchanges small JSON documents (a model name plus an
// array of row objects in; score arrays out). This parser covers exactly
// RFC 8259 — objects, arrays, strings with escapes, numbers, booleans,
// null — with a recursion-depth bound, and keeps the *raw text* of every
// number alongside its parsed value: row cells are re-parsed with the same
// ParseDouble used by CSV ingestion, which is how served scores stay
// bit-identical to offline scoring of the same textual data.

#ifndef PNR_SERVE_JSON_H_
#define PNR_SERVE_JSON_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace pnr {

/// A parsed JSON value. Object member order is preserved.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  /// For numbers: the exact source token (e.g. "1e-3"); for strings: the
  /// unescaped text.
  std::string text;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return type == Type::kNull; }
  bool is_bool() const { return type == Type::kBool; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
  bool is_array() const { return type == Type::kArray; }
  bool is_object() const { return type == Type::kObject; }

  /// First member named `key`, or nullptr.
  const JsonValue* Find(std::string_view key) const;
};

/// Parses one JSON document; trailing non-whitespace is an error.
StatusOr<JsonValue> ParseJson(std::string_view text);

/// Appends `text` to `out` as a quoted, escaped JSON string literal.
void AppendJsonString(std::string* out, std::string_view text);

/// Appends `value` to `out` in shortest round-trip form ("%.17g" — parsing
/// the rendered token recovers the exact double).
void AppendJsonNumber(std::string* out, double value);

}  // namespace pnr

#endif  // PNR_SERVE_JSON_H_
