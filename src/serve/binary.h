// Compact binary wire protocol for high-volume predict callers.
//
// JSON predict bodies spend most of their serving cost on text: number
// formatting/parsing and per-cell key lookups dominate once scoring is
// compiled. This protocol removes both. A request is one length-prefixed
// frame carrying column-major row data; numerics travel as raw IEEE-754
// doubles (bit-identity to offline scoring is trivial — the very bits the
// caller holds are the bits ScoreBatch reads), categoricals as
// length-prefixed strings resolved against the model schema exactly like
// the JSON path (unknown categories map to the no-match sentinel).
//
// Binary rides the same port as HTTP: the first byte a connection sends is
// sniffed, and 0xB5 — a value no HTTP method, or any ASCII text, starts
// with — selects this protocol for the connection's lifetime.
//
// All integers are little-endian. Frame layout:
//
//   request:  u8 magic=0xB5 | u8 version=1 | u16 name_len | u32 payload_len
//             name_len bytes of model name (empty = the sole loaded model)
//             payload (payload_len - name_len bytes):
//               u32 num_rows
//               per schema attribute, in schema order:
//                 numeric:     num_rows x f64 (raw bits)
//                 categorical: num_rows x (u16 byte_len | bytes)
//
//   response: u8 magic=0xB6 | u8 status | u16 reserved=0 | u32 payload_len
//             status 0 (ok): u32 num_rows | num_rows x f64 scores
//                            | num_rows x u8 predicted
//             status != 0:   UTF-8 error message
//
// Framing errors (bad magic/version, oversize lengths) poison the
// connection: the server answers an error frame and closes, because the
// stream offset can no longer be trusted. Content errors (unknown model,
// malformed payload) answer an error frame and keep the connection — the
// frame boundary is intact, the next frame parses normally.

#ifndef PNR_SERVE_BINARY_H_
#define PNR_SERVE_BINARY_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "serve/batcher.h"

namespace pnr {

inline constexpr uint8_t kBinaryRequestMagic = 0xB5;
inline constexpr uint8_t kBinaryResponseMagic = 0xB6;
inline constexpr uint8_t kBinaryVersion = 1;
inline constexpr size_t kBinaryHeaderBytes = 8;

/// Response status codes (u8 on the wire).
enum class BinaryStatus : uint8_t {
  kOk = 0,
  kBadRequest = 1,        // malformed frame or payload (HTTP 400)
  kNotFound = 2,          // unknown model (HTTP 404)
  kUnavailable = 3,       // backpressure, retry later (HTTP 503)
  kDeadlineExceeded = 4,  // request older than its deadline (HTTP 504)
  kInternal = 5,          // scoring failure (HTTP 500)
  kTooLarge = 6,          // frame over the configured bound (HTTP 413)
};

/// One parsed request frame; `payload` excludes the model name.
struct BinaryRequest {
  std::string model;
  std::string payload;
};

/// Incremental frame parser, the binary twin of HttpRequestParser: feed
/// bytes with Consume until kDone or kError; Take yields the request and
/// re-arms for the next frame on the same connection (pipelined leftover
/// bytes are kept). kError is terminal — framing is unrecoverable.
class BinaryRequestParser {
 public:
  enum class State { kNeedMore, kDone, kError };

  struct Limits {
    size_t max_name_bytes = 1024;
    size_t max_payload_bytes = 8 * 1024 * 1024;
  };

  BinaryRequestParser() = default;
  explicit BinaryRequestParser(Limits limits) : limits_(limits) {}

  State Consume(std::string_view data);
  State state() const { return state_; }

  /// True when no bytes of a next frame are buffered.
  bool idle() const { return buffer_.empty() && state_ == State::kNeedMore; }

  BinaryStatus error_code() const { return error_code_; }
  const std::string& error_message() const { return error_message_; }

  /// On kDone: moves the request out and advances to any pipelined frame.
  BinaryRequest Take();

 private:
  State Fail(BinaryStatus code, std::string message);
  State Advance();

  Limits limits_;
  std::string buffer_;
  BinaryRequest request_;
  size_t frame_needed_ = 0;  ///< name + payload bytes once the header parsed
  size_t name_len_ = 0;
  bool header_done_ = false;
  State state_ = State::kNeedMore;
  BinaryStatus error_code_ = BinaryStatus::kBadRequest;
  std::string error_message_;
};

/// Decodes a request payload (everything after the model name) against
/// `schema` into column-major rows. Strictly bounds-checked: any read past
/// the payload, trailing bytes, or row count the payload cannot hold is an
/// InvalidArgument naming the offending attribute.
Status DecodeBinaryRows(std::string_view payload, const Schema& schema,
                        RowBlock* out);

/// Client-side encoders (bench, probe CLI, tests).
/// Appends the column-major payload for rows [begin, end) of `data`.
void EncodeBinaryRows(const Dataset& data, RowId begin, RowId end,
                      std::string* out);
/// Wraps an encoded payload into a full request frame for `model`.
std::string EncodeBinaryRequest(std::string_view model,
                                std::string_view payload);
/// Encodes a single-row payload from textual (name, value) cells matched
/// against `schema` — the probe CLI's entry point. Numeric values must
/// parse as doubles; categorical values travel as-is. Unknown attribute
/// names are an error; attributes without a cell get NaN / empty string.
Status EncodeBinaryRowFromText(
    const Schema& schema,
    const std::vector<std::pair<std::string, std::string>>& cells,
    std::string* out);

/// Server-side response rendering.
std::string RenderBinaryOk(const std::vector<double>& scores,
                           const std::vector<uint8_t>& predicted);
std::string RenderBinaryError(BinaryStatus code, std::string_view message);

/// Client-side response frame parse. Consumes exactly one frame from the
/// front of `data` when complete: sets `*consumed` and returns OK, or
/// returns OK with `*consumed == 0` when more bytes are needed. Malformed
/// frames are InvalidArgument.
struct BinaryResponse {
  BinaryStatus status = BinaryStatus::kOk;
  std::vector<double> scores;
  std::vector<uint8_t> predicted;
  std::string error;
};
Status ParseBinaryResponse(std::string_view data, BinaryResponse* out,
                           size_t* consumed);

/// The HTTP status equivalent of a binary code (metrics bucketing).
int HttpStatusOf(BinaryStatus code);

}  // namespace pnr

#endif  // PNR_SERVE_BINARY_H_
