// Lock-free serving metrics with a Prometheus-style text exposition.
//
// Counters are plain relaxed atomics — the hot path (one Record per
// request) must not contend. Latency quantiles come from fixed
// power-of-two bucket histograms: exact enough for p50/p99/p999
// dashboards, constant memory, and mergeable without locks.
//
// The sharded fleet gives each shard its own ServerMetrics instance, so
// recording never crosses a core. /metrics is assembled on demand:
// every shard is snapshotted (consistent-enough relaxed reads), snapshots
// merge into fleet aggregates rendered under the PR 4 metric names, and
// the same snapshots render per-shard `pnr_serve_shard_*` series so a
// dashboard can see kernel-level SO_REUSEPORT imbalance.

#ifndef PNR_SERVE_METRICS_H_
#define PNR_SERVE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace pnr {

/// Histogram over microsecond latencies (or any uint64 magnitude): bucket i
/// holds samples in [2^i, 2^(i+1)), bucket 0 additionally holds 0.
class BucketHistogram {
 public:
  static constexpr size_t kNumBuckets = 32;

  /// A plain-value copy of the histogram: mergeable across shards and
  /// quantile-queryable without touching the live atomics again.
  struct Snapshot {
    std::array<uint64_t, kNumBuckets> buckets{};
    uint64_t count = 0;
    uint64_t sum = 0;

    void Merge(const Snapshot& other);
    /// Approximate quantile (q in [0,1]): linear interpolation inside the
    /// bucket holding the q-th sample. 0 when empty.
    double Quantile(double q) const;
  };

  void Record(uint64_t value);
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  double Quantile(double q) const { return Snap().Quantile(q); }
  Snapshot Snap() const;

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// Per-endpoint request counters.
struct EndpointMetrics {
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> errors_4xx{0};
  std::atomic<uint64_t> errors_5xx{0};
  BucketHistogram latency_us;

  void Record(int http_status, uint64_t latency_us_value);
};

struct EndpointSnapshot {
  uint64_t requests = 0;
  uint64_t errors_4xx = 0;
  uint64_t errors_5xx = 0;
  BucketHistogram::Snapshot latency_us;

  void Merge(const EndpointSnapshot& other);
};

/// Value snapshot of one shard's ServerMetrics. Doubles as the fleet
/// aggregate: merging every shard's snapshot yields the totals tests and
/// the bench assert on.
struct MetricsSnapshot {
  EndpointSnapshot predict;
  EndpointSnapshot models;
  EndpointSnapshot healthz;
  EndpointSnapshot metrics;
  EndpointSnapshot other;

  uint64_t rows_scored = 0;
  uint64_t batches_flushed = 0;
  BucketHistogram::Snapshot batch_rows;
  int64_t queue_rows = 0;
  uint64_t rejected_total = 0;
  uint64_t deadline_exceeded = 0;
  int64_t connections_active = 0;
  uint64_t connections_total = 0;
  uint64_t model_version = 0;      ///< gauge; fleet aggregate is the max
  uint64_t model_swaps_total = 0;  ///< counter; fleet aggregate is the sum

  void Merge(const MetricsSnapshot& other);
};

/// All counters one shard records. The fleet owns one per shard.
class ServerMetrics {
 public:
  EndpointMetrics& endpoint_predict() { return predict_; }
  EndpointMetrics& endpoint_models() { return models_; }
  EndpointMetrics& endpoint_healthz() { return healthz_; }
  EndpointMetrics& endpoint_metrics() { return metrics_; }
  EndpointMetrics& endpoint_other() { return other_; }

  // Batcher counters.
  std::atomic<uint64_t> rows_scored{0};
  std::atomic<uint64_t> batches_flushed{0};
  BucketHistogram batch_rows;          ///< rows per flushed batch
  std::atomic<int64_t> queue_rows{0};  ///< gauge: rows pending in batches

  // Backpressure / lifecycle counters.
  std::atomic<uint64_t> rejected_total{0};      ///< 503s (queue saturation)
  std::atomic<uint64_t> deadline_exceeded{0};   ///< 504s
  std::atomic<int64_t> connections_active{0};   ///< gauge
  std::atomic<uint64_t> connections_total{0};

  // Hot-swap observability (fed by the shard's snapshot-cache refresh; the
  // stream retrain orchestrator's registry installs surface here).
  std::atomic<uint64_t> model_version{0};     ///< gauge: max cached version
  std::atomic<uint64_t> model_swaps_total{0};  ///< observed swaps

  MetricsSnapshot Snap() const;

  /// Renders this instance alone (single-shard exposition).
  std::string Render() const;

 private:
  EndpointMetrics predict_;
  EndpointMetrics models_;
  EndpointMetrics healthz_;
  EndpointMetrics metrics_;
  EndpointMetrics other_;
};

/// Renders the whole fleet: merged aggregates under the established
/// pnr_* names, then one `pnr_serve_shard_*` series group per shard
/// (labels shard="0"..).
std::string RenderFleetMetrics(const std::vector<const ServerMetrics*>& shards);

}  // namespace pnr

#endif  // PNR_SERVE_METRICS_H_
