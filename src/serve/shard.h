// ServeShard: one shared-nothing serving reactor.
//
// A shard is a single thread owning everything its traffic touches: an
// epoll set, a SO_REUSEPORT listening socket (the kernel load-balances
// connections across shards by 4-tuple hash), a MicroBatcher, a
// shard-private SnapshotCache of the model registry, and a ServerMetrics
// instance. Nothing on the request path takes a lock or writes memory
// another shard reads — cross-shard coordination is limited to the
// registry's epoch atomic (one relaxed load per request) and the
// stop eventfd.
//
// The event loop is level-triggered epoll. Each round drains every ready
// socket, parses as many complete requests as arrived (HTTP/1.1 pipelined
// keep-alive or binary frames — the first byte a connection ever sends
// picks the protocol), dispatches them into the batcher, then calls
// MicroBatcher::Flush() once: every request readable in a round scores in
// that round, so a lone request never waits on a timer and concurrent
// requests coalesce into one compiled ScoreBatch call per model.
//
// Responses go out in request order per connection: each request claims a
// sequence slot at parse time; completions (which may land out of order
// when a healthz interleaves with a batched predict) fill their slot, and
// bytes are written only from the contiguous ready prefix.
//
// Backpressure is layered and read-shaped: when a connection has
// `max_pipeline_depth` requests in flight or `max_outbuf_bytes` of
// unflushed response bytes, the shard drops EPOLLIN interest (mandatory
// under level-triggering — a paused-but-armed socket would spin) until
// the client drains; a full batcher queue answers 503 + Retry-After; a
// completion past its deadline answers 504.
//
// Drain (RequestStop): the listener closes, buffered pipelined requests
// finish with `Connection: close`, idle connections drop immediately, and
// anything still open at the drain deadline is force-closed.

#ifndef PNR_SERVE_SHARD_H_
#define PNR_SERVE_SHARD_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/net.h"
#include "common/status.h"
#include "serve/batcher.h"
#include "serve/binary.h"
#include "serve/http.h"
#include "serve/metrics.h"
#include "serve/registry.h"

namespace pnr {

struct ShardOptions {
  /// Open connections per shard; beyond it new connections get an
  /// immediate canned 503 and close.
  size_t max_connections = 1024;
  /// Request body bound (413 beyond).
  size_t max_body_bytes = 8 * 1024 * 1024;
  /// Per-request deadline: batch wait + score (504 beyond). Also bounds
  /// how long a partially-received request may trickle, and the drain.
  uint64_t request_deadline_ms = 5000;
  /// Keep-alive connections idle longer than this are closed.
  uint64_t idle_timeout_ms = 60000;
  /// In-flight pipelined requests per connection before reads pause.
  size_t max_pipeline_depth = 64;
  /// Unflushed response bytes per connection before reads pause.
  size_t max_outbuf_bytes = 4 * 1024 * 1024;
  /// Micro-batching policy (per shard).
  BatcherConfig batcher;
};

class ServeShard {
 public:
  /// `registry` must outlive the shard. `render_metrics` produces the
  /// /metrics body (the fleet injects a renderer that aggregates every
  /// shard, keeping this layer free of fleet knowledge).
  ServeShard(size_t index, ShardOptions options, ModelRegistry* registry,
             std::function<std::string()> render_metrics);
  ~ServeShard();

  /// Binds the shard's listener on 127.0.0.1:`port` (SO_REUSEPORT when
  /// `reuse_port`), non-blocking. `*bound_port` receives the actual port.
  Status Listen(uint16_t port, uint16_t* bound_port, bool reuse_port);

  /// Starts the reactor thread.
  Status Start();

  /// Begins graceful drain; returns immediately. Safe from any thread and
  /// from signal-adjacent contexts (one atomic store + eventfd write).
  void RequestStop();

  void Join();

  size_t index() const { return index_; }
  ServerMetrics& metrics() { return metrics_; }
  const ServerMetrics& metrics() const { return metrics_; }

 private:
  enum class Proto : uint8_t { kUnknown, kHttp, kBinary };

  /// One response slot: claimed per request in arrival order, filled by
  /// its completion, written only from the contiguous ready prefix.
  struct Slot {
    bool ready = false;
    bool close_after = false;
    std::string bytes;
  };

  struct Conn {
    uint64_t id = 0;
    UniqueFd fd;
    Proto proto = Proto::kUnknown;
    HttpRequestParser http;
    BinaryRequestParser binary;
    std::deque<Slot> slots;
    uint64_t base_seq = 0;  ///< sequence number of slots.front()
    uint64_t next_seq = 0;  ///< claimed by the next parsed request
    std::string outbuf;
    size_t outpos = 0;
    bool want_close = false;  ///< close once slots and outbuf are empty
    bool paused = false;      ///< EPOLLIN interest dropped (backpressure)
    uint32_t armed_events = 0;  ///< events currently registered in epoll
    bool dirty = false;       ///< queued for the end-of-round pump
    std::chrono::steady_clock::time_point last_active;
  };

  void Run();
  void HandleAccept();
  void HandleReadable(Conn* conn);
  void HandleWritable(Conn* conn);
  /// Feeds freshly-read bytes into the connection's protocol parser and
  /// dispatches every complete request.
  void FeedConn(Conn* conn, std::string_view data);
  void DispatchHttp(Conn* conn, HttpRequest request);
  void DispatchBinary(Conn* conn, BinaryRequest request);
  /// Builds the RowBlock for a JSON predict body; returns an error
  /// response string on failure (empty string = ok).
  void PredictJson(Conn* conn, uint64_t seq, const HttpRequest& request,
                   bool close_after);
  std::string RenderModels();
  /// Refreshes the snapshot cache and folds observed hot-swaps into the
  /// shard's model_version gauge / model_swaps_total counter.
  void RefreshSnapshots();

  /// Claims the next slot on `conn` and returns its sequence number.
  uint64_t ClaimSlot(Conn* conn);
  /// Fills slot `seq` of connection `conn_id` (drops silently when the
  /// connection is gone) and queues the connection for pumping.
  void CompleteSlot(uint64_t conn_id, uint64_t seq, std::string bytes,
                    bool close_after);
  /// Moves the ready prefix of slots into outbuf, writes what the socket
  /// accepts, updates epoll interest, and closes when finished+want_close.
  void PumpConn(Conn* conn);
  void MarkDirty(Conn* conn);
  void UpdateInterest(Conn* conn);
  bool ShouldPauseReads(const Conn* conn) const;
  void CloseConn(uint64_t conn_id);
  /// Closes trickling requests past the deadline, idle keep-alives past
  /// the idle timeout, and (in drain) finished connections.
  void Sweep(std::chrono::steady_clock::time_point now);
  int ComputeWaitMs(std::chrono::steady_clock::time_point now) const;

  const size_t index_;
  const ShardOptions options_;
  ModelRegistry* const registry_;
  const std::function<std::string()> render_metrics_;

  ServerMetrics metrics_;
  MicroBatcher batcher_;
  SnapshotCache snapshots_;

  UniqueFd listen_fd_;
  EventFd stop_event_;
  EpollSet epoll_;
  std::atomic<bool> stop_requested_{false};
  bool draining_ = false;
  std::chrono::steady_clock::time_point drain_deadline_{};

  uint64_t next_conn_id_ = 16;  ///< 0 = listener tag, 1 = eventfd tag
  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns_;
  std::vector<uint64_t> dirty_;

  std::thread thread_;
};

}  // namespace pnr

#endif  // PNR_SERVE_SHARD_H_
