#include "serve/http.h"

#include <algorithm>
#include <cctype>
#include <limits>

#include "common/string_util.h"

namespace pnr {
namespace {

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view FindHeader(
    const std::vector<std::pair<std::string, std::string>>& headers,
    std::string_view name) {
  for (const auto& [key, value] : headers) {
    if (EqualsIgnoreCase(key, name)) return value;
  }
  return {};
}

// Strict Content-Length grammar (RFC 9110 §8.6): one or more ASCII digits,
// nothing else — no sign, no inner whitespace, no thousands grouping — and
// any value that overflows size_t is malformed rather than clamped. The
// permissive ParseInt64 (which trims and accepts '-') is exactly what let
// " 5", "+5" and "-0" through before.
bool ParseContentLength(std::string_view text, size_t* out) {
  if (text.empty()) return false;
  size_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    const size_t digit = static_cast<size_t>(c - '0');
    if (value > (std::numeric_limits<size_t>::max() - digit) / 10) {
      return false;  // would overflow size_t
    }
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

}  // namespace

std::string_view HttpRequest::Header(std::string_view name) const {
  return FindHeader(headers, name);
}

std::string_view HttpResponse::Header(std::string_view name) const {
  return FindHeader(headers, name);
}

bool HttpRequest::keep_alive() const {
  const std::string_view connection = Header("Connection");
  if (EqualsIgnoreCase(connection, "close")) return false;
  if (version == "HTTP/1.0") {
    return EqualsIgnoreCase(connection, "keep-alive");
  }
  return true;  // HTTP/1.1 default
}

const char* HttpReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

std::string RenderHttpResponse(const HttpResponse& response) {
  std::string out;
  out.reserve(response.body.size() + 256);
  out += "HTTP/1.1 ";
  out += std::to_string(response.status);
  out += ' ';
  out += HttpReasonPhrase(response.status);
  out += "\r\n";
  for (const auto& [key, value] : response.headers) {
    out += key;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "Content-Length: ";
  out += std::to_string(response.body.size());
  out += "\r\n";
  if (response.close_connection) out += "Connection: close\r\n";
  out += "\r\n";
  out += response.body;
  return out;
}

HttpRequestParser::State HttpRequestParser::Fail(int status,
                                                 std::string message) {
  state_ = State::kError;
  error_status_ = status;
  error_message_ = std::move(message);
  return state_;
}

HttpRequestParser::State HttpRequestParser::Consume(std::string_view data) {
  if (state_ == State::kError) return state_;
  buffer_.append(data.data(), data.size());
  return Advance();
}

HttpRequestParser::State HttpRequestParser::Advance() {
  if (!head_done_) {
    // Tolerate bare-LF line endings alongside CRLF.
    size_t head_end = buffer_.find("\r\n\r\n");
    size_t delim = 4;
    const size_t lf_end = buffer_.find("\n\n");
    if (lf_end != std::string::npos &&
        (head_end == std::string::npos || lf_end < head_end)) {
      head_end = lf_end;
      delim = 2;
    }
    if (head_end == std::string::npos) {
      if (buffer_.size() > limits_.max_head_bytes) {
        return Fail(400, "request head too large");
      }
      state_ = State::kNeedMore;
      return state_;
    }
    if (head_end > limits_.max_head_bytes) {
      return Fail(400, "request head too large");
    }
    const std::string head = buffer_.substr(0, head_end);
    buffer_.erase(0, head_end + delim);

    request_ = HttpRequest{};
    size_t line_start = 0;
    bool first = true;
    while (line_start <= head.size()) {
      size_t line_end = head.find('\n', line_start);
      if (line_end == std::string::npos) line_end = head.size();
      std::string_view line(head.data() + line_start, line_end - line_start);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      line_start = line_end + 1;
      if (line.empty()) continue;
      if (first) {
        first = false;
        const auto parts = SplitWhitespace(line);
        if (parts.size() != 3) return Fail(400, "malformed request line");
        request_.method = parts[0];
        request_.target = parts[1];
        request_.version = parts[2];
        if (request_.version != "HTTP/1.1" &&
            request_.version != "HTTP/1.0") {
          return Fail(400, "unsupported HTTP version");
        }
        continue;
      }
      const size_t colon = line.find(':');
      if (colon == std::string::npos) return Fail(400, "malformed header");
      request_.headers.emplace_back(
          std::string(TrimWhitespace(line.substr(0, colon))),
          std::string(TrimWhitespace(line.substr(colon + 1))));
    }
    if (first) return Fail(400, "empty request head");

    // Body framing. Content-Length is the only framing this subset speaks,
    // and it is parsed strictly: request smuggling lives exactly in the
    // corners where two framings disagree, so duplicate headers (even with
    // identical values) and Content-Length next to Transfer-Encoding are
    // both rejected outright.
    size_t content_length_headers = 0;
    std::string_view length;
    for (const auto& [key, value] : request_.headers) {
      if (EqualsIgnoreCase(key, "Content-Length")) {
        ++content_length_headers;
        length = value;
      }
    }
    if (content_length_headers > 1) {
      return Fail(400, "duplicate Content-Length");
    }
    body_needed_ = 0;
    if (content_length_headers == 1) {
      if (!request_.Header("Transfer-Encoding").empty()) {
        return Fail(400, "Content-Length alongside Transfer-Encoding");
      }
      size_t parsed = 0;
      if (!ParseContentLength(length, &parsed)) {
        return Fail(400, "bad Content-Length");
      }
      if (parsed > limits_.max_body_bytes) {
        return Fail(413, "request body too large");
      }
      body_needed_ = parsed;
    } else if (!request_.Header("Transfer-Encoding").empty()) {
      return Fail(400, "chunked bodies not supported");
    }
    head_done_ = true;
  }

  if (buffer_.size() < body_needed_) {
    state_ = State::kNeedMore;
    return state_;
  }
  request_.body = buffer_.substr(0, body_needed_);
  buffer_.erase(0, body_needed_);
  state_ = State::kDone;
  return state_;
}

HttpRequest HttpRequestParser::Take() {
  HttpRequest request = std::move(request_);
  request_ = HttpRequest{};
  head_done_ = false;
  body_needed_ = 0;
  state_ = buffer_.empty() ? State::kNeedMore : Advance();
  return request;
}

StatusOr<HttpClient> HttpClient::Connect(uint16_t port) {
  auto fd = ConnectLoopback(port);
  if (!fd.ok()) return fd.status();
  return HttpClient(std::move(fd).value());
}

Status HttpClient::SendRaw(std::string_view data) {
  return SendAll(fd_.get(), data);
}

StatusOr<HttpResponse> HttpClient::Roundtrip(const std::string& method,
                                             const std::string& target,
                                             const std::string& body,
                                             int timeout_ms) {
  std::string request;
  request.reserve(body.size() + 128);
  request += method;
  request += ' ';
  request += target;
  request += " HTTP/1.1\r\nHost: localhost\r\n";
  if (!body.empty() || method == "POST") {
    request += "Content-Type: application/json\r\nContent-Length: ";
    request += std::to_string(body.size());
    request += "\r\n";
  }
  request += "\r\n";
  request += body;
  Status sent = SendAll(fd_.get(), request);
  if (!sent.ok()) return sent;
  return ReadResponse(timeout_ms);
}

StatusOr<HttpResponse> HttpClient::ReadResponse(int timeout_ms) {
  // Reuse the request parser's framing by reading head + Content-Length.
  std::string data = std::move(leftover_);
  leftover_.clear();
  char buf[8192];
  size_t head_end = std::string::npos;
  for (;;) {
    head_end = data.find("\r\n\r\n");
    if (head_end != std::string::npos) break;
    auto n = RecvSome(fd_.get(), buf, sizeof(buf), timeout_ms);
    if (!n.ok()) return n.status();
    if (*n == 0) return Status::IOError("connection closed mid-response");
    data.append(buf, *n);
  }
  HttpResponse response;
  const std::string head = data.substr(0, head_end);
  data.erase(0, head_end + 4);

  size_t line_start = 0;
  bool first = true;
  size_t content_length = 0;
  while (line_start < head.size()) {
    size_t line_end = head.find('\n', line_start);
    if (line_end == std::string::npos) line_end = head.size();
    std::string_view line(head.data() + line_start, line_end - line_start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    line_start = line_end + 1;
    if (first) {
      first = false;
      const auto parts = SplitWhitespace(line);
      long long status = 0;
      if (parts.size() < 2 || !ParseInt64(parts[1], &status)) {
        return Status::IOError("malformed status line");
      }
      response.status = static_cast<int>(status);
      continue;
    }
    const size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    response.headers.emplace_back(
        std::string(TrimWhitespace(line.substr(0, colon))),
        std::string(TrimWhitespace(line.substr(colon + 1))));
  }
  const std::string_view length = response.Header("Content-Length");
  long long parsed = 0;
  if (!length.empty() && ParseInt64(length, &parsed) && parsed >= 0) {
    content_length = static_cast<size_t>(parsed);
  }
  while (data.size() < content_length) {
    auto n = RecvSome(fd_.get(), buf, sizeof(buf), timeout_ms);
    if (!n.ok()) return n.status();
    if (*n == 0) return Status::IOError("connection closed mid-body");
    data.append(buf, *n);
  }
  response.body = data.substr(0, content_length);
  leftover_ = data.substr(content_length);
  return response;
}

}  // namespace pnr
