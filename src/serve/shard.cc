#include "serve/shard.h"

#include <algorithm>
#include <utility>

#include "common/string_util.h"
#include "serve/json.h"

namespace pnr {
namespace {

constexpr uint64_t kListenerTag = 0;
constexpr uint64_t kStopTag = 1;

// Per-connection read cap per reactor round: enough to drain a deep
// pipeline burst, bounded so one firehose connection cannot starve the
// round (level-triggered epoll re-reports whatever is left).
constexpr int kMaxReadsPerRound = 8;

// Sent straight from accept when the shard is at max_connections — the
// cheapest possible rejection (no parse, no registration).
constexpr char kOverCapacity503[] =
    "HTTP/1.1 503 Service Unavailable\r\n"
    "Retry-After: 1\r\n"
    "Content-Length: 22\r\n"
    "Content-Type: application/json\r\n"
    "Connection: close\r\n"
    "\r\n"
    "{\"error\":\"queue full\"}";

uint64_t ElapsedUs(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

HttpResponse JsonError(int status, const std::string& message) {
  HttpResponse response;
  response.status = status;
  response.headers.emplace_back("Content-Type", "application/json");
  response.body = "{\"error\":";
  AppendJsonString(&response.body, message);
  response.body += "}";
  if (status == 503) response.headers.emplace_back("Retry-After", "1");
  return response;
}

std::string_view PathOf(const HttpRequest& request) {
  std::string_view target = request.target;
  const size_t query = target.find('?');
  if (query != std::string_view::npos) target = target.substr(0, query);
  return target;
}

/// Resolves one JSON predict body into (model, rows). Returns a rendered
/// error response via `*error` on failure.
bool ResolvePredictBody(const HttpRequest& request,
                        const SnapshotCache& snapshots,
                        std::shared_ptr<const ServedModel>* model_out,
                        RowBlock* block_out, std::string* name_out,
                        HttpResponse* error) {
  auto doc = ParseJson(request.body);
  if (!doc.ok()) {
    *error = JsonError(400, doc.status().message());
    return false;
  }
  if (!doc->is_object()) {
    *error = JsonError(400, "body must be a JSON object");
    return false;
  }

  // Resolve the model: explicit name, or the sole loaded model.
  std::string name;
  if (const JsonValue* model_field = doc->Find("model")) {
    if (!model_field->is_string()) {
      *error = JsonError(400, "\"model\" must be a string");
      return false;
    }
    name = model_field->text;
  } else {
    const auto& all = snapshots.List();
    if (all.size() != 1) {
      *error = JsonError(
          400, "\"model\" is required when several models are loaded");
      return false;
    }
    name = all[0]->name;
  }
  std::shared_ptr<const ServedModel> model = snapshots.Get(name);
  if (model == nullptr) {
    *error = JsonError(404, "unknown model '" + name + "'");
    return false;
  }

  const JsonValue* rows = doc->Find("rows");
  if (rows == nullptr || !rows->is_array()) {
    *error = JsonError(400, "\"rows\" must be an array of objects");
    return false;
  }

  const Schema& schema = model->schema;
  RowBlock block;
  block.InitFor(schema);
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    const auto attr = static_cast<AttrIndex>(a);
    if (schema.attribute(attr).is_numeric()) {
      block.numeric[a].reserve(rows->array.size());
    } else {
      block.categorical[a].reserve(rows->array.size());
    }
  }
  for (size_t r = 0; r < rows->array.size(); ++r) {
    const JsonValue& row = rows->array[r];
    if (!row.is_object()) {
      *error = JsonError(400, "row " + std::to_string(r) +
                                  " is not an object");
      return false;
    }
    for (size_t a = 0; a < schema.num_attributes(); ++a) {
      const auto attr = static_cast<AttrIndex>(a);
      const Attribute& attribute = schema.attribute(attr);
      const JsonValue* cell = row.Find(attribute.name());
      if (cell == nullptr) {
        *error = JsonError(400, "row " + std::to_string(r) +
                                    " is missing attribute '" +
                                    attribute.name() + "'");
        return false;
      }
      if (attribute.is_numeric()) {
        double value = 0.0;
        // Numbers arrive as JSON numbers or numeric strings; both re-parse
        // through ParseDouble, the same path CSV ingestion uses, which
        // keeps served scores bit-identical to offline scoring.
        if (!cell->is_number() &&
            !(cell->is_string() && ParseDouble(cell->text, &value))) {
          *error = JsonError(400, "row " + std::to_string(r) +
                                      ": attribute '" + attribute.name() +
                                      "' must be numeric");
          return false;
        }
        if (cell->is_number()) value = cell->number_value;
        block.numeric[a].push_back(value);
      } else {
        if (!cell->is_string() && !cell->is_number()) {
          *error = JsonError(400, "row " + std::to_string(r) +
                                      ": attribute '" + attribute.name() +
                                      "' must be a string");
          return false;
        }
        // Unknown categories map to the no-match sentinel: conditions on
        // the attribute simply never fire, mirroring offline behaviour for
        // values unseen at training time.
        block.categorical[a].push_back(attribute.FindCategory(cell->text));
      }
    }
  }
  block.num_rows = rows->array.size();

  *model_out = std::move(model);
  *block_out = std::move(block);
  *name_out = std::move(name);
  return true;
}

std::string RenderPredictBody(const std::string& name,
                              const MicroBatcher::Result& result) {
  std::string body;
  body.reserve(32 + result.scores.size() * 12);
  body += "{\"model\":";
  AppendJsonString(&body, name);
  body += ",\"scores\":[";
  for (size_t i = 0; i < result.scores.size(); ++i) {
    if (i > 0) body += ',';
    AppendJsonNumber(&body, result.scores[i]);
  }
  body += "],\"predicted\":[";
  for (size_t i = 0; i < result.predicted.size(); ++i) {
    if (i > 0) body += ',';
    body += result.predicted[i] ? '1' : '0';
  }
  body += "]}";
  return body;
}

}  // namespace

ServeShard::ServeShard(size_t index, ShardOptions options,
                       ModelRegistry* registry,
                       std::function<std::string()> render_metrics)
    : index_(index),
      options_(std::move(options)),
      registry_(registry),
      render_metrics_(std::move(render_metrics)),
      batcher_(options_.batcher, &metrics_),
      snapshots_(registry) {}

ServeShard::~ServeShard() {
  if (thread_.joinable()) {
    RequestStop();
    Join();
  }
}

Status ServeShard::Listen(uint16_t port, uint16_t* bound_port,
                          bool reuse_port) {
  auto listen = ListenTcp(port, /*backlog=*/512, bound_port, reuse_port);
  if (!listen.ok()) return listen.status();
  listen_fd_ = std::move(listen).value();
  return SetNonBlocking(listen_fd_.get());
}

Status ServeShard::Start() {
  if (!listen_fd_.valid()) {
    return Status::FailedPrecondition("shard has no listener");
  }
  auto stop_event = EventFd::Create();
  if (!stop_event.ok()) return stop_event.status();
  stop_event_ = std::move(stop_event).value();
  auto epoll = EpollSet::Create();
  if (!epoll.ok()) return epoll.status();
  epoll_ = std::move(epoll).value();
  Status st = epoll_.Add(listen_fd_.get(), EPOLLIN, kListenerTag);
  if (!st.ok()) return st;
  st = epoll_.Add(stop_event_.fd(), EPOLLIN, kStopTag);
  if (!st.ok()) return st;
  thread_ = std::thread([this] { Run(); });
  return Status::OK();
}

void ServeShard::RequestStop() {
  stop_requested_.store(true, std::memory_order_release);
  if (stop_event_.fd() >= 0) stop_event_.Signal();
}

void ServeShard::Join() {
  if (thread_.joinable()) thread_.join();
}

void ServeShard::Run() {
  epoll_event events[64];
  for (;;) {
    auto now = std::chrono::steady_clock::now();
    if (!draining_ && stop_requested_.load(std::memory_order_acquire)) {
      draining_ = true;
      drain_deadline_ =
          now + std::chrono::milliseconds(options_.request_deadline_ms);
      if (listen_fd_.valid()) {
        // Connections the kernel already completed are real clients mid
        // first request: accept them now, then refuse everything later.
        HandleAccept();
        epoll_.Del(listen_fd_.get());
        listen_fd_.Reset();
      }
      // Pipelined requests already on the wire when the stop landed are
      // in-flight work: read them now, or the Sweep below would mistake
      // their connections for idle and reset them (close() with unread
      // bytes sends RST, discarding any responses in the client's buffer).
      std::vector<uint64_t> ids;
      ids.reserve(conns_.size());
      for (const auto& [id, conn] : conns_) ids.push_back(id);
      for (const uint64_t id : ids) {
        auto it = conns_.find(id);
        if (it != conns_.end()) HandleReadable(it->second.get());
      }
      Sweep(now);  // idle keep-alive connections drop immediately
    }
    if (draining_ && conns_.empty()) break;

    auto ready = epoll_.Wait(events, 64, ComputeWaitMs(now));
    if (!ready.ok()) break;
    for (int i = 0; i < *ready; ++i) {
      const uint64_t tag = events[i].data.u64;
      if (tag == kListenerTag) {
        HandleAccept();
        continue;
      }
      if (tag == kStopTag) {
        stop_event_.Drain();
        continue;
      }
      auto it = conns_.find(tag);
      if (it == conns_.end()) continue;  // closed earlier this round
      Conn* conn = it->second.get();
      if ((events[i].events & EPOLLERR) != 0) {
        CloseConn(tag);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) {
        HandleWritable(conn);
        if (conns_.find(tag) == conns_.end()) continue;
      }
      if ((events[i].events & (EPOLLIN | EPOLLHUP)) != 0) {
        HandleReadable(conn);
      }
    }

    // End of round: everything that arrived this round scores now, in one
    // ScoreBatch call per model. This is what makes a lone request as fast
    // as the no-batching path while bursts still coalesce.
    batcher_.Flush();

    for (size_t i = 0; i < dirty_.size(); ++i) {
      auto it = conns_.find(dirty_[i]);
      if (it == conns_.end()) continue;
      it->second->dirty = false;
      PumpConn(it->second.get());
    }
    dirty_.clear();

    Sweep(std::chrono::steady_clock::now());
  }

  std::vector<uint64_t> open;
  open.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) open.push_back(id);
  for (const uint64_t id : open) CloseConn(id);
  batcher_.Shutdown();
}

int ServeShard::ComputeWaitMs(
    std::chrono::steady_clock::time_point now) const {
  // Rows enqueued outside the normal event flow (the drain-entry read
  // pass) must flush next round, not after a timeout.
  if (batcher_.pending_rows() > 0) return 0;
  auto next = std::chrono::steady_clock::time_point::max();
  if (draining_) next = std::min(next, drain_deadline_);
  const auto deadline = std::chrono::milliseconds(options_.request_deadline_ms);
  const auto idle = std::chrono::milliseconds(options_.idle_timeout_ms);
  for (const auto& [id, conn] : conns_) {
    const bool mid_request =
        (conn->proto == Proto::kHttp && !conn->http.idle()) ||
        (conn->proto == Proto::kBinary && !conn->binary.idle());
    next = std::min(next,
                    conn->last_active + (mid_request ? deadline : idle));
  }
  if (next == std::chrono::steady_clock::time_point::max()) return -1;
  if (next <= now) return 0;
  const auto wait =
      std::chrono::duration_cast<std::chrono::milliseconds>(next - now)
          .count() +
      1;
  return static_cast<int>(std::min<long long>(wait, 60000));
}

void ServeShard::Sweep(std::chrono::steady_clock::time_point now) {
  const bool force = draining_ && now >= drain_deadline_;
  const auto deadline = std::chrono::milliseconds(options_.request_deadline_ms);
  const auto idle = std::chrono::milliseconds(options_.idle_timeout_ms);
  std::vector<uint64_t> to_close;
  for (const auto& [id, conn] : conns_) {
    if (force) {
      to_close.push_back(id);
      continue;
    }
    const bool mid_request =
        (conn->proto == Proto::kHttp && !conn->http.idle()) ||
        (conn->proto == Proto::kBinary && !conn->binary.idle());
    const bool quiescent = !mid_request && conn->slots.empty() &&
                           conn->outpos >= conn->outbuf.size();
    if (draining_ && quiescent) {
      to_close.push_back(id);
      continue;
    }
    // A request trickling in slower than the request deadline, or a
    // keep-alive connection idle past its timeout, is dropped.
    if (mid_request && now - conn->last_active >= deadline) {
      to_close.push_back(id);
    } else if (quiescent && now - conn->last_active >= idle) {
      to_close.push_back(id);
    }
  }
  for (const uint64_t id : to_close) CloseConn(id);
}

void ServeShard::HandleAccept() {
  for (;;) {
    auto accepted = AcceptNb(listen_fd_.get());
    if (!accepted.ok()) return;  // would-block, closed, or transient error
    metrics_.connections_total.fetch_add(1, std::memory_order_relaxed);
    if (conns_.size() >= options_.max_connections) {
      metrics_.rejected_total.fetch_add(1, std::memory_order_relaxed);
      SendNb(accepted->get(), kOverCapacity503);  // best-effort, then close
      continue;
    }
    auto conn = std::make_unique<Conn>();
    conn->id = next_conn_id_++;
    conn->fd = std::move(accepted).value();
    conn->http = HttpRequestParser(
        HttpRequestParser::Limits{16 * 1024, options_.max_body_bytes});
    conn->binary = BinaryRequestParser(
        BinaryRequestParser::Limits{1024, options_.max_body_bytes});
    conn->last_active = std::chrono::steady_clock::now();
    conn->armed_events = EPOLLIN;
    const Status added = epoll_.Add(conn->fd.get(), EPOLLIN, conn->id);
    if (!added.ok()) continue;  // conn closes as it goes out of scope
    metrics_.connections_active.fetch_add(1, std::memory_order_relaxed);
    conns_.emplace(conn->id, std::move(conn));
  }
}

void ServeShard::CloseConn(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  epoll_.Del(it->second->fd.get());
  metrics_.connections_active.fetch_sub(1, std::memory_order_relaxed);
  conns_.erase(it);
}

void ServeShard::HandleReadable(Conn* conn) {
  const uint64_t id = conn->id;
  char buf[16384];
  for (int round = 0; round < kMaxReadsPerRound && !conn->paused; ++round) {
    auto r = RecvNb(conn->fd.get(), buf, sizeof(buf));
    if (!r.ok()) {
      CloseConn(id);
      return;
    }
    if (r->would_block) break;
    if (r->eof) {
      // Peer finished sending. Flush what is in flight, then close.
      conn->want_close = true;
      MarkDirty(conn);
      break;
    }
    conn->last_active = std::chrono::steady_clock::now();
    FeedConn(conn, std::string_view(buf, r->bytes));
    if (conns_.find(id) == conns_.end()) return;
    if (r->bytes < sizeof(buf)) break;  // socket drained
  }
  if (!conn->paused && ShouldPauseReads(conn)) {
    conn->paused = true;
    UpdateInterest(conn);
  }
}

void ServeShard::HandleWritable(Conn* conn) { PumpConn(conn); }

void ServeShard::FeedConn(Conn* conn, std::string_view data) {
  if (data.empty()) return;
  if (conn->proto == Proto::kUnknown) {
    // Protocol sniff: no HTTP method (indeed, no ASCII text) starts with
    // 0xB5, so the first byte decides the connection's protocol for life.
    conn->proto = static_cast<unsigned char>(data.front()) ==
                          kBinaryRequestMagic
                      ? Proto::kBinary
                      : Proto::kHttp;
  }
  if (conn->proto == Proto::kHttp) {
    conn->http.Consume(data);
    while (conn->http.state() == HttpRequestParser::State::kDone) {
      DispatchHttp(conn, conn->http.Take());
    }
    if (conn->http.state() == HttpRequestParser::State::kError) {
      HttpResponse response = JsonError(conn->http.error_status(),
                                        conn->http.error_message());
      response.close_connection = true;
      metrics_.endpoint_other().Record(response.status, 0);
      const uint64_t seq = ClaimSlot(conn);
      CompleteSlot(conn->id, seq, RenderHttpResponse(response),
                   /*close_after=*/true);
      // The stream is unframed from here; stop reading it.
      conn->paused = true;
      UpdateInterest(conn);
    }
  } else {
    conn->binary.Consume(data);
    while (conn->binary.state() == BinaryRequestParser::State::kDone) {
      DispatchBinary(conn, conn->binary.Take());
    }
    if (conn->binary.state() == BinaryRequestParser::State::kError) {
      metrics_.endpoint_other().Record(
          HttpStatusOf(conn->binary.error_code()), 0);
      const uint64_t seq = ClaimSlot(conn);
      CompleteSlot(conn->id, seq,
                   RenderBinaryError(conn->binary.error_code(),
                                     conn->binary.error_message()),
                   /*close_after=*/true);
      conn->paused = true;
      UpdateInterest(conn);
    }
  }
}

uint64_t ServeShard::ClaimSlot(Conn* conn) {
  conn->slots.emplace_back();
  return conn->next_seq++;
}

void ServeShard::CompleteSlot(uint64_t conn_id, uint64_t seq,
                              std::string bytes, bool close_after) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;  // connection died while the batch ran
  Conn* conn = it->second.get();
  const uint64_t index = seq - conn->base_seq;
  if (index >= conn->slots.size()) return;  // slot abandoned by a close
  Slot& slot = conn->slots[index];
  slot.ready = true;
  slot.bytes = std::move(bytes);
  slot.close_after = close_after;
  MarkDirty(conn);
}

void ServeShard::MarkDirty(Conn* conn) {
  if (conn->dirty) return;
  conn->dirty = true;
  dirty_.push_back(conn->id);
}

bool ServeShard::ShouldPauseReads(const Conn* conn) const {
  return conn->slots.size() >= options_.max_pipeline_depth ||
         conn->outbuf.size() - conn->outpos >= options_.max_outbuf_bytes;
}

void ServeShard::UpdateInterest(Conn* conn) {
  const bool needs_write = conn->outpos < conn->outbuf.size();
  const uint32_t desired =
      (conn->paused ? 0u : static_cast<uint32_t>(EPOLLIN)) |
      (needs_write ? static_cast<uint32_t>(EPOLLOUT) : 0u);
  if (desired == conn->armed_events) return;
  if (epoll_.Mod(conn->fd.get(), desired, conn->id).ok()) {
    conn->armed_events = desired;
  }
}

void ServeShard::PumpConn(Conn* conn) {
  const uint64_t id = conn->id;
  // Responses leave in request order: only the contiguous ready prefix of
  // slots may be written.
  while (!conn->slots.empty() && conn->slots.front().ready) {
    Slot& slot = conn->slots.front();
    conn->outbuf.append(slot.bytes);
    const bool close_after = slot.close_after;
    conn->slots.pop_front();
    ++conn->base_seq;
    if (close_after) {
      // Nothing responds after a Connection: close; in-flight later slots
      // are abandoned (their completions find no slot and drop).
      conn->want_close = true;
      conn->base_seq += conn->slots.size();
      conn->slots.clear();
      break;
    }
  }

  if (conn->outpos < conn->outbuf.size()) {
    auto sent = SendNb(conn->fd.get(),
                       std::string_view(conn->outbuf).substr(conn->outpos));
    if (!sent.ok()) {
      CloseConn(id);
      return;
    }
    conn->outpos += sent->bytes;
    if (conn->outpos >= conn->outbuf.size()) {
      conn->outbuf.clear();
      conn->outpos = 0;
    } else if (conn->outpos > (1u << 20)) {
      conn->outbuf.erase(0, conn->outpos);
      conn->outpos = 0;
    }
  }

  const bool flushed = conn->outpos >= conn->outbuf.size();
  if (flushed && conn->want_close && conn->slots.empty()) {
    CloseConn(id);
    return;
  }
  if (conn->paused && !conn->want_close && !ShouldPauseReads(conn) &&
      conn->http.state() != HttpRequestParser::State::kError &&
      conn->binary.state() != BinaryRequestParser::State::kError) {
    conn->paused = false;
    // Re-arming EPOLLIN re-reports any bytes that arrived while paused
    // (level-triggered), so nothing is lost by the pause.
  }
  UpdateInterest(conn);
}

std::string ServeShard::RenderModels() {
  std::string body = "{\"models\":[";
  bool first = true;
  for (const auto& entry : snapshots_.List()) {
    if (!first) body += ',';
    first = false;
    body += "{\"name\":";
    AppendJsonString(&body, entry->name);
    body += ",\"kind\":";
    AppendJsonString(&body, entry->kind);
    // p_rules/n_rules keep their historical names; for non-PNrule kinds they
    // report the primary (e.g. CAR count) and secondary rule counts.
    body += ",\"p_rules\":" + std::to_string(entry->primary_rules);
    body += ",\"n_rules\":" + std::to_string(entry->secondary_rules);
    body += ",\"threshold\":";
    AppendJsonNumber(&body, entry->model->threshold());
    body += ",\"attributes\":" +
            std::to_string(entry->schema.num_attributes());
    body += ",\"version\":" + std::to_string(entry->version);
    body += '}';
  }
  body += "]}";
  return body;
}

void ServeShard::RefreshSnapshots() {
  const size_t swaps = snapshots_.Refresh();
  if (swaps > 0) {
    metrics_.model_swaps_total.fetch_add(swaps, std::memory_order_relaxed);
  }
  metrics_.model_version.store(snapshots_.max_version(),
                               std::memory_order_relaxed);
}

void ServeShard::DispatchHttp(Conn* conn, HttpRequest request) {
  const auto start = std::chrono::steady_clock::now();
  // During drain every connection closes — but only after its last
  // buffered pipelined request, or the earlier responses' close would
  // abandon the rest (the parser holds a further complete request in
  // state kDone right now if there is one).
  const bool more_buffered =
      conn->http.state() == HttpRequestParser::State::kDone;
  const bool close_after =
      (draining_ && !more_buffered) || !request.keep_alive();
  const uint64_t seq = ClaimSlot(conn);
  const std::string_view path = PathOf(request);

  if (path == "/v1/predict") {
    if (request.method != "POST") {
      HttpResponse response = JsonError(405, "predict is POST-only");
      response.close_connection = close_after;
      metrics_.endpoint_predict().Record(response.status, ElapsedUs(start));
      CompleteSlot(conn->id, seq, RenderHttpResponse(response), close_after);
      return;
    }
    PredictJson(conn, seq, request, close_after);
    return;
  }

  HttpResponse response;
  EndpointMetrics* endpoint = &metrics_.endpoint_other();
  if (path == "/healthz") {
    endpoint = &metrics_.endpoint_healthz();
    if (request.method != "GET") {
      response = JsonError(405, "healthz is GET-only");
    } else {
      response.headers.emplace_back("Content-Type", "text/plain");
      response.body = "ok\n";
    }
  } else if (path == "/metrics") {
    endpoint = &metrics_.endpoint_metrics();
    if (request.method != "GET") {
      response = JsonError(405, "metrics is GET-only");
    } else {
      response.headers.emplace_back("Content-Type",
                                    "text/plain; version=0.0.4");
      response.body = render_metrics_();
    }
  } else if (path == "/v1/models") {
    endpoint = &metrics_.endpoint_models();
    if (request.method != "GET") {
      response = JsonError(405, "models is GET-only");
    } else {
      RefreshSnapshots();
      response.headers.emplace_back("Content-Type", "application/json");
      response.body = RenderModels();
    }
  } else {
    response = JsonError(404, "no such endpoint: " + std::string(path));
  }
  response.close_connection = close_after;
  endpoint->Record(response.status, ElapsedUs(start));
  CompleteSlot(conn->id, seq, RenderHttpResponse(response), close_after);
}

void ServeShard::PredictJson(Conn* conn, uint64_t seq,
                             const HttpRequest& request, bool close_after) {
  const auto start = std::chrono::steady_clock::now();
  RefreshSnapshots();

  std::shared_ptr<const ServedModel> model;
  RowBlock block;
  std::string name;
  HttpResponse error;
  if (!ResolvePredictBody(request, snapshots_, &model, &block, &name,
                          &error)) {
    error.close_connection = close_after;
    metrics_.endpoint_predict().Record(error.status, ElapsedUs(start));
    CompleteSlot(conn->id, seq, RenderHttpResponse(error), close_after);
    return;
  }

  const auto deadline =
      start + std::chrono::milliseconds(options_.request_deadline_ms);
  const uint64_t conn_id = conn->id;
  const Status queued = batcher_.Enqueue(
      std::move(model), std::move(block),
      [this, conn_id, seq, close_after, start, deadline,
       name = std::move(name)](const Status& status,
                               MicroBatcher::Result result) {
        HttpResponse response;
        if (!status.ok()) {
          response = JsonError(
              status.code() == StatusCode::kUnavailable ? 503 : 500,
              status.message());
        } else if (std::chrono::steady_clock::now() > deadline) {
          metrics_.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
          response = JsonError(504, "request deadline exceeded");
        } else {
          response.headers.emplace_back("Content-Type", "application/json");
          response.body = RenderPredictBody(name, result);
        }
        response.close_connection = close_after;
        metrics_.endpoint_predict().Record(response.status, ElapsedUs(start));
        CompleteSlot(conn_id, seq, RenderHttpResponse(response), close_after);
      });
  if (!queued.ok()) {
    HttpResponse response =
        JsonError(queued.code() == StatusCode::kUnavailable ? 503 : 500,
                  queued.message());
    response.close_connection = close_after;
    metrics_.endpoint_predict().Record(response.status, ElapsedUs(start));
    CompleteSlot(conn_id, seq, RenderHttpResponse(response), close_after);
  }
}

void ServeShard::DispatchBinary(Conn* conn, BinaryRequest request) {
  const auto start = std::chrono::steady_clock::now();
  const uint64_t seq = ClaimSlot(conn);
  const uint64_t conn_id = conn->id;
  const bool close_after =
      draining_ &&
      conn->binary.state() != BinaryRequestParser::State::kDone;
  RefreshSnapshots();

  auto fail = [&](BinaryStatus code, const std::string& message) {
    metrics_.endpoint_predict().Record(HttpStatusOf(code), ElapsedUs(start));
    CompleteSlot(conn_id, seq, RenderBinaryError(code, message), close_after);
  };

  std::shared_ptr<const ServedModel> model;
  if (request.model.empty()) {
    const auto& all = snapshots_.List();
    if (all.size() != 1) {
      fail(BinaryStatus::kBadRequest,
           "model name is required when several models are loaded");
      return;
    }
    model = all[0];
  } else {
    model = snapshots_.Get(request.model);
    if (model == nullptr) {
      fail(BinaryStatus::kNotFound,
           "unknown model '" + request.model + "'");
      return;
    }
  }

  RowBlock block;
  const Status decoded =
      DecodeBinaryRows(request.payload, model->schema, &block);
  if (!decoded.ok()) {
    fail(BinaryStatus::kBadRequest, decoded.message());
    return;
  }

  const auto deadline =
      start + std::chrono::milliseconds(options_.request_deadline_ms);
  const Status queued = batcher_.Enqueue(
      std::move(model), std::move(block),
      [this, conn_id, seq, close_after, start, deadline](
          const Status& status, MicroBatcher::Result result) {
        std::string frame;
        int http_status;
        if (!status.ok()) {
          const BinaryStatus code = status.code() == StatusCode::kUnavailable
                                        ? BinaryStatus::kUnavailable
                                        : BinaryStatus::kInternal;
          frame = RenderBinaryError(code, std::string(status.message()));
          http_status = HttpStatusOf(code);
        } else if (std::chrono::steady_clock::now() > deadline) {
          metrics_.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
          frame = RenderBinaryError(BinaryStatus::kDeadlineExceeded,
                                    "request deadline exceeded");
          http_status = 504;
        } else {
          frame = RenderBinaryOk(result.scores, result.predicted);
          http_status = 200;
        }
        metrics_.endpoint_predict().Record(http_status, ElapsedUs(start));
        CompleteSlot(conn_id, seq, std::move(frame), close_after);
      });
  if (!queued.ok()) {
    fail(queued.code() == StatusCode::kUnavailable
             ? BinaryStatus::kUnavailable
             : BinaryStatus::kInternal,
         std::string(queued.message()));
  }
}

}  // namespace pnr
