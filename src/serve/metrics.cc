#include "serve/metrics.h"

#include <cstdio>

namespace pnr {
namespace {

// Index of the highest set bit (0 for value 0 or 1).
size_t BucketIndex(uint64_t value) {
  size_t index = 0;
  while (value > 1 && index + 1 < BucketHistogram::kNumBuckets) {
    value >>= 1;
    ++index;
  }
  return index;
}

void AppendCounter(std::string* out, const char* name, const char* labels,
                   uint64_t value) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s%s %llu\n", name, labels,
                static_cast<unsigned long long>(value));
  *out += buf;
}

void AppendGauge(std::string* out, const char* name, int64_t value) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s %lld\n", name,
                static_cast<long long>(value));
  *out += buf;
}

void AppendQuantiles(std::string* out, const char* name, const char* endpoint,
                     const BucketHistogram& histogram) {
  char buf[200];
  for (const double q : {0.5, 0.9, 0.99}) {
    std::snprintf(buf, sizeof(buf),
                  "%s{endpoint=\"%s\",quantile=\"%g\"} %.1f\n", name,
                  endpoint, q, histogram.Quantile(q));
    *out += buf;
  }
  std::snprintf(buf, sizeof(buf), "%s_count{endpoint=\"%s\"} %llu\n", name,
                endpoint,
                static_cast<unsigned long long>(histogram.count()));
  *out += buf;
  std::snprintf(buf, sizeof(buf), "%s_sum{endpoint=\"%s\"} %llu\n", name,
                endpoint, static_cast<unsigned long long>(histogram.sum()));
  *out += buf;
}

void AppendEndpoint(std::string* out, const char* endpoint,
                    const EndpointMetrics& metrics) {
  char labels[64];
  std::snprintf(labels, sizeof(labels), "{endpoint=\"%s\"}", endpoint);
  AppendCounter(out, "pnr_requests_total", labels,
                metrics.requests.load(std::memory_order_relaxed));
  AppendCounter(out, "pnr_errors_4xx_total", labels,
                metrics.errors_4xx.load(std::memory_order_relaxed));
  AppendCounter(out, "pnr_errors_5xx_total", labels,
                metrics.errors_5xx.load(std::memory_order_relaxed));
  AppendQuantiles(out, "pnr_request_latency_us", endpoint,
                  metrics.latency_us);
}

}  // namespace

void BucketHistogram::Record(uint64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

double BucketHistogram::Quantile(double q) const {
  const uint64_t total = count();
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(total);
  double seen = 0.0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    const double in_bucket = static_cast<double>(
        buckets_[i].load(std::memory_order_relaxed));
    if (in_bucket == 0.0) continue;
    if (seen + in_bucket >= rank) {
      const double lo = (i == 0) ? 0.0 : static_cast<double>(uint64_t{1} << i);
      const double hi = static_cast<double>(uint64_t{1} << (i + 1));
      const double within = (rank - seen) / in_bucket;
      return lo + within * (hi - lo);
    }
    seen += in_bucket;
  }
  return static_cast<double>(sum()) / static_cast<double>(total);
}

void EndpointMetrics::Record(int http_status, uint64_t latency_us_value) {
  requests.fetch_add(1, std::memory_order_relaxed);
  if (http_status >= 400 && http_status < 500) {
    errors_4xx.fetch_add(1, std::memory_order_relaxed);
  } else if (http_status >= 500) {
    errors_5xx.fetch_add(1, std::memory_order_relaxed);
  }
  latency_us.Record(latency_us_value);
}

std::string ServerMetrics::Render() const {
  std::string out;
  out.reserve(4096);
  out += "# TYPE pnr_requests_total counter\n";
  out += "# TYPE pnr_request_latency_us summary\n";
  AppendEndpoint(&out, "predict", predict_);
  AppendEndpoint(&out, "models", models_);
  AppendEndpoint(&out, "healthz", healthz_);
  AppendEndpoint(&out, "metrics", metrics_);
  AppendEndpoint(&out, "other", other_);

  AppendCounter(&out, "pnr_rows_scored_total", "",
                rows_scored.load(std::memory_order_relaxed));
  AppendCounter(&out, "pnr_batches_flushed_total", "",
                batches_flushed.load(std::memory_order_relaxed));
  AppendQuantiles(&out, "pnr_batch_rows", "predict", batch_rows);
  AppendGauge(&out, "pnr_queue_rows",
              queue_rows.load(std::memory_order_relaxed));
  AppendCounter(&out, "pnr_rejected_total", "",
                rejected_total.load(std::memory_order_relaxed));
  AppendCounter(&out, "pnr_deadline_exceeded_total", "",
                deadline_exceeded.load(std::memory_order_relaxed));
  AppendGauge(&out, "pnr_connections_active",
              connections_active.load(std::memory_order_relaxed));
  AppendCounter(&out, "pnr_connections_total", "",
                connections_total.load(std::memory_order_relaxed));
  return out;
}

}  // namespace pnr
