#include "serve/metrics.h"

#include <cstdio>

namespace pnr {
namespace {

// Index of the highest set bit (0 for value 0 or 1).
size_t BucketIndex(uint64_t value) {
  size_t index = 0;
  while (value > 1 && index + 1 < BucketHistogram::kNumBuckets) {
    value >>= 1;
    ++index;
  }
  return index;
}

void AppendCounter(std::string* out, const char* name, const char* labels,
                   uint64_t value) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s%s %llu\n", name, labels,
                static_cast<unsigned long long>(value));
  *out += buf;
}

void AppendGauge(std::string* out, const char* name, const char* labels,
                 int64_t value) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s%s %lld\n", name, labels,
                static_cast<long long>(value));
  *out += buf;
}

constexpr double kQuantiles[] = {0.5, 0.9, 0.99, 0.999};

// `labels` is the inner label list without braces ("endpoint=\"predict\"");
// the quantile label is appended to it.
void AppendQuantiles(std::string* out, const char* name, const char* labels,
                     const BucketHistogram::Snapshot& histogram) {
  char buf[240];
  for (const double q : kQuantiles) {
    std::snprintf(buf, sizeof(buf), "%s{%s,quantile=\"%g\"} %.1f\n", name,
                  labels, q, histogram.Quantile(q));
    *out += buf;
  }
  std::snprintf(buf, sizeof(buf), "%s_count{%s} %llu\n", name, labels,
                static_cast<unsigned long long>(histogram.count));
  *out += buf;
  std::snprintf(buf, sizeof(buf), "%s_sum{%s} %llu\n", name, labels,
                static_cast<unsigned long long>(histogram.sum));
  *out += buf;
}

void AppendEndpoint(std::string* out, const char* endpoint,
                    const EndpointSnapshot& snap) {
  char labels[64];
  std::snprintf(labels, sizeof(labels), "{endpoint=\"%s\"}", endpoint);
  AppendCounter(out, "pnr_requests_total", labels, snap.requests);
  AppendCounter(out, "pnr_errors_4xx_total", labels, snap.errors_4xx);
  AppendCounter(out, "pnr_errors_5xx_total", labels, snap.errors_5xx);
  char inner[64];
  std::snprintf(inner, sizeof(inner), "endpoint=\"%s\"", endpoint);
  AppendQuantiles(out, "pnr_request_latency_us", inner, snap.latency_us);
}

EndpointSnapshot SnapEndpoint(const EndpointMetrics& metrics) {
  EndpointSnapshot snap;
  snap.requests = metrics.requests.load(std::memory_order_relaxed);
  snap.errors_4xx = metrics.errors_4xx.load(std::memory_order_relaxed);
  snap.errors_5xx = metrics.errors_5xx.load(std::memory_order_relaxed);
  snap.latency_us = metrics.latency_us.Snap();
  return snap;
}

void RenderAggregate(std::string* out, const MetricsSnapshot& snap) {
  *out += "# TYPE pnr_requests_total counter\n";
  *out += "# TYPE pnr_request_latency_us summary\n";
  AppendEndpoint(out, "predict", snap.predict);
  AppendEndpoint(out, "models", snap.models);
  AppendEndpoint(out, "healthz", snap.healthz);
  AppendEndpoint(out, "metrics", snap.metrics);
  AppendEndpoint(out, "other", snap.other);

  AppendCounter(out, "pnr_rows_scored_total", "", snap.rows_scored);
  AppendCounter(out, "pnr_batches_flushed_total", "", snap.batches_flushed);
  AppendQuantiles(out, "pnr_batch_rows", "endpoint=\"predict\"",
                  snap.batch_rows);
  AppendGauge(out, "pnr_queue_rows", "", snap.queue_rows);
  AppendCounter(out, "pnr_rejected_total", "", snap.rejected_total);
  AppendCounter(out, "pnr_deadline_exceeded_total", "",
                snap.deadline_exceeded);
  AppendGauge(out, "pnr_connections_active", "", snap.connections_active);
  AppendCounter(out, "pnr_connections_total", "", snap.connections_total);
  AppendGauge(out, "pnr_serve_model_version", "",
              static_cast<int64_t>(snap.model_version));
  AppendCounter(out, "pnr_serve_model_swaps_total", "",
                snap.model_swaps_total);
}

}  // namespace

void BucketHistogram::Record(uint64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

BucketHistogram::Snapshot BucketHistogram::Snap() const {
  Snapshot snap;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

void BucketHistogram::Snapshot::Merge(const Snapshot& other) {
  for (size_t i = 0; i < kNumBuckets; ++i) buckets[i] += other.buckets[i];
  count += other.count;
  sum += other.sum;
}

double BucketHistogram::Snapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(count);
  double seen = 0.0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    const double in_bucket = static_cast<double>(buckets[i]);
    if (in_bucket == 0.0) continue;
    if (seen + in_bucket >= rank) {
      const double lo = (i == 0) ? 0.0 : static_cast<double>(uint64_t{1} << i);
      const double hi = static_cast<double>(uint64_t{1} << (i + 1));
      const double within = (rank - seen) / in_bucket;
      return lo + within * (hi - lo);
    }
    seen += in_bucket;
  }
  return static_cast<double>(sum) / static_cast<double>(count);
}

void EndpointMetrics::Record(int http_status, uint64_t latency_us_value) {
  requests.fetch_add(1, std::memory_order_relaxed);
  if (http_status >= 400 && http_status < 500) {
    errors_4xx.fetch_add(1, std::memory_order_relaxed);
  } else if (http_status >= 500) {
    errors_5xx.fetch_add(1, std::memory_order_relaxed);
  }
  latency_us.Record(latency_us_value);
}

void EndpointSnapshot::Merge(const EndpointSnapshot& other) {
  requests += other.requests;
  errors_4xx += other.errors_4xx;
  errors_5xx += other.errors_5xx;
  latency_us.Merge(other.latency_us);
}

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  predict.Merge(other.predict);
  models.Merge(other.models);
  healthz.Merge(other.healthz);
  metrics.Merge(other.metrics);
  this->other.Merge(other.other);
  rows_scored += other.rows_scored;
  batches_flushed += other.batches_flushed;
  batch_rows.Merge(other.batch_rows);
  queue_rows += other.queue_rows;
  rejected_total += other.rejected_total;
  deadline_exceeded += other.deadline_exceeded;
  connections_active += other.connections_active;
  connections_total += other.connections_total;
  // The fleet serves whatever the newest shard snapshot serves; swaps are
  // per-shard observations and sum.
  if (other.model_version > model_version) model_version = other.model_version;
  model_swaps_total += other.model_swaps_total;
}

MetricsSnapshot ServerMetrics::Snap() const {
  MetricsSnapshot snap;
  snap.predict = SnapEndpoint(predict_);
  snap.models = SnapEndpoint(models_);
  snap.healthz = SnapEndpoint(healthz_);
  snap.metrics = SnapEndpoint(metrics_);
  snap.other = SnapEndpoint(other_);
  snap.rows_scored = rows_scored.load(std::memory_order_relaxed);
  snap.batches_flushed = batches_flushed.load(std::memory_order_relaxed);
  snap.batch_rows = batch_rows.Snap();
  snap.queue_rows = queue_rows.load(std::memory_order_relaxed);
  snap.rejected_total = rejected_total.load(std::memory_order_relaxed);
  snap.deadline_exceeded = deadline_exceeded.load(std::memory_order_relaxed);
  snap.connections_active =
      connections_active.load(std::memory_order_relaxed);
  snap.connections_total = connections_total.load(std::memory_order_relaxed);
  snap.model_version = model_version.load(std::memory_order_relaxed);
  snap.model_swaps_total = model_swaps_total.load(std::memory_order_relaxed);
  return snap;
}

std::string ServerMetrics::Render() const {
  std::string out;
  out.reserve(4096);
  RenderAggregate(&out, Snap());
  return out;
}

std::string RenderFleetMetrics(
    const std::vector<const ServerMetrics*>& shards) {
  std::vector<MetricsSnapshot> snaps;
  snaps.reserve(shards.size());
  for (const ServerMetrics* shard : shards) snaps.push_back(shard->Snap());

  MetricsSnapshot total;
  for (const MetricsSnapshot& snap : snaps) total.Merge(snap);

  std::string out;
  out.reserve(4096 + 1024 * snaps.size());
  RenderAggregate(&out, total);

  out += "# TYPE pnr_serve_shard_requests_total counter\n";
  out += "# TYPE pnr_serve_shard_latency_us summary\n";
  char labels[64];
  for (size_t i = 0; i < snaps.size(); ++i) {
    const MetricsSnapshot& snap = snaps[i];
    std::snprintf(labels, sizeof(labels), "{shard=\"%zu\"}", i);
    // One request total per shard across all endpoints; predict dominates
    // and per-endpoint splits already exist at the fleet level.
    const uint64_t requests = snap.predict.requests + snap.models.requests +
                              snap.healthz.requests + snap.metrics.requests +
                              snap.other.requests;
    AppendCounter(&out, "pnr_serve_shard_requests_total", labels, requests);
    AppendCounter(&out, "pnr_serve_shard_rows_scored_total", labels,
                  snap.rows_scored);
    AppendCounter(&out, "pnr_serve_shard_batches_flushed_total", labels,
                  snap.batches_flushed);
    AppendCounter(&out, "pnr_serve_shard_rejected_total", labels,
                  snap.rejected_total);
    AppendCounter(&out, "pnr_serve_shard_deadline_exceeded_total", labels,
                  snap.deadline_exceeded);
    AppendGauge(&out, "pnr_serve_shard_connections_active", labels,
                snap.connections_active);
    AppendCounter(&out, "pnr_serve_shard_connections_total", labels,
                  snap.connections_total);
    AppendGauge(&out, "pnr_serve_shard_model_version", labels,
                static_cast<int64_t>(snap.model_version));
    AppendCounter(&out, "pnr_serve_shard_model_swaps_total", labels,
                  snap.model_swaps_total);
    char inner[64];
    std::snprintf(inner, sizeof(inner), "shard=\"%zu\"", i);
    AppendQuantiles(&out, "pnr_serve_shard_latency_us", inner,
                    snap.predict.latency_us);
  }
  return out;
}

}  // namespace pnr
