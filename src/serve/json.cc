#include "serve/json.h"

#include <cmath>
#include <cstdio>

#include "common/string_util.h"

namespace pnr {
namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    JsonValue value;
    Status status = ParseValue(&value, 0);
    if (!status.ok()) return status;
    SkipWhitespace();
    if (pos_ != text_.size()) return Error("trailing characters");
    return value;
  }

 private:
  Status Error(const std::string& detail) const {
    return Status::InvalidArgument("json parse error at offset " +
                                   std::to_string(pos_) + ": " + detail);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->text);
      case 't':
        if (!ConsumeWord("true")) return Error("bad literal");
        out->type = JsonValue::Type::kBool;
        out->bool_value = true;
        return Status::OK();
      case 'f':
        if (!ConsumeWord("false")) return Error("bad literal");
        out->type = JsonValue::Type::kBool;
        out->bool_value = false;
        return Status::OK();
      case 'n':
        if (!ConsumeWord("null")) return Error("bad literal");
        out->type = JsonValue::Type::kNull;
        return Status::OK();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      std::string key;
      Status status = ParseString(&key);
      if (!status.ok()) return status;
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      JsonValue value;
      status = ParseValue(&value, depth + 1);
      if (!status.ok()) return status;
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    for (;;) {
      JsonValue value;
      Status status = ParseValue(&value, depth + 1);
      if (!status.ok()) return status;
      out->array.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          if (!ParseHex4(&code)) return Error("bad \\u escape");
          if (code >= 0xD800 && code <= 0xDBFF) {  // surrogate pair
            unsigned low = 0;
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Error("unpaired surrogate");
            }
            pos_ += 2;
            if (!ParseHex4(&low) || low < 0xDC00 || low > 0xDFFF) {
              return Error("bad low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return Error("unpaired surrogate");
          }
          AppendUtf8(out, code);
          break;
        }
        default:
          return Error("bad escape");
      }
    }
    return Error("unterminated string");
  }

  bool ParseHex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return false;
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return false;
      }
    }
    pos_ += 4;
    *out = value;
    return true;
  }

  static void AppendUtf8(std::string* out, unsigned code) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (Consume('.')) {
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    double value = 0.0;
    // The lexer admits only sign/digit/dot/exponent runs, so bare
    // NaN/Infinity tokens never reach ParseDouble here — which matters
    // because ParseDouble itself (shared with CSV ingest) accepts "nan" and
    // "inf" spellings. The finiteness check keeps tokens whose exponent
    // overflows to infinity out as well: JSON has no non-finite numbers.
    if (!ParseDouble(token, &value) || !std::isfinite(value)) {
      pos_ = start;
      return Error("bad number");
    }
    out->type = JsonValue::Type::kNumber;
    out->number_value = value;
    out->text = std::string(token);
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

StatusOr<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

void AppendJsonString(std::string* out, std::string_view text) {
  out->push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
        break;
    }
  }
  out->push_back('"');
}

void AppendJsonNumber(std::string* out, double value) {
  if (!std::isfinite(value)) {  // JSON has no Inf/NaN; scores are finite
    *out += "0";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  *out += buf;
}

}  // namespace pnr
