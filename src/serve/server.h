// PredictionServer: the online inference front end.
//
// A multi-threaded TCP server speaking the HTTP/1.1 subset in
// serve/http.h. One acceptor thread feeds a bounded connection queue;
// `num_threads` workers pop connections, parse one request at a time, and
// route:
//
//   POST /v1/predict   {"model": "<name>", "rows": [{attr: value, ...}]}
//                      -> {"model", "scores": [...], "predicted": [...]}
//   GET  /v1/models    registry listing (name, rules, threshold, version)
//   GET  /healthz      liveness probe
//   GET  /metrics      Prometheus text exposition (serve/metrics.h)
//
// Predict rows are resolved against the model's schema and submitted to
// the MicroBatcher, so concurrent requests share compiled ScoreBatch
// calls. Keep-alive connections are cooperatively scheduled: a worker that
// finds its connection idle requeues it and serves another, which is how
// 64 open connections make progress on 4 threads.
//
// Backpressure is layered: a full connection queue answers a canned 503 at
// accept time; a full batcher queue answers 503 + Retry-After per request;
// requests older than their deadline answer 504. Shutdown() (the SIGTERM
// path) stops the acceptor, lets in-flight requests finish, flushes the
// batcher, and joins every thread — callers get complete responses, new
// connections are refused.

#ifndef PNR_SERVE_SERVER_H_
#define PNR_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/net.h"
#include "common/status.h"
#include "serve/batcher.h"
#include "serve/http.h"
#include "serve/metrics.h"
#include "serve/registry.h"

namespace pnr {

struct ServerConfig {
  /// TCP port on 127.0.0.1; 0 binds an ephemeral port (see port()).
  uint16_t port = 8080;
  /// HTTP worker threads.
  size_t num_threads = 4;
  /// Bound on accepted-but-unserved connections; beyond it new connections
  /// get an immediate canned 503.
  size_t max_queued_connections = 256;
  /// Request body bound (413 beyond).
  size_t max_body_bytes = 8 * 1024 * 1024;
  /// Per-request deadline: parse + batch wait + score (504 beyond).
  uint64_t request_deadline_ms = 5000;
  /// Keep-alive connections idle longer than this are closed.
  uint64_t idle_timeout_ms = 60000;
  /// Micro-batching policy.
  BatcherConfig batcher;
};

class PredictionServer {
 public:
  /// `registry` must outlive the server.
  PredictionServer(ServerConfig config, ModelRegistry* registry);
  ~PredictionServer();

  /// Binds, listens, and starts the acceptor and worker threads.
  Status Start();

  /// The bound port (differs from config.port when that was 0).
  uint16_t port() const { return port_; }

  /// Graceful drain; idempotent, callable from any thread (SIGTERM).
  void Shutdown();

  bool running() const { return started_ && !stopping_.load(); }

  ServerMetrics& metrics() { return metrics_; }

 private:
  struct Conn {
    UniqueFd fd;
    HttpRequestParser parser;
    std::chrono::steady_clock::time_point last_active;
  };

  void AcceptLoop();
  void WorkerLoop();
  /// Serves requests on `conn` until it would block, closes, or errors.
  /// Returns true when the connection should be requeued.
  bool ServeConnection(Conn* conn);
  /// Reads until the in-progress request completes; false closes the conn.
  bool CompleteRequest(Conn* conn);
  HttpResponse Route(const HttpRequest& request);
  HttpResponse HandlePredict(const HttpRequest& request);
  HttpResponse HandleModels();
  void CloseConnection(std::unique_ptr<Conn> conn);

  ServerConfig config_;
  ModelRegistry* registry_;
  ServerMetrics metrics_;
  MicroBatcher batcher_;

  UniqueFd listen_fd_;
  WakePipe wake_;
  uint16_t port_ = 0;
  bool started_ = false;
  std::atomic<bool> stopping_{false};

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<std::unique_ptr<Conn>> queue_;

  std::thread acceptor_;
  std::vector<std::thread> workers_;
  std::mutex lifecycle_mutex_;  ///< serializes Shutdown callers
};

}  // namespace pnr

#endif  // PNR_SERVE_SERVER_H_
