// PredictionServer: the online inference front end — a fleet of
// shared-nothing ServeShard reactors.
//
// Start() binds `num_shards` SO_REUSEPORT listeners on one port (shard 0
// binds first and fixes the ephemeral port when config.port is 0) and
// launches one reactor thread per shard. The kernel distributes incoming
// connections across the listeners by 4-tuple hash, so no acceptor thread,
// no connection queue, and no cross-shard handoff exists: a connection is
// born on a shard and lives its whole life there.
//
// Every shard speaks both wire protocols on the same port:
//
//   POST /v1/predict   {"model": "<name>", "rows": [{attr: value, ...}]}
//                      -> {"model", "scores": [...], "predicted": [...]}
//   GET  /v1/models    registry listing (name, rules, threshold, version)
//   GET  /healthz      liveness probe
//   GET  /metrics      Prometheus text exposition, aggregated fleet-wide
//                      plus per-shard pnr_serve_shard_* series
//   binary frames      length-prefixed predict protocol (serve/binary.h),
//                      selected by the 0xB5 first byte
//
// HTTP/1.1 keep-alive is fully pipelined: clients may write many requests
// before reading; responses return in order. Backpressure, deadlines, and
// graceful drain are per shard (see serve/shard.h). Hot-swaps via the
// ModelRegistry reach shards through epoch-versioned snapshot refresh —
// never a lock on the request path.

#ifndef PNR_SERVE_SERVER_H_
#define PNR_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "serve/batcher.h"
#include "serve/metrics.h"
#include "serve/registry.h"
#include "serve/shard.h"

namespace pnr {

struct ServerConfig {
  /// TCP port on 127.0.0.1; 0 binds an ephemeral port (see port()).
  uint16_t port = 8080;
  /// Reactor shards (one thread + listener + batcher each); 0 = one per
  /// hardware thread.
  size_t num_shards = 1;
  /// Open connections per shard; beyond it new connections get an
  /// immediate canned 503.
  size_t max_connections_per_shard = 1024;
  /// Request body bound (413 beyond).
  size_t max_body_bytes = 8 * 1024 * 1024;
  /// Per-request deadline: batch wait + score (504 beyond).
  uint64_t request_deadline_ms = 5000;
  /// Keep-alive connections idle longer than this are closed.
  uint64_t idle_timeout_ms = 60000;
  /// In-flight pipelined requests per connection before reads pause.
  size_t max_pipeline_depth = 64;
  /// Unflushed response bytes per connection before reads pause.
  size_t max_outbuf_bytes = 4 * 1024 * 1024;
  /// Micro-batching policy (each shard gets its own batcher).
  BatcherConfig batcher;
};

class PredictionServer {
 public:
  /// `registry` must outlive the server.
  PredictionServer(ServerConfig config, ModelRegistry* registry);
  ~PredictionServer();

  /// Binds every shard listener and starts the reactor threads.
  Status Start();

  /// The bound port (differs from config.port when that was 0).
  uint16_t port() const { return port_; }

  /// Graceful drain; idempotent, callable from any thread (SIGTERM).
  void Shutdown();

  bool running() const { return started_ && !stopping_.load(); }

  size_t num_shards() const { return shards_.size(); }
  ServerMetrics& shard_metrics(size_t shard) {
    return shards_[shard]->metrics();
  }

  /// Fleet-wide counter totals (every shard's snapshot merged).
  MetricsSnapshot Totals() const;

  /// The /metrics exposition body (aggregate + per-shard series).
  std::string RenderMetricsText() const;

 private:
  ServerConfig config_;
  ModelRegistry* registry_;

  std::vector<std::unique_ptr<ServeShard>> shards_;
  uint16_t port_ = 0;
  bool started_ = false;
  std::atomic<bool> stopping_{false};
  std::mutex lifecycle_mutex_;  ///< serializes Start/Shutdown callers
};

}  // namespace pnr

#endif  // PNR_SERVE_SERVER_H_
