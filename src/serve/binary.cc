#include "serve/binary.h"

#include <cstring>
#include <limits>

#include "common/string_util.h"

namespace pnr {

namespace {

// Little-endian readers/writers over untrusted buffers. memcpy keeps them
// alignment-safe; the callers bounds-check before every read.
uint16_t ReadU16(const char* p) {
  uint16_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint32_t ReadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

double ReadF64(const char* p) {
  double v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void AppendU16(std::string* out, uint16_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void AppendU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void AppendF64(std::string* out, double v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

}  // namespace

int HttpStatusOf(BinaryStatus code) {
  switch (code) {
    case BinaryStatus::kOk:
      return 200;
    case BinaryStatus::kBadRequest:
      return 400;
    case BinaryStatus::kNotFound:
      return 404;
    case BinaryStatus::kUnavailable:
      return 503;
    case BinaryStatus::kDeadlineExceeded:
      return 504;
    case BinaryStatus::kInternal:
      return 500;
    case BinaryStatus::kTooLarge:
      return 413;
  }
  return 500;
}

BinaryRequestParser::State BinaryRequestParser::Fail(BinaryStatus code,
                                                     std::string message) {
  state_ = State::kError;
  error_code_ = code;
  error_message_ = std::move(message);
  return state_;
}

BinaryRequestParser::State BinaryRequestParser::Consume(
    std::string_view data) {
  if (state_ == State::kError) return state_;
  buffer_.append(data.data(), data.size());
  if (state_ == State::kDone) return state_;
  return Advance();
}

BinaryRequestParser::State BinaryRequestParser::Advance() {
  if (!header_done_) {
    if (buffer_.size() < kBinaryHeaderBytes) return state_;
    const auto* bytes = reinterpret_cast<const unsigned char*>(buffer_.data());
    if (bytes[0] != kBinaryRequestMagic) {
      return Fail(BinaryStatus::kBadRequest, "bad frame magic");
    }
    if (bytes[1] != kBinaryVersion) {
      return Fail(BinaryStatus::kBadRequest, "unsupported protocol version");
    }
    name_len_ = ReadU16(buffer_.data() + 2);
    const uint32_t payload_len = ReadU32(buffer_.data() + 4);
    if (name_len_ > limits_.max_name_bytes) {
      return Fail(BinaryStatus::kTooLarge, "model name too long");
    }
    if (payload_len < name_len_) {
      return Fail(BinaryStatus::kBadRequest,
                  "payload length shorter than model name");
    }
    if (payload_len - name_len_ > limits_.max_payload_bytes) {
      return Fail(BinaryStatus::kTooLarge, "frame payload too large");
    }
    frame_needed_ = payload_len;
    header_done_ = true;
  }
  if (buffer_.size() < kBinaryHeaderBytes + frame_needed_) return state_;
  request_.model.assign(buffer_, kBinaryHeaderBytes, name_len_);
  request_.payload.assign(buffer_, kBinaryHeaderBytes + name_len_,
                          frame_needed_ - name_len_);
  state_ = State::kDone;
  return state_;
}

BinaryRequest BinaryRequestParser::Take() {
  BinaryRequest out = std::move(request_);
  request_ = BinaryRequest{};
  buffer_.erase(0, kBinaryHeaderBytes + frame_needed_);
  frame_needed_ = 0;
  name_len_ = 0;
  header_done_ = false;
  state_ = State::kNeedMore;
  // A pipelined next frame may already be complete in the buffer.
  if (!buffer_.empty()) Advance();
  return out;
}

Status DecodeBinaryRows(std::string_view payload, const Schema& schema,
                        RowBlock* out) {
  if (payload.size() < sizeof(uint32_t)) {
    return Status::InvalidArgument("payload truncated before row count");
  }
  const uint32_t num_rows = ReadU32(payload.data());
  size_t pos = sizeof(uint32_t);

  // Cheap admission check before any allocation: even with empty
  // categorical strings, R rows need 8R bytes per numeric column and 2R per
  // categorical, so a huge claimed row count on a short payload dies here.
  size_t floor_per_row = 0;
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    floor_per_row +=
        schema.attribute(static_cast<AttrIndex>(a)).is_numeric() ? 8 : 2;
  }
  if (num_rows > 0 && floor_per_row > 0 &&
      (payload.size() - pos) / num_rows < floor_per_row) {
    return Status::InvalidArgument("row count exceeds payload capacity");
  }

  out->InitFor(schema);
  out->num_rows = num_rows;
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    const Attribute& attr = schema.attribute(static_cast<AttrIndex>(a));
    if (attr.is_numeric()) {
      if (payload.size() - pos < 8 * static_cast<size_t>(num_rows)) {
        return Status::InvalidArgument("payload truncated in numeric column " +
                                       attr.name());
      }
      auto& column = out->numeric[a];
      column.resize(num_rows);
      for (uint32_t r = 0; r < num_rows; ++r) {
        column[r] = ReadF64(payload.data() + pos);
        pos += 8;
      }
    } else {
      auto& column = out->categorical[a];
      column.resize(num_rows);
      for (uint32_t r = 0; r < num_rows; ++r) {
        if (payload.size() - pos < 2) {
          return Status::InvalidArgument(
              "payload truncated in categorical column " + attr.name());
        }
        const uint16_t len = ReadU16(payload.data() + pos);
        pos += 2;
        if (payload.size() - pos < len) {
          return Status::InvalidArgument(
              "payload truncated in categorical column " + attr.name());
        }
        // Same unknown-value semantics as the JSON path: absent dictionary
        // entries become the no-match sentinel, not an error.
        column[r] = attr.FindCategory(payload.substr(pos, len));
        pos += len;
      }
    }
  }
  if (pos != payload.size()) {
    return Status::InvalidArgument("trailing bytes after row data");
  }
  return Status::OK();
}

void EncodeBinaryRows(const Dataset& data, RowId begin, RowId end,
                      std::string* out) {
  const Schema& schema = data.schema();
  AppendU32(out, static_cast<uint32_t>(end - begin));
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    const auto attr = static_cast<AttrIndex>(a);
    if (schema.attribute(attr).is_numeric()) {
      for (RowId r = begin; r < end; ++r) {
        AppendF64(out, data.numeric(r, attr));
      }
    } else {
      const Attribute& meta = schema.attribute(attr);
      for (RowId r = begin; r < end; ++r) {
        const CategoryId id = data.categorical(r, attr);
        if (id == kInvalidCategory) {
          AppendU16(out, 0);
          continue;
        }
        const std::string& name = meta.CategoryName(id);
        AppendU16(out, static_cast<uint16_t>(name.size()));
        out->append(name);
      }
    }
  }
}

Status EncodeBinaryRowFromText(
    const Schema& schema,
    const std::vector<std::pair<std::string, std::string>>& cells,
    std::string* out) {
  for (const auto& cell : cells) {
    if (!schema.FindAttribute(cell.first).ok()) {
      return Status::InvalidArgument("unknown attribute: " + cell.first);
    }
  }
  AppendU32(out, 1);
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    const Attribute& attr = schema.attribute(static_cast<AttrIndex>(a));
    const std::string* value = nullptr;
    for (const auto& cell : cells) {
      if (cell.first == attr.name()) value = &cell.second;
    }
    if (attr.is_numeric()) {
      double parsed = std::numeric_limits<double>::quiet_NaN();
      if (value != nullptr && !ParseDouble(*value, &parsed)) {
        return Status::InvalidArgument("non-numeric value for attribute " +
                                       attr.name() + ": " + *value);
      }
      AppendF64(out, parsed);
    } else if (value == nullptr) {
      AppendU16(out, 0);
    } else {
      if (value->size() > std::numeric_limits<uint16_t>::max()) {
        return Status::InvalidArgument("categorical value too long for " +
                                       attr.name());
      }
      AppendU16(out, static_cast<uint16_t>(value->size()));
      out->append(*value);
    }
  }
  return Status::OK();
}

std::string EncodeBinaryRequest(std::string_view model,
                                std::string_view payload) {
  std::string out;
  out.reserve(kBinaryHeaderBytes + model.size() + payload.size());
  out.push_back(static_cast<char>(kBinaryRequestMagic));
  out.push_back(static_cast<char>(kBinaryVersion));
  AppendU16(&out, static_cast<uint16_t>(model.size()));
  AppendU32(&out, static_cast<uint32_t>(model.size() + payload.size()));
  out.append(model);
  out.append(payload);
  return out;
}

namespace {

std::string ResponseFrame(BinaryStatus status, std::string_view payload) {
  std::string out;
  out.reserve(kBinaryHeaderBytes + payload.size());
  out.push_back(static_cast<char>(kBinaryResponseMagic));
  out.push_back(static_cast<char>(status));
  AppendU16(&out, 0);
  AppendU32(&out, static_cast<uint32_t>(payload.size()));
  out.append(payload);
  return out;
}

}  // namespace

std::string RenderBinaryOk(const std::vector<double>& scores,
                           const std::vector<uint8_t>& predicted) {
  std::string payload;
  payload.reserve(sizeof(uint32_t) + 9 * scores.size());
  AppendU32(&payload, static_cast<uint32_t>(scores.size()));
  for (const double score : scores) AppendF64(&payload, score);
  payload.append(reinterpret_cast<const char*>(predicted.data()),
                 predicted.size());
  return ResponseFrame(BinaryStatus::kOk, payload);
}

std::string RenderBinaryError(BinaryStatus code, std::string_view message) {
  return ResponseFrame(code, message);
}

Status ParseBinaryResponse(std::string_view data, BinaryResponse* out,
                           size_t* consumed) {
  *consumed = 0;
  if (data.size() < kBinaryHeaderBytes) return Status::OK();
  const auto* bytes = reinterpret_cast<const unsigned char*>(data.data());
  if (bytes[0] != kBinaryResponseMagic) {
    return Status::InvalidArgument("bad response magic");
  }
  const uint32_t payload_len = ReadU32(data.data() + 4);
  if (data.size() - kBinaryHeaderBytes < payload_len) return Status::OK();
  const std::string_view payload = data.substr(kBinaryHeaderBytes, payload_len);
  out->status = static_cast<BinaryStatus>(bytes[1]);
  out->scores.clear();
  out->predicted.clear();
  out->error.clear();
  if (out->status != BinaryStatus::kOk) {
    out->error.assign(payload);
    *consumed = kBinaryHeaderBytes + payload_len;
    return Status::OK();
  }
  if (payload.size() < sizeof(uint32_t)) {
    return Status::InvalidArgument("ok response truncated before row count");
  }
  const uint32_t num_rows = ReadU32(payload.data());
  if (payload.size() != sizeof(uint32_t) + 9 * static_cast<size_t>(num_rows)) {
    return Status::InvalidArgument("ok response payload size mismatch");
  }
  out->scores.resize(num_rows);
  out->predicted.resize(num_rows);
  size_t pos = sizeof(uint32_t);
  for (uint32_t r = 0; r < num_rows; ++r) {
    out->scores[r] = ReadF64(payload.data() + pos);
    pos += 8;
  }
  std::memcpy(out->predicted.data(), payload.data() + pos, num_rows);
  *consumed = kBinaryHeaderBytes + payload_len;
  return Status::OK();
}

}  // namespace pnr
