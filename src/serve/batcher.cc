#include "serve/batcher.h"

#include <numeric>
#include <utility>

#include "data/dataset.h"

namespace pnr {

void RowBlock::InitFor(const Schema& schema) {
  num_rows = 0;
  numeric.assign(schema.num_attributes(), {});
  categorical.assign(schema.num_attributes(), {});
}

void RowBlock::Append(const RowBlock& other) {
  for (size_t a = 0; a < numeric.size(); ++a) {
    numeric[a].insert(numeric[a].end(), other.numeric[a].begin(),
                      other.numeric[a].end());
    categorical[a].insert(categorical[a].end(), other.categorical[a].begin(),
                          other.categorical[a].end());
  }
  num_rows += other.num_rows;
}

MicroBatcher::MicroBatcher(BatcherConfig config, ServerMetrics* metrics)
    : config_(config), metrics_(metrics) {}

MicroBatcher::~MicroBatcher() { Shutdown(); }

void MicroBatcher::UpdateQueueGauge() {
  if (metrics_ != nullptr) {
    metrics_->queue_rows.store(static_cast<int64_t>(pending_rows_),
                               std::memory_order_relaxed);
  }
}

void MicroBatcher::Shutdown() {
  if (shutdown_) return;
  shutdown_ = true;
  // Graceful drain: rows accepted before shutdown still get scored.
  Flush();
}

Status MicroBatcher::Enqueue(std::shared_ptr<const ServedModel> model,
                             RowBlock rows, Callback done) {
  if (shutdown_) return Status::Unavailable("server shutting down");
  if (rows.num_rows == 0) {
    done(Status::OK(), Result{});
    return Status::OK();
  }

  // Per-request baseline: no coalescing.
  if (!config_.enabled || config_.max_batch_rows <= 1) {
    PendingBatch batch;
    batch.model = std::move(model);
    const size_t n = rows.num_rows;
    batch.blocks.push_back(std::move(rows));
    batch.slices.push_back(Slice{std::move(done), 0, n});
    batch.total_rows = n;
    Execute(std::move(batch));
    return Status::OK();
  }

  if (pending_rows_ + rows.num_rows > config_.max_queue_rows) {
    if (metrics_ != nullptr) {
      metrics_->rejected_total.fetch_add(1, std::memory_order_relaxed);
    }
    return Status::Unavailable("batch queue full");
  }

  PendingBatch& batch = pending_[model.get()];
  if (batch.slices.empty()) batch.model = model;
  batch.slices.push_back(Slice{std::move(done), batch.total_rows,
                               rows.num_rows});
  batch.total_rows += rows.num_rows;
  batch.blocks.push_back(std::move(rows));
  pending_rows_ += batch.blocks.back().num_rows;
  UpdateQueueGauge();

  if (batch.total_rows >= config_.max_batch_rows) {
    PendingBatch full = std::move(batch);
    pending_.erase(model.get());
    pending_rows_ -= full.total_rows;
    UpdateQueueGauge();
    Execute(std::move(full));
  }
  return Status::OK();
}

void MicroBatcher::Flush() {
  while (!pending_.empty()) {
    auto it = pending_.begin();
    PendingBatch batch = std::move(it->second);
    pending_.erase(it);
    pending_rows_ -= batch.total_rows;
    UpdateQueueGauge();
    Execute(std::move(batch));
  }
}

void MicroBatcher::Execute(PendingBatch batch) {
  // Coalesce at the last moment: the common lone-request batch skips the
  // copy entirely and scores the block it arrived in.
  RowBlock coalesced;
  if (batch.blocks.size() == 1) {
    coalesced = std::move(batch.blocks.front());
  } else {
    if (!batch.blocks.empty()) coalesced.InitFor(batch.model->schema);
    for (RowBlock& block : batch.blocks) coalesced.Append(block);
  }
  const RowBlock& rows = coalesced;
  const size_t n = rows.num_rows;
  Status status;
  std::vector<double> scores(n, 0.0);
  std::vector<uint8_t> predicted(n, 0);
  if (n > 0) {
    // Materialize the coalesced rows as a Dataset over the model schema and
    // score them in one compiled-kernel call.
    Dataset data(batch.model->schema);
    data.AppendRows(n);
    const Schema& schema = data.schema();
    for (size_t a = 0; a < schema.num_attributes(); ++a) {
      const auto attr = static_cast<AttrIndex>(a);
      if (schema.attribute(attr).is_numeric()) {
        double* column = data.mutable_numeric_data(attr);
        std::copy(rows.numeric[a].begin(), rows.numeric[a].end(),
                  column);
      } else {
        CategoryId* column = data.mutable_categorical_data(attr);
        std::copy(rows.categorical[a].begin(),
                  rows.categorical[a].end(), column);
      }
    }
    std::vector<RowId> row_ids(n);
    std::iota(row_ids.begin(), row_ids.end(), RowId{0});
    const BinaryClassifier& model = *batch.model->model;
    model.ScoreBatch(data, row_ids.data(), n, scores.data(),
                     config_.score_options);
    // Predict is the score threshold (the classifier's PredictBatch default
    // recomputes scores; thresholding here halves the work).
    const double threshold = model.threshold();
    for (size_t i = 0; i < n; ++i) {
      predicted[i] = scores[i] > threshold ? 1 : 0;
    }
    if (metrics_ != nullptr) {
      metrics_->rows_scored.fetch_add(n, std::memory_order_relaxed);
      metrics_->batches_flushed.fetch_add(1, std::memory_order_relaxed);
      metrics_->batch_rows.Record(n);
    }
  }

  for (Slice& slice : batch.slices) {
    Result result;
    if (status.ok()) {
      result.scores.assign(
          scores.begin() + static_cast<ptrdiff_t>(slice.offset),
          scores.begin() + static_cast<ptrdiff_t>(slice.offset + slice.count));
      result.predicted.assign(
          predicted.begin() + static_cast<ptrdiff_t>(slice.offset),
          predicted.begin() +
              static_cast<ptrdiff_t>(slice.offset + slice.count));
    }
    slice.done(status, std::move(result));
  }
}

}  // namespace pnr
