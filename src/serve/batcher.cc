#include "serve/batcher.h"

#include <numeric>
#include <utility>

#include "data/dataset.h"

namespace pnr {

namespace {

std::chrono::steady_clock::duration DelayOf(const BatcherConfig& config) {
  return std::chrono::microseconds(config.max_delay_us);
}

}  // namespace

void RowBlock::InitFor(const Schema& schema) {
  num_rows = 0;
  numeric.assign(schema.num_attributes(), {});
  categorical.assign(schema.num_attributes(), {});
}

void RowBlock::Append(const RowBlock& other) {
  for (size_t a = 0; a < numeric.size(); ++a) {
    numeric[a].insert(numeric[a].end(), other.numeric[a].begin(),
                      other.numeric[a].end());
    categorical[a].insert(categorical[a].end(), other.categorical[a].begin(),
                          other.categorical[a].end());
  }
  num_rows += other.num_rows;
}

MicroBatcher::MicroBatcher(BatcherConfig config, ServerMetrics* metrics)
    : config_(config), metrics_(metrics) {
  if (config_.enabled && config_.max_batch_rows > 1) {
    timer_ = std::thread([this] { TimerLoop(); });
  }
}

MicroBatcher::~MicroBatcher() { Shutdown(); }

void MicroBatcher::Shutdown() {
  std::vector<PendingBatch> drained;
  std::thread timer;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) return;
    shutdown_ = true;
    for (auto& [key, batch] : pending_) drained.push_back(std::move(batch));
    pending_.clear();
    pending_rows_ = 0;
    if (metrics_ != nullptr) metrics_->queue_rows.store(0);
    timer.swap(timer_);
  }
  timer_cv_.notify_all();
  if (timer.joinable()) timer.join();
  // Graceful drain: rows accepted before shutdown still get scored.
  for (auto& batch : drained) Execute(std::move(batch));
}

Status MicroBatcher::Score(std::shared_ptr<const ServedModel> model,
                           RowBlock rows,
                           std::chrono::steady_clock::time_point deadline,
                           Result* out) {
  if (rows.num_rows == 0) {
    out->scores.clear();
    out->predicted.clear();
    return Status::OK();
  }

  // Per-request baseline: no coalescing, no queueing.
  if (!config_.enabled || config_.max_batch_rows <= 1) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (shutdown_) return Status::Unavailable("server shutting down");
    }
    auto waiter = std::make_shared<Waiter>();
    PendingBatch batch;
    batch.model = std::move(model);
    batch.rows = std::move(rows);
    batch.slices.push_back(Slice{waiter, 0, batch.rows.num_rows});
    Execute(std::move(batch));
    *out = std::move(waiter->result);
    return waiter->status;
  }

  auto waiter = std::make_shared<Waiter>();
  bool lead = false;
  PendingBatch to_flush;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) return Status::Unavailable("server shutting down");
    if (pending_rows_ + rows.num_rows > config_.max_queue_rows) {
      if (metrics_ != nullptr) {
        metrics_->rejected_total.fetch_add(1, std::memory_order_relaxed);
      }
      return Status::Unavailable("batch queue full");
    }
    PendingBatch& batch = pending_[model.get()];
    if (batch.slices.empty()) {
      batch.model = model;
      batch.rows.InitFor(model->schema);
      batch.opened_at = std::chrono::steady_clock::now();
    }
    batch.slices.push_back(
        Slice{waiter, batch.rows.num_rows, rows.num_rows});
    batch.rows.Append(rows);
    pending_rows_ += rows.num_rows;
    if (metrics_ != nullptr) {
      metrics_->queue_rows.store(static_cast<int64_t>(pending_rows_),
                                 std::memory_order_relaxed);
    }
    if (batch.rows.num_rows >= config_.max_batch_rows) {
      // This request fills the batch: it becomes the leader and scores.
      lead = true;
      to_flush = std::move(batch);
      pending_.erase(model.get());
      pending_rows_ -= to_flush.rows.num_rows;
      if (metrics_ != nullptr) {
        metrics_->queue_rows.store(static_cast<int64_t>(pending_rows_),
                                   std::memory_order_relaxed);
      }
    }
  }

  if (lead) {
    Execute(std::move(to_flush));
  } else {
    timer_cv_.notify_one();  // batch opened/updated: recompute next flush
  }

  std::unique_lock<std::mutex> lock(waiter->mutex);
  if (!waiter->cv.wait_until(lock, deadline, [&] { return waiter->done; })) {
    if (metrics_ != nullptr) {
      metrics_->deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
    }
    return Status::DeadlineExceeded("request deadline exceeded");
  }
  *out = std::move(waiter->result);
  return waiter->status;
}

void MicroBatcher::TimerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (shutdown_) return;
    if (pending_.empty()) {
      timer_cv_.wait(lock,
                     [this] { return shutdown_ || !pending_.empty(); });
      continue;
    }
    auto next_flush = std::chrono::steady_clock::time_point::max();
    for (const auto& [key, batch] : pending_) {
      next_flush = std::min(next_flush, batch.opened_at + DelayOf(config_));
    }
    if (std::chrono::steady_clock::now() < next_flush) {
      timer_cv_.wait_until(lock, next_flush);
      continue;  // re-evaluate: batches may have been flushed by leaders
    }
    // Collect everything past its delay bound, then score unlocked.
    std::vector<PendingBatch> due;
    const auto now = std::chrono::steady_clock::now();
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (it->second.opened_at + DelayOf(config_) <= now) {
        pending_rows_ -= it->second.rows.num_rows;
        due.push_back(std::move(it->second));
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
    if (metrics_ != nullptr) {
      metrics_->queue_rows.store(static_cast<int64_t>(pending_rows_),
                                 std::memory_order_relaxed);
    }
    lock.unlock();
    for (auto& batch : due) Execute(std::move(batch));
    lock.lock();
  }
}

void MicroBatcher::Execute(PendingBatch batch) {
  const size_t n = batch.rows.num_rows;
  Status status;
  std::vector<double> scores(n, 0.0);
  std::vector<uint8_t> predicted(n, 0);
  if (n > 0) {
    // Materialize the coalesced rows as a Dataset over the model schema and
    // score them in one compiled-kernel call.
    Dataset data(batch.model->schema);
    data.AppendRows(n);
    const Schema& schema = data.schema();
    for (size_t a = 0; a < schema.num_attributes(); ++a) {
      const auto attr = static_cast<AttrIndex>(a);
      if (schema.attribute(attr).is_numeric()) {
        double* column = data.mutable_numeric_data(attr);
        std::copy(batch.rows.numeric[a].begin(), batch.rows.numeric[a].end(),
                  column);
      } else {
        CategoryId* column = data.mutable_categorical_data(attr);
        std::copy(batch.rows.categorical[a].begin(),
                  batch.rows.categorical[a].end(), column);
      }
    }
    std::vector<RowId> row_ids(n);
    std::iota(row_ids.begin(), row_ids.end(), RowId{0});
    const PnruleClassifier& model = batch.model->model;
    model.ScoreBatch(data, row_ids.data(), n, scores.data(),
                     config_.score_options);
    // Predict is the score threshold (the classifier's PredictBatch default
    // recomputes scores; thresholding here halves the work).
    const double threshold = model.threshold();
    for (size_t i = 0; i < n; ++i) {
      predicted[i] = scores[i] > threshold ? 1 : 0;
    }
    if (metrics_ != nullptr) {
      metrics_->rows_scored.fetch_add(n, std::memory_order_relaxed);
      metrics_->batches_flushed.fetch_add(1, std::memory_order_relaxed);
      metrics_->batch_rows.Record(n);
    }
  }

  for (Slice& slice : batch.slices) {
    Waiter& waiter = *slice.waiter;
    {
      std::lock_guard<std::mutex> lock(waiter.mutex);
      waiter.status = status;
      if (status.ok()) {
        waiter.result.scores.assign(
            scores.begin() + static_cast<ptrdiff_t>(slice.offset),
            scores.begin() + static_cast<ptrdiff_t>(slice.offset +
                                                    slice.count));
        waiter.result.predicted.assign(
            predicted.begin() + static_cast<ptrdiff_t>(slice.offset),
            predicted.begin() + static_cast<ptrdiff_t>(slice.offset +
                                                       slice.count));
      }
      waiter.done = true;
    }
    waiter.cv.notify_all();
  }
}

}  // namespace pnr
