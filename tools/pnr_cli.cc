// pnr: command-line PNrule — train on a CSV, evaluate, save/load models,
// score new data. The "downstream user" entry point that needs no C++.
//
// Usage:
//   pnr train   --data train.csv --target fraud [--model model.txt]
//               [--rp 0.99] [--rn 0.9] [--min-support 0.01] [--p1]
//               [--threads n] [--class-column label]
//               [--multiclass] [--train-threads n] [--max-resident-mb m]
//   pnr eval    --data test.csv --target fraud --model model.txt
//               [--class-column label]
//   pnr predict --data new.csv --target fraud --model model.txt
//               [--class-column label]   (prints one score per row)
//   pnr shard   --data train.csv --out train.pns [--shards n]
//               [--class-column label] [--threads n]
//   pnr mine    --data train.csv --target fraud [--model model.txt]
//               [--min-support 0.01] [--per-class-support 0.05]
//               [--min-conf 0.5] [--min-lift 1.0] [--max-len 3]
//               [--bins 8] [--threads n] [--class-column label]
//   pnr serve   --models name=model.txt[,name2=other.txt] [--port 8080]
//               [--shards 0] [--max-batch 1024] [--no-batching]
//   pnr probe   --port 8080 --row "attr=value,..." [--model name]
//               [--schema model.txt.schema --binary]
//   pnr tune    (--data train.csv | --synth kdd) --target fraud
//               [--config grid.cfg] [--folds 5] [--budget N]
//               [--metric recall|precision|f] [--z 2.0] [--keep 0.5]
//               [--seed n] [--threads n] [--out DIR]
//   pnr stream  --data feed.csv --model model.txt --target fraud
//               [--out-dir DIR] [--window 1000] [--sliding 5]
//               [--threshold 0.5] [--threads n] [--train-threads n]
//               [--psi-threshold 0.25] [--score-psi-threshold 0.25]
//               [--confirm-windows 2] [--reference-windows 4]
//               [--retrain-rows 6000] [--no-retrain] [--max-swaps n]
//               [--checkpoint FILE] [--resume] [--journal FILE]
//               [--follow] [--poll-ms 200] [--idle-exit-polls n]
//               [--serve-port p] [--serve-shards n] [--model-name stream]
//   pnr stream  --generate --out-dir DIR [--train 20000] [--pre 12000]
//               [--post 8000] [--seed n]
//
// `--target` is the class value treated as positive. Training prints the
// learned rules; eval prints recall / precision / F and ranking areas.
// `shard` rewrites a dataset as a compressed columnar shard file; every
// subcommand's `--data` then accepts either format (sniffed by magic).
// With `--max-resident-mb` a shard-store input is demand-paged instead of
// fully loaded, so training works on datasets much larger than RAM.
// `--multiclass` trains a one-vs-rest committee over every class (no
// `--target` needed), prints a per-class training report, and fans the
// class loop out over `--train-threads` workers — the model bytes are
// identical for any thread count and shard count.
// `serve` loads each model with its `<model>.schema` sidecar (written by
// train) and answers POST /v1/predict (plus the binary protocol on the
// same port) across `--shards` reactor shards until SIGTERM/SIGINT, then
// drains in-flight requests before exiting (see docs/API.md). `probe`
// sends one predict request — JSON by default, the compact binary frame
// with --binary — and prints the score. `tune` races a
// hyperparameter grid over stratified CV with successive-halving /
// confidence-bound elimination and writes EXPERIMENTS.md + BENCH_tune.json
// artifacts to --out (byte-identical for any --threads; see DESIGN.md §12).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <numeric>
#include <string>
#include <string_view>
#include <vector>

#include "assoc/cba.h"
#include "assoc/model_io.h"
#include "cli/usage.h"
#include "common/file_io.h"
#include "common/net.h"
#include "common/string_util.h"
#include "data/csv.h"
#include "data/schema_io.h"
#include "data/shard_store.h"
#include "eval/curves.h"
#include "eval/metrics.h"
#include "pnrule/model_io.h"
#include "pnrule/pnrule.h"
#include "serve/binary.h"
#include "serve/http.h"
#include "serve/json.h"
#include "serve/server.h"
#include "stream/engine.h"
#include "synth/kdd_sim.h"
#include "tune/report.h"

namespace {

using namespace pnr;

struct Args {
  std::string command;
  std::map<std::string, std::string> options;
  bool p1 = false;
  bool no_batching = false;
  bool binary = false;
  bool multiclass = false;
  bool follow = false;
  bool resume = false;
  bool generate = false;
  bool no_retrain = false;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--p1") {
      args.p1 = true;
    } else if (arg == "--no-batching") {
      args.no_batching = true;
    } else if (arg == "--binary") {
      args.binary = true;
    } else if (arg == "--multiclass") {
      args.multiclass = true;
    } else if (arg == "--follow") {
      args.follow = true;
    } else if (arg == "--resume") {
      args.resume = true;
    } else if (arg == "--generate") {
      args.generate = true;
    } else if (arg == "--no-retrain") {
      args.no_retrain = true;
    } else if (arg.rfind("--", 0) == 0 && i + 1 < argc) {
      args.options[arg.substr(2)] = argv[++i];
    } else {
      std::fprintf(stderr, "unrecognized argument '%s'\n", arg.c_str());
    }
  }
  return args;
}

int Usage() {
  std::fprintf(stderr, "%s", PnrUsageText().c_str());
  return 2;
}

double OptionOr(const Args& args, const std::string& key, double fallback);

// True when the file starts with the shard-store magic. A short or
// unreadable file simply isn't a shard store; the CSV reader then produces
// the user-facing error.
bool SniffShardStore(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return false;
  char head[8] = {};
  const size_t n = std::fread(head, 1, sizeof(head), file);
  std::fclose(file);
  return LooksLikeShardStore(std::string_view(head, n));
}

// Paging budget in bytes from --max-resident-mb (0 = load fully).
size_t ResidentBudgetBytes(const Args& args) {
  const double mb = OptionOr(args, "max-resident-mb", 0.0);
  return mb > 0.0 ? static_cast<size_t>(mb * 1024.0 * 1024.0) : 0;
}

StatusOr<Dataset> LoadData(const Args& args) {
  const auto data_it = args.options.find("data");
  if (data_it == args.options.end()) {
    return Status::InvalidArgument("--data is required");
  }
  if (SniffShardStore(data_it->second)) {
    auto reader = ShardStoreReader::Open(data_it->second);
    if (!reader.ok()) return reader.status();
    const size_t budget = ResidentBudgetBytes(args);
    if (budget > 0) return MakePagedDataset(*reader, budget);
    return (*reader)->LoadDataset();
  }
  CsvReadOptions options;
  const auto class_it = args.options.find("class-column");
  if (class_it != args.options.end()) options.class_column = class_it->second;
  options.num_threads = static_cast<size_t>(OptionOr(args, "threads", 1.0));
  return ReadCsv(data_it->second, options);
}

StatusOr<CategoryId> ResolveTarget(const Args& args, const Dataset& data) {
  const auto it = args.options.find("target");
  if (it == args.options.end()) {
    return Status::InvalidArgument("--target is required");
  }
  const CategoryId target = data.schema().class_attr().FindCategory(it->second);
  if (target == kInvalidCategory) {
    return Status::NotFound("class '" + it->second +
                            "' does not occur in the data");
  }
  return target;
}

double OptionOr(const Args& args, const std::string& key,
                double fallback) {
  const auto it = args.options.find(key);
  if (it == args.options.end()) return fallback;
  double value = fallback;
  ParseDouble(it->second, &value);
  return value;
}

BatchScoreOptions BatchOptions(const Args& args) {
  BatchScoreOptions options;
  options.num_threads = static_cast<size_t>(OptionOr(args, "threads", 1.0));
  return options;
}

// The per-class account of a one-vs-rest run: every class appears, with
// either its rule counts or the reason the committee falls back on it.
void PrintTrainReport(const MultiClassTrainReport& report) {
  std::printf("per-class training report:\n");
  std::printf("  %-16s %10s %8s %8s %8s  %s\n", "class", "rows", "p-rules",
              "n-rules", "seconds", "status");
  for (const ClassTrainStatus& entry : report.classes) {
    std::printf("  %-16s %10zu %8zu %8zu %8.2f  %s\n",
                entry.class_name.c_str(), entry.rows, entry.num_p_rules,
                entry.num_n_rules, entry.train_seconds,
                entry.status.ok() ? "ok" : entry.status.ToString().c_str());
  }
  std::printf("  trained %zu of %zu classes\n", report.trained,
              report.classes.size());
}

int TrainMultiClass(const Args& args, const Dataset& data,
                    const PnruleConfig& config) {
  MultiClassPnruleLearner learner(config);
  learner.set_train_threads(
      static_cast<size_t>(OptionOr(args, "train-threads", 1.0)));
  MultiClassTrainReport report;
  auto model = learner.Train(data, &report);
  PrintTrainReport(report);
  if (!model.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }
  std::printf("training-set accuracy: %.4f\n",
              MultiClassAccuracy(*model, data, BatchOptions(args)));

  const auto model_it = args.options.find("model");
  if (model_it != args.options.end()) {
    Status saved =
        SaveMultiClassModel(*model, data.schema(), model_it->second);
    if (!saved.ok()) {
      std::fprintf(stderr, "%s\n", saved.ToString().c_str());
      return 1;
    }
    const std::string schema_path = model_it->second + ".schema";
    saved = SaveSchema(data.schema(), schema_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "%s\n", saved.ToString().c_str());
      return 1;
    }
    std::printf("model written to %s (schema sidecar: %s)\n",
                model_it->second.c_str(), schema_path.c_str());
  }
  return 0;
}

int Train(const Args& args) {
  auto data = LoadData(args);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  PnruleConfig config;
  config.min_coverage_fraction = OptionOr(args, "rp", 0.99);
  config.n_recall_lower_limit = OptionOr(args, "rn", 0.9);
  config.min_support_fraction = OptionOr(args, "min-support", 0.01);
  config.num_threads =
      static_cast<size_t>(OptionOr(args, "threads", 1.0));
  // Out-of-core runs bound the search cache by the same budget that pages
  // the dataset; in-core runs keep it unbounded. Either way the model
  // bytes are unchanged.
  config.search_cache_budget_bytes = ResidentBudgetBytes(args);
  if (args.p1) config.max_p_rule_length = 1;
  if (args.multiclass) return TrainMultiClass(args, *data, config);

  auto target = ResolveTarget(args, *data);
  if (!target.ok()) {
    std::fprintf(stderr, "%s\n", target.status().ToString().c_str());
    return 1;
  }

  auto model = PnruleLearner(config).Train(*data, *target);
  if (!model.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", model->Describe(data->schema()).c_str());
  const Confusion train_eval = EvaluateClassifier(*model, *data, *target);
  std::printf("training-set fit: %s\n", train_eval.ToString().c_str());

  const auto model_it = args.options.find("model");
  if (model_it != args.options.end()) {
    Status saved = SavePnruleModel(*model, data->schema(), model_it->second);
    if (!saved.ok()) {
      std::fprintf(stderr, "%s\n", saved.ToString().c_str());
      return 1;
    }
    // The schema sidecar lets `pnr serve` load this model without any
    // training data on hand.
    const std::string schema_path = model_it->second + ".schema";
    saved = SaveSchema(data->schema(), schema_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "%s\n", saved.ToString().c_str());
      return 1;
    }
    std::printf("model written to %s (schema sidecar: %s)\n",
                model_it->second.c_str(), schema_path.c_str());
  }
  return 0;
}

// Loads either model family through one --model flag: the file header is
// sniffed, so `pnr eval`/`pnr predict` score PNrule and mined associative
// models interchangeably.
StatusOr<std::unique_ptr<BinaryClassifier>> LoadModel(const Args& args,
                                                      const Dataset& data) {
  const auto it = args.options.find("model");
  if (it == args.options.end()) {
    return Status::InvalidArgument("--model is required");
  }
  auto text = ReadFileToString(it->second);
  if (!text.ok()) return text.status();
  std::unique_ptr<BinaryClassifier> classifier;
  if (LooksLikeAssocModel(*text)) {
    auto model = ParseAssocModel(*text, data.schema());
    if (!model.ok()) return model.status();
    classifier = std::make_unique<AssocClassifier>(std::move(model).value());
  } else {
    auto model = ParsePnruleModel(*text, data.schema());
    if (!model.ok()) return model.status();
    classifier = std::make_unique<PnruleClassifier>(std::move(model).value());
  }
  classifier->set_threshold(
      OptionOr(args, "threshold", classifier->threshold()));
  return classifier;
}

// `pnr shard`: rewrite --data as a compressed columnar shard file that the
// other subcommands accept in place of the CSV (and can demand-page).
int Shard(const Args& args) {
  const auto out_it = args.options.find("out");
  if (out_it == args.options.end()) {
    std::fprintf(stderr, "--out is required, e.g. --out train.pns\n");
    return 2;
  }
  auto data = LoadData(args);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  ShardStoreWriteOptions options;
  options.num_shards = static_cast<uint32_t>(OptionOr(args, "shards", 1.0));
  const Status written = WriteShardStore(*data, out_it->second, options);
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  const uint32_t shards =
      options.num_shards == 0
          ? 1
          : static_cast<uint32_t>(std::min<uint64_t>(options.num_shards,
                                                     data->num_rows()));
  std::printf("wrote %zu rows x %zu attrs in %u shard(s) to %s\n",
              data->num_rows(), data->schema().num_attributes(), shards,
              out_it->second.c_str());
  return 0;
}

int Eval(const Args& args) {
  auto data = LoadData(args);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  if (args.multiclass) {
    const auto it = args.options.find("model");
    if (it == args.options.end()) {
      std::fprintf(stderr, "--model is required\n");
      return 2;
    }
    auto model = LoadMultiClassModel(it->second, data->schema());
    if (!model.ok()) {
      std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
      return 1;
    }
    std::printf("accuracy: %.4f\n",
                MultiClassAccuracy(*model, *data, BatchOptions(args)));
    return 0;
  }
  auto target = ResolveTarget(args, *data);
  if (!target.ok()) {
    std::fprintf(stderr, "%s\n", target.status().ToString().c_str());
    return 1;
  }
  auto model = LoadModel(args, *data);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }
  const BatchScoreOptions batch = BatchOptions(args);
  const Confusion c = EvaluateClassifier(**model, *data, *target, batch);
  std::printf("%s\n", c.ToString().c_str());
  const RankingSummary ranking =
      SummarizeRanking(**model, *data, *target, batch);
  std::printf("ROC-AUC=%.4f PR-AUC=%.4f\n", ranking.roc_auc,
              ranking.pr_auc);
  return 0;
}

int Predict(const Args& args) {
  auto data = LoadData(args);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  auto model = LoadModel(args, *data);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }
  const BatchScoreOptions batch = BatchOptions(args);
  std::vector<RowId> rows(data->num_rows());
  std::iota(rows.begin(), rows.end(), RowId{0});
  std::vector<double> scores(rows.size());
  std::vector<uint8_t> predicted(rows.size());
  (*model)->ScoreBatch(*data, rows.data(), rows.size(), scores.data(), batch);
  (*model)->PredictBatch(*data, rows.data(), rows.size(), predicted.data(),
                         batch);
  std::printf("row,score,predicted\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    std::printf("%u,%.6f,%d\n", rows[i], scores[i], predicted[i] ? 1 : 0);
  }
  return 0;
}

// `pnr tune`: race a hyperparameter grid over stratified CV.
//
// With --synth kdd the racer runs on a generated kdd_sim training split and
// the winner is additionally compared against the default configuration on
// the (shifted-distribution) test split — the quick way to reproduce the
// paper-style tuned-vs-default numbers without any data on disk. The
// written artifacts cover the race only, so they are byte-identical for
// any --threads value.
int Tune(const Args& args) {
  const auto target_it = args.options.find("target");
  if (target_it == args.options.end()) {
    std::fprintf(stderr, "--target is required\n");
    return 2;
  }

  // Data: a CSV file or the kdd_sim generator.
  Dataset train(Schema{});
  Dataset test(Schema{});
  bool have_test = false;
  std::string dataset_desc;
  const auto synth_it = args.options.find("synth");
  if (synth_it != args.options.end()) {
    if (synth_it->second != "kdd") {
      std::fprintf(stderr, "unknown --synth generator '%s' (valid: kdd)\n",
                   synth_it->second.c_str());
      return 2;
    }
    KddSimParams params;
    params.train_records =
        static_cast<size_t>(OptionOr(args, "synth-train", 20000.0));
    params.test_records =
        static_cast<size_t>(OptionOr(args, "synth-test", 12000.0));
    params.seed = static_cast<uint64_t>(OptionOr(args, "seed", 20010521.0));
    auto data = GenerateKddSim(params);
    if (!data.ok()) {
      std::fprintf(stderr, "kdd_sim: %s\n", data.status().ToString().c_str());
      return 1;
    }
    KddSimData sim = std::move(data).value();
    train = std::move(sim.train);
    test = std::move(sim.test);
    have_test = true;
    dataset_desc = "kdd_sim train=" + std::to_string(params.train_records) +
                   " test=" + std::to_string(params.test_records);
  } else {
    auto data = LoadData(args);
    if (!data.ok()) {
      std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
      return 1;
    }
    train = std::move(data).value();
    dataset_desc = args.options.at("data") + " rows=" +
                   std::to_string(train.num_rows());
  }
  const CategoryId target =
      train.schema().class_attr().FindCategory(target_it->second);
  if (target == kInvalidCategory) {
    std::fprintf(stderr, "class '%s' does not occur in the data\n",
                 target_it->second.c_str());
    return 1;
  }

  // Grid: --config file or the built-in default space.
  ConfigSpace space = ConfigSpace::Default();
  const auto config_it = args.options.find("config");
  if (config_it != args.options.end()) {
    auto text = ReadFileToString(config_it->second);
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
      return 1;
    }
    auto parsed = ConfigSpace::Parse(*text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return 1;
    }
    space = std::move(parsed).value();
  }
  const std::vector<TrialConfig> configs = space.Enumerate(PnruleConfig{});

  RacerOptions options;
  options.num_folds = static_cast<size_t>(OptionOr(args, "folds", 5.0));
  options.seed = static_cast<uint64_t>(OptionOr(args, "seed", 20010521.0));
  options.max_evals = static_cast<size_t>(OptionOr(args, "budget", 0.0));
  options.confidence_z = OptionOr(args, "z", 2.0);
  options.keep_fraction = OptionOr(args, "keep", 0.5);
  options.num_threads = static_cast<size_t>(OptionOr(args, "threads", 1.0));
  const auto metric_it = args.options.find("metric");
  if (metric_it != args.options.end() &&
      !ParseTuneMetric(metric_it->second, &options.metric)) {
    std::fprintf(stderr,
                 "unknown --metric '%s' (valid: recall precision f)\n",
                 metric_it->second.c_str());
    return 2;
  }

  std::printf("racing %zu configurations over %zu folds on %s "
              "(objective %s)...\n",
              configs.size(), options.num_folds, dataset_desc.c_str(),
              TuneMetricName(options.metric));
  std::fflush(stdout);
  Racer racer(options);
  auto result = racer.Race(train, target, configs);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  TuneReport report;
  report.dataset = dataset_desc;
  report.target = target_it->second;
  report.options = options;
  report.configs = configs;
  report.result = std::move(result).value();
  std::printf("%s", RenderTuneMarkdown(report).c_str());

  // Held-out comparison (synth mode): winner vs default config, trained on
  // the full training split, evaluated on the shifted test split.
  if (have_test) {
    const CategoryId test_target =
        test.schema().class_attr().FindCategory(target_it->second);
    struct Contender {
      const char* name;
      TrialConfig trial;
    };
    const Contender contenders[] = {
        {"tuned", report.configs[report.result.best_config]},
        {"default", TrialConfig{}},
    };
    std::printf("\nheld-out test split (%zu rows):\n", test.num_rows());
    std::vector<RowId> all_rows(train.num_rows());
    std::iota(all_rows.begin(), all_rows.end(), RowId{0});
    for (const Contender& contender : contenders) {
      // Same trainer the racer's folds use, so the winner reproduces its
      // raced configuration exactly — including mined CBA winners.
      auto classifier = TrainTrialClassifier(contender.trial, train, all_rows,
                                             target, options.num_threads);
      if (!classifier.ok()) {
        std::fprintf(stderr, "training failed: %s\n",
                     classifier.status().ToString().c_str());
        return 1;
      }
      BatchScoreOptions batch;
      batch.num_threads = options.num_threads;
      const Confusion c =
          EvaluateClassifier(**classifier, test, test_target, batch);
      std::printf("  %-8s %s\n", contender.name, c.ToString().c_str());
    }
  }

  const auto out_it = args.options.find("out");
  if (out_it != args.options.end()) {
    const Status written = WriteTuneArtifacts(report, out_it->second);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("\nartifacts written to %s/EXPERIMENTS.md and "
                "%s/BENCH_tune.json\n",
                out_it->second.c_str(), out_it->second.c_str());
  }
  return 0;
}

// `pnr mine`: CBA-style associative classifier for a rare target class
// (DESIGN.md §16). Numerics are discretized with the supervised equi-depth/
// entropy discretizer, frequent itemsets are mined with a per-class minimum
// support so rare-class rules survive the global floor, and database-
// coverage selection orders the surviving rules into a model that scores
// through the same compiled rule path as PNrule. The mined model bytes are
// identical for any --threads and for in-RAM vs demand-paged input.
int Mine(const Args& args) {
  auto data = LoadData(args);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  auto target = ResolveTarget(args, *data);
  if (!target.ok()) {
    std::fprintf(stderr, "%s\n", target.status().ToString().c_str());
    return 1;
  }

  AssocMineOptions options;
  options.min_support = OptionOr(args, "min-support", options.min_support);
  options.per_class_min_support =
      OptionOr(args, "per-class-support", options.per_class_min_support);
  options.min_confidence = OptionOr(args, "min-conf", options.min_confidence);
  options.min_lift = OptionOr(args, "min-lift", options.min_lift);
  options.max_len = static_cast<size_t>(
      OptionOr(args, "max-len", static_cast<double>(options.max_len)));
  options.discretize.max_bins = static_cast<size_t>(OptionOr(
      args, "bins", static_cast<double>(options.discretize.max_bins)));
  options.num_threads = static_cast<size_t>(OptionOr(args, "threads", 1.0));

  std::vector<RowId> rows(data->num_rows());
  std::iota(rows.begin(), rows.end(), RowId{0});
  auto mined = MineCba(*data, rows, *target, options);
  if (!mined.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 mined.status().ToString().c_str());
    return 1;
  }
  AssocClassifier model = std::move(mined->model);
  model.set_threshold(OptionOr(args, "threshold", model.threshold()));
  const MineStats& stats = mined->stats;
  std::printf("mined %zu items (%zu numeric attrs discretized), "
              "%zu frequent itemsets (%zu rescued by per-class support),\n"
              "      %zu candidate rules -> %zu selected\n",
              stats.num_items, stats.discretized_attrs,
              stats.frequent_itemsets, stats.itemsets_rescued,
              stats.rules_generated, stats.rules_selected);
  std::printf("%s", model.Describe(data->schema()).c_str());
  const Confusion train_eval =
      EvaluateClassifier(model, *data, *target, BatchOptions(args));
  std::printf("training-set fit: %s\n", train_eval.ToString().c_str());

  const auto model_it = args.options.find("model");
  if (model_it != args.options.end()) {
    Status saved = SaveAssocModel(model, data->schema(), model_it->second);
    if (!saved.ok()) {
      std::fprintf(stderr, "%s\n", saved.ToString().c_str());
      return 1;
    }
    // Schema sidecar, as for train: `pnr serve` loads the mined model with
    // no training data on hand.
    const std::string schema_path = model_it->second + ".schema";
    saved = SaveSchema(data->schema(), schema_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "%s\n", saved.ToString().c_str());
      return 1;
    }
    std::printf("model written to %s (schema sidecar: %s)\n",
                model_it->second.c_str(), schema_path.c_str());
  }
  return 0;
}

// SIGTERM/SIGINT handling: the handler may only touch async-signal-safe
// state, so it writes one byte to a pipe; the main thread blocks on the
// read end and runs the (mutex-taking) graceful Shutdown itself.
WakePipe* g_signal_pipe = nullptr;

void HandleStopSignal(int) {
  if (g_signal_pipe != nullptr) g_signal_pipe->Wake();
}

int Serve(const Args& args) {
  const auto models_it = args.options.find("models");
  if (models_it == args.options.end()) {
    std::fprintf(stderr,
                 "--models is required, e.g. --models fraud=model.txt\n");
    return 2;
  }
  ModelRegistry registry;
  for (const std::string& spec : SplitString(models_it->second, ',')) {
    if (spec.empty()) continue;
    const size_t eq = spec.find('=');
    std::string name;
    std::string path;
    if (eq == std::string::npos) {
      path = spec;
      // Bare path: the name is the filename without directories/extension.
      const size_t slash = path.find_last_of('/');
      const size_t start = slash == std::string::npos ? 0 : slash + 1;
      const size_t dot = path.find('.', start);
      name = path.substr(start, dot == std::string::npos ? std::string::npos
                                                         : dot - start);
    } else {
      name = spec.substr(0, eq);
      path = spec.substr(eq + 1);
    }
    const Status loaded = registry.Load(name, path, path + ".schema");
    if (!loaded.ok()) {
      std::fprintf(stderr, "loading '%s': %s\n", name.c_str(),
                   loaded.ToString().c_str());
      return 1;
    }
    std::printf("loaded model '%s' from %s\n", name.c_str(), path.c_str());
  }

  ServerConfig config;
  config.port = static_cast<uint16_t>(OptionOr(args, "port", 8080.0));
  // 0 = one shard per hardware thread.
  config.num_shards = static_cast<size_t>(OptionOr(args, "shards", 0.0));
  config.batcher.enabled = !args.no_batching;
  config.batcher.max_batch_rows =
      static_cast<size_t>(OptionOr(args, "max-batch", 1024.0));

  PredictionServer server(config, &registry);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("serving %zu model(s) on 127.0.0.1:%u (%zu shards, "
              "batching %s)\n",
              registry.size(), server.port(), server.num_shards(),
              config.batcher.enabled ? "on" : "off");
  std::fflush(stdout);

  auto pipe = MakeWakePipe();
  if (!pipe.ok()) {
    std::fprintf(stderr, "%s\n", pipe.status().ToString().c_str());
    return 1;
  }
  WakePipe signal_pipe = std::move(pipe).value();
  g_signal_pipe = &signal_pipe;
  struct sigaction action {};
  action.sa_handler = HandleStopSignal;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);

  (void)WaitReadable(signal_pipe.read_end.get(), -1);
  std::printf("shutdown signal received, draining...\n");
  std::fflush(stdout);
  server.Shutdown();
  g_signal_pipe = nullptr;
  std::printf("drained; %llu requests served\n",
              static_cast<unsigned long long>(
                  server.Totals().predict.requests));
  return 0;
}

// -- pnr stream --------------------------------------------------------------

// Appends rows [begin, end) of `src` to `dst` (same schema).
void CopyRowRange(const Dataset& src, size_t begin, size_t end, Dataset* dst) {
  const Schema& schema = src.schema();
  for (size_t r = begin; r < end; ++r) {
    const RowId from = static_cast<RowId>(r);
    const RowId to = dst->AddRow();
    for (size_t a = 0; a < schema.num_attributes(); ++a) {
      const AttrIndex attr = static_cast<AttrIndex>(a);
      if (schema.attribute(attr).is_numeric()) {
        dst->set_numeric(to, attr, src.numeric(from, attr));
      } else {
        dst->set_categorical(to, attr, src.categorical(from, attr));
      }
    }
    dst->set_label(to, src.label(from));
  }
}

// `pnr stream --generate`: writes the synthetic drift scenario — a training
// CSV drawn from the kdd_sim training distribution plus a feed whose first
// --pre rows continue that distribution and whose last --post rows come
// from the shifted test distribution (novel subclasses included). The feed
// is what `pnr stream` then replays or tails.
int StreamGenerate(const Args& args) {
  const auto out_it = args.options.find("out-dir");
  if (out_it == args.options.end()) {
    std::fprintf(stderr, "--generate needs --out-dir <dir>\n");
    return 2;
  }
  const std::string out_dir = out_it->second;
  ::mkdir(out_dir.c_str(), 0755);  // EEXIST is fine
  const size_t train_rows = static_cast<size_t>(OptionOr(args, "train", 20000));
  const size_t pre_rows = static_cast<size_t>(OptionOr(args, "pre", 12000));
  const size_t post_rows = static_cast<size_t>(OptionOr(args, "post", 8000));

  KddSimParams params;
  params.train_records = train_rows + pre_rows;
  params.test_records = post_rows;
  params.seed = static_cast<uint64_t>(OptionOr(args, "seed", 20010521));
  auto sim = GenerateKddSim(params);
  if (!sim.ok()) {
    std::fprintf(stderr, "%s\n", sim.status().ToString().c_str());
    return 1;
  }

  Dataset train(sim->train.schema());
  CopyRowRange(sim->train, 0, train_rows, &train);
  Dataset feed(sim->train.schema());
  CopyRowRange(sim->train, train_rows, train_rows + pre_rows, &feed);
  CopyRowRange(sim->test, 0, post_rows, &feed);

  const std::string train_path = out_dir + "/train.csv";
  const std::string feed_path = out_dir + "/feed.csv";
  Status written = WriteCsv(train, train_path, ',');
  if (written.ok()) written = WriteCsv(feed, feed_path, ',');
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%zu rows) and %s (%zu rows: %zu pre-drift + %zu "
              "shifted)\n",
              train_path.c_str(), train.num_rows(), feed_path.c_str(),
              feed.num_rows(), pre_rows, post_rows);
  return 0;
}

// `pnr stream`: replay or tail an append-only CSV feed through a compiled
// model with windowed rare-class metrics, PSI drift detection, and
// drift-triggered background retraining + registry hot-swap (DESIGN.md
// §15). The journal, retrained models, and swap sequence are byte-identical
// at any --threads.
int Stream(const Args& args) {
  if (args.generate) return StreamGenerate(args);

  const auto data_it = args.options.find("data");
  const auto model_it = args.options.find("model");
  const auto target_it = args.options.find("target");
  if (data_it == args.options.end() || model_it == args.options.end() ||
      target_it == args.options.end()) {
    std::fprintf(stderr,
                 "pnr stream needs --data <feed.csv>, --model <file>, and "
                 "--target <class>\n");
    return 2;
  }
  const std::string out_dir = args.options.count("out-dir")
                                  ? args.options.at("out-dir")
                                  : std::string("stream_out");
  ::mkdir(out_dir.c_str(), 0755);

  auto schema = LoadSchema(model_it->second + ".schema");
  if (!schema.ok()) {
    std::fprintf(stderr, "%s\n", schema.status().ToString().c_str());
    return 1;
  }
  const CategoryId target =
      schema->class_attr().FindCategory(target_it->second);
  if (target == kInvalidCategory) {
    std::fprintf(stderr, "class '%s' is not in the model schema\n",
                 target_it->second.c_str());
    return 1;
  }

  const std::string model_name = args.options.count("model-name")
                                     ? args.options.at("model-name")
                                     : std::string("stream");
  const std::string checkpoint_path = args.options.count("checkpoint")
                                          ? args.options.at("checkpoint")
                                          : std::string();

  // Resume: the checkpoint names the model to reinstall and positions the
  // stream; otherwise the run starts from --model at window 0.
  StreamCheckpoint checkpoint;
  bool resumed = false;
  if (args.resume) {
    if (checkpoint_path.empty()) {
      std::fprintf(stderr, "--resume needs --checkpoint <file>\n");
      return 2;
    }
    auto text = ReadFileToString(checkpoint_path);
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
      return 1;
    }
    auto parsed = ParseStreamCheckpoint(*text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return 1;
    }
    checkpoint = std::move(parsed).value();
    resumed = true;
  }

  ModelRegistry registry;
  const std::string initial_model =
      resumed ? checkpoint.model_path : model_it->second;
  Status loaded = registry.Load(model_name, initial_model,
                                initial_model + ".schema");
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.ToString().c_str());
    return 1;
  }

  // Budget: --threads workers are reserved for scoring; retraining leases
  // up to --train-threads more, so training can never starve the scorer.
  const size_t score_threads =
      std::max<size_t>(1, static_cast<size_t>(OptionOr(args, "threads", 1)));
  const size_t train_threads = std::max<size_t>(
      1, static_cast<size_t>(OptionOr(args, "train-threads", 2)));
  ThreadBudget budget(score_threads + train_threads);
  budget.Reserve(score_threads);

  StreamEngineOptions options;
  options.window_rows =
      static_cast<uint64_t>(OptionOr(args, "window", 1000));
  options.sliding_windows =
      static_cast<size_t>(OptionOr(args, "sliding", 5));
  options.threshold = OptionOr(args, "threshold", 0.5);
  options.score_threads = score_threads;
  options.target = target;
  options.retrain_enabled = !args.no_retrain;
  options.retrain_rows =
      static_cast<uint64_t>(OptionOr(args, "retrain-rows", 6000));
  options.max_swaps = static_cast<uint64_t>(
      OptionOr(args, "max-swaps", static_cast<double>(1ull << 62)));
  options.model_path = initial_model;
  options.checkpoint_path = checkpoint_path;
  options.drift.reference_windows =
      static_cast<size_t>(OptionOr(args, "reference-windows", 4));
  options.drift.psi_threshold = OptionOr(args, "psi-threshold", 0.25);
  options.drift.score_psi_threshold =
      OptionOr(args, "score-psi-threshold", 0.25);
  options.drift.label_psi_threshold =
      OptionOr(args, "label-psi-threshold", 0.05);
  options.drift.confirm_windows =
      static_cast<size_t>(OptionOr(args, "confirm-windows", 2));
  options.retrain.out_dir = out_dir;
  options.retrain.model_name = model_name;
  options.retrain.want_threads = train_threads;
  options.retrain.max_resident_mb =
      static_cast<size_t>(OptionOr(args, "max-resident-mb", 0));
  options.retrain.learner.min_support_fraction =
      OptionOr(args, "min-support", 0.01);

  std::FILE* journal = nullptr;
  if (args.options.count("journal")) {
    journal = std::fopen(args.options.at("journal").c_str(),
                         resumed ? "a" : "w");
    if (journal == nullptr) {
      std::fprintf(stderr, "cannot open journal %s\n",
                   args.options.at("journal").c_str());
      return 1;
    }
  }
  options.line_fn = [journal](const std::string& line) {
    std::printf("%s\n", line.c_str());
    if (journal != nullptr) {
      std::fprintf(journal, "%s\n", line.c_str());
      std::fflush(journal);
    }
  };

  StreamEngine engine(&*schema, &registry, &budget, options);
  if (resumed) {
    Status restored = engine.RestoreCheckpoint(checkpoint);
    if (!restored.ok()) {
      std::fprintf(stderr, "%s\n", restored.ToString().c_str());
      if (journal != nullptr) std::fclose(journal);
      return 1;
    }
    std::printf("resumed at window %llu (%llu swaps so far)\n",
                static_cast<unsigned long long>(checkpoint.windows),
                static_cast<unsigned long long>(checkpoint.swaps));
  }
  Status started = engine.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    if (journal != nullptr) std::fclose(journal);
    return 1;
  }

  // Optional co-hosted serving fleet on the same registry: a hot-swap from
  // the retrain orchestrator is visible to HTTP clients (and in /metrics
  // as pnr_serve_model_version / pnr_serve_model_swaps_total).
  std::unique_ptr<PredictionServer> server;
  if (args.options.count("serve-port")) {
    ServerConfig config;
    config.port =
        static_cast<uint16_t>(OptionOr(args, "serve-port", 8080));
    config.num_shards =
        static_cast<size_t>(OptionOr(args, "serve-shards", 1));
    server = std::make_unique<PredictionServer>(config, &registry);
    Status serve_started = server->Start();
    if (!serve_started.ok()) {
      std::fprintf(stderr, "%s\n", serve_started.ToString().c_str());
      if (journal != nullptr) std::fclose(journal);
      return 1;
    }
    std::printf("serving on 127.0.0.1:%u while streaming\n", server->port());
  }

  FeedTailer::Options tail_options;
  tail_options.catchup_threads = score_threads;
  auto opened = FeedTailer::Open(
      data_it->second, &*schema,
      [&engine](const ParsedRow& row) { engine.Ingest(row); }, tail_options);
  if (!opened.ok()) {
    std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
    if (journal != nullptr) std::fclose(journal);
    return 1;
  }
  FeedTailer tailer = std::move(opened).value();

  int exit_code = 0;
  Status pumped = engine.Pump();
  if (pumped.ok() && args.follow) {
    // Tail mode: poll for appended bytes until a stop signal or the idle
    // limit. Determinism still holds — the journal depends only on the
    // bytes, not on how polling sliced them.
    auto pipe = MakeWakePipe();
    if (!pipe.ok()) {
      std::fprintf(stderr, "%s\n", pipe.status().ToString().c_str());
      if (journal != nullptr) std::fclose(journal);
      return 1;
    }
    WakePipe signal_pipe = std::move(pipe).value();
    g_signal_pipe = &signal_pipe;
    struct sigaction action {};
    action.sa_handler = HandleStopSignal;
    ::sigaction(SIGTERM, &action, nullptr);
    ::sigaction(SIGINT, &action, nullptr);
    const int poll_ms =
        std::max(1, static_cast<int>(OptionOr(args, "poll-ms", 200)));
    const int idle_limit =
        static_cast<int>(OptionOr(args, "idle-exit-polls", 0));
    int idle_polls = 0;
    while (pumped.ok()) {
      auto read = tailer.Poll();
      if (!read.ok()) {
        pumped = read.status();
        break;
      }
      if (*read > 0) {
        idle_polls = 0;
        pumped = engine.Pump();
        continue;
      }
      ++idle_polls;
      if (idle_limit > 0 && idle_polls >= idle_limit) break;
      auto woke = WaitReadable(signal_pipe.read_end.get(), poll_ms);
      if (woke.ok() && *woke) break;  // SIGTERM/SIGINT
    }
    g_signal_pipe = nullptr;
  }
  if (pumped.ok()) {
    auto final_read = tailer.Poll();  // drain anything appended meanwhile
    if (final_read.ok()) {
      tailer.Finish();
      pumped = engine.FinishStream();
    } else {
      pumped = final_read.status();
    }
  }
  if (!pumped.ok()) {
    std::fprintf(stderr, "%s\n", pumped.ToString().c_str());
    exit_code = 1;
  }

  const FeedParser& parser = tailer.parser();
  std::printf("stream done: %llu rows, %llu windows, %llu swaps, %llu "
              "rejected lines\n",
              static_cast<unsigned long long>(engine.rows_ingested()),
              static_cast<unsigned long long>(engine.windows_processed()),
              static_cast<unsigned long long>(engine.swaps_done()),
              static_cast<unsigned long long>(parser.error_count()));
  for (const std::string& error : parser.errors()) {
    std::fprintf(stderr, "%s\n", error.c_str());
  }
  if (server != nullptr) server->Shutdown();
  if (journal != nullptr) std::fclose(journal);
  return exit_code;
}

// One predict request against a running server: JSON by default, the
// compact binary frame with --binary (which needs the schema sidecar to
// lay out columns). The smoke test drives both protocols through this.
int Probe(const Args& args) {
  const uint16_t port = static_cast<uint16_t>(OptionOr(args, "port", 8080.0));
  const auto row_it = args.options.find("row");
  if (row_it == args.options.end()) {
    std::fprintf(stderr, "--row is required, e.g. --row \"x=0.5,color=red\"\n");
    return 2;
  }
  std::vector<std::pair<std::string, std::string>> cells;
  for (const std::string& part : SplitString(row_it->second, ',')) {
    if (part.empty()) continue;
    const size_t eq = part.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "--row entry '%s' is not attr=value\n",
                   part.c_str());
      return 2;
    }
    cells.emplace_back(part.substr(0, eq), part.substr(eq + 1));
  }
  const auto model_it = args.options.find("model");
  const std::string model =
      model_it == args.options.end() ? "" : model_it->second;

  if (args.options.count("binary") != 0 || args.binary) {
    const auto schema_it = args.options.find("schema");
    if (schema_it == args.options.end()) {
      std::fprintf(stderr, "--binary needs --schema <model>.schema\n");
      return 2;
    }
    auto schema = LoadSchema(schema_it->second);
    if (!schema.ok()) {
      std::fprintf(stderr, "%s\n", schema.status().ToString().c_str());
      return 1;
    }
    std::string payload;
    const Status encoded = EncodeBinaryRowFromText(*schema, cells, &payload);
    if (!encoded.ok()) {
      std::fprintf(stderr, "%s\n", encoded.ToString().c_str());
      return 1;
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      std::perror("socket");
      return 1;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      std::perror("connect");
      ::close(fd);
      return 1;
    }
    const std::string frame = EncodeBinaryRequest(model, payload);
    size_t sent = 0;
    while (sent < frame.size()) {
      const ssize_t n = ::send(fd, frame.data() + sent, frame.size() - sent, 0);
      if (n <= 0) {
        std::perror("send");
        ::close(fd);
        return 1;
      }
      sent += static_cast<size_t>(n);
    }
    std::string data;
    char buf[4096];
    BinaryResponse response;
    size_t consumed = 0;
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n < 0) {
        std::perror("recv");
        ::close(fd);
        return 1;
      }
      if (n == 0) {
        std::fprintf(stderr, "connection closed mid-response\n");
        ::close(fd);
        return 1;
      }
      data.append(buf, static_cast<size_t>(n));
      const Status parsed = ParseBinaryResponse(data, &response, &consumed);
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
        ::close(fd);
        return 1;
      }
      if (consumed > 0) break;
    }
    ::close(fd);
    if (response.status != BinaryStatus::kOk) {
      std::fprintf(stderr, "binary status %d: %s\n",
                   static_cast<int>(response.status),
                   response.error.c_str());
      return 1;
    }
    std::printf("binary ok: score %.17g predicted %d\n", response.scores[0],
                static_cast<int>(response.predicted[0]));
    return 0;
  }

  // JSON path: every value travels as a string — the server re-parses
  // numerics through ParseDouble, so typed encoding is unnecessary here.
  std::string body = "{";
  if (!model.empty()) {
    body += "\"model\":";
    AppendJsonString(&body, model);
    body += ',';
  }
  body += "\"rows\":[{";
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) body += ',';
    AppendJsonString(&body, cells[i].first);
    body += ':';
    AppendJsonString(&body, cells[i].second);
  }
  body += "}]}";
  auto connect = HttpClient::Connect(port);
  if (!connect.ok()) {
    std::fprintf(stderr, "%s\n", connect.status().ToString().c_str());
    return 1;
  }
  HttpClient client = std::move(connect).value();
  auto response = client.Roundtrip("POST", "/v1/predict", body);
  if (!response.ok()) {
    std::fprintf(stderr, "%s\n", response.status().ToString().c_str());
    return 1;
  }
  std::printf("HTTP %d %s\n", response->status, response->body.c_str());
  return response->status == 200 ? 0 : 1;
}

}  // namespace

// Handlers paired positionally with kPnrSubcommands (cli/usage.h); the
// static_assert keeps the two tables the same length, and cli_usage_test
// keeps every listed subcommand present in the usage text.
int (*const kHandlers[])(const Args&) = {
    Train, Eval, Predict, Shard, Mine, Serve, Probe, Tune, Stream,
};
static_assert(sizeof(kHandlers) / sizeof(kHandlers[0]) == kNumPnrSubcommands,
              "dispatch table out of sync with kPnrSubcommands");

int main(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  for (size_t i = 0; i < kNumPnrSubcommands; ++i) {
    if (args.command == kPnrSubcommands[i]) return kHandlers[i](args);
  }
  return Usage();
}
