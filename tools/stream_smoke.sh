#!/usr/bin/env bash
# End-to-end streaming smoke: generates the synthetic drift scenario with
# the CLI, trains a base model, tails a live feed through `pnr stream` with
# a co-hosted serving fleet, and checks the whole loop — drift confirmation
# on appended shifted traffic, background retrain, registry hot-swap
# visible over HTTP /metrics, graceful SIGTERM shutdown, and checkpoint
# resume. Run by the CI streaming job; needs only bash, awk, and curl.
#
# Usage: tools/stream_smoke.sh [build-dir]   (default: build)

set -euo pipefail
cd "$(dirname "$0")/.."
build_dir="${1:-build}"
pnr="$build_dir/tools/pnr"
[ -x "$pnr" ] || { echo "missing $pnr — build first" >&2; exit 2; }

workdir="$(mktemp -d)"
stream_pid=""
cleanup() {
  [ -n "$stream_pid" ] && kill -9 "$stream_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== generate drift scenario =="
"$pnr" stream --generate --out-dir "$workdir" \
       --train 6000 --pre 4000 --post 3000 --seed 427 \
       > "$workdir/generate.log"
grep -q "4000 pre-drift + 3000 shifted" "$workdir/generate.log"

echo "== train base model =="
"$pnr" train --data "$workdir/train.csv" --target r2l \
       --model "$workdir/m.txt" > "$workdir/train.log"
[ -f "$workdir/m.txt.schema" ] || { echo "no schema sidecar" >&2; exit 1; }

# The stream starts on the stationary half only; the shifted rows arrive
# later as live appends, so every phase transition below is driven by this
# script, not by timing.
head -n 4001 "$workdir/feed.csv" > "$workdir/live.csv"   # header + 4000 pre
tail -n 3000 "$workdir/feed.csv" > "$workdir/shifted.csv"

port=18457
echo "== stream (tail mode, serving on port $port) =="
"$pnr" stream --data "$workdir/live.csv" --model "$workdir/m.txt" \
       --target r2l --out-dir "$workdir/stream_out" \
       --window 500 --retrain-rows 3000 \
       --checkpoint "$workdir/ckpt" --journal "$workdir/journal.txt" \
       --follow --poll-ms 50 \
       --serve-port "$port" > "$workdir/stream.log" &
stream_pid=$!

base="http://127.0.0.1:$port"
for _ in $(seq 1 100); do
  curl -sf "$base/healthz" > /dev/null 2>&1 && break
  kill -0 "$stream_pid" 2>/dev/null || { cat "$workdir/stream.log"; exit 1; }
  sleep 0.1
done
curl -sf "$base/healthz" | grep -q ok

# One predict against the stationary stream: the serving shard loads the
# base model, so the later hot-swap registers as an observed version
# change. The row spec is the first feed record, named per the header.
row_spec="$(awk -F, 'NR==1 {n=split($0,h,FS); next}
                     NR==2 {for (i=1; i<n; ++i)
                              s = s (i>1 ? "," : "") h[i] "=" $i;
                            print s; exit}' "$workdir/feed.csv")"
echo "== probe the base model =="
"$pnr" probe --port "$port" --model stream --row "$row_spec" \
       --schema "$workdir/m.txt.schema" > "$workdir/probe1.log"
curl -sf "$base/metrics" | grep -q 'pnr_serve_model_version 1'

echo "== append shifted traffic until drift confirms =="
head -n 2500 "$workdir/shifted.csv" >> "$workdir/live.csv"
started=""
for _ in $(seq 1 200); do
  if grep -q "retrain start" "$workdir/journal.txt" 2>/dev/null; then
    started=yes
    break
  fi
  sleep 0.1
done
[ -n "$started" ] || { echo "shifted traffic never confirmed drift" >&2;
                       cat "$workdir/journal.txt" 2>/dev/null; exit 1; }

# The background retrain installs into the registry the moment training
# finishes; poll /metrics (each probe refreshes the shard snapshot) until
# the new version is being served.
echo "== wait for the retrained model to reach the registry =="
installed=""
for _ in $(seq 1 200); do
  "$pnr" probe --port "$port" --model stream --row "$row_spec" \
         --schema "$workdir/m.txt.schema" > /dev/null
  if curl -sf "$base/metrics" | grep -q 'pnr_serve_model_version 2'; then
    installed=yes
    break
  fi
  sleep 0.1
done
[ -n "$installed" ] || { echo "retrained model never installed" >&2;
                         cat "$workdir/journal.txt"; exit 1; }
curl -sf "$base/metrics" | grep -q 'pnr_serve_model_swaps_total 1'

# The engine claims the finished retrain at its next pump — i.e. when the
# feed grows again. Append the remaining shifted rows to resolve the swap.
echo "== append the rest: swap resolves at the next window =="
tail -n 500 "$workdir/shifted.csv" >> "$workdir/live.csv"
swapped=""
for _ in $(seq 1 200); do
  if grep -q "^swap window=" "$workdir/journal.txt"; then
    swapped=yes
    break
  fi
  sleep 0.1
done
[ -n "$swapped" ] || { echo "hot-swap never journaled" >&2;
                       cat "$workdir/journal.txt"; exit 1; }
grep -q "retrain done" "$workdir/journal.txt"
grep -q "model=v2" "$workdir/journal.txt"

echo "== graceful shutdown =="
kill -TERM "$stream_pid"
wait "$stream_pid"
stream_pid=""
grep -q "stream done: 7000 rows" "$workdir/stream.log"
grep -q " 1 swaps, 0 rejected lines" "$workdir/stream.log"
[ -f "$workdir/ckpt" ] || { echo "no checkpoint written" >&2; exit 1; }
grep -q "pnr-stream-checkpoint v1" "$workdir/ckpt"

echo "== resume from checkpoint =="
"$pnr" stream --data "$workdir/live.csv" --model "$workdir/m.txt" \
       --target r2l --out-dir "$workdir/stream_out" \
       --window 500 --retrain-rows 3000 \
       --checkpoint "$workdir/ckpt" --resume \
       --journal "$workdir/journal2.txt" > "$workdir/resume.log"
grep -q "resumed at window" "$workdir/resume.log"
grep -q "stream done: 7000 rows" "$workdir/resume.log"

echo "stream smoke passed"
