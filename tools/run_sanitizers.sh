#!/usr/bin/env bash
# Builds the project under ThreadSanitizer and AddressSanitizer and runs the
# concurrency-sensitive tests (ctest label `sanitize`; pass -a to run the
# full suite). The sanitized trees live next to the regular build in
# build-tsan/ and build-asan/ so they never pollute it.
#
# Usage: tools/run_sanitizers.sh [-a] [thread|address]
#   -a       run every test, not just the `sanitize` label
#   thread / address   run only that sanitizer (default: both)

set -euo pipefail
cd "$(dirname "$0")/.."

label_args=(-L sanitize)
sanitizers=()
for arg in "$@"; do
  case "$arg" in
    -a) label_args=() ;;
    thread|address) sanitizers+=("$arg") ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done
[ ${#sanitizers[@]} -eq 0 ] && sanitizers=(thread address)

for san in "${sanitizers[@]}"; do
  build_dir="build-${san:0:1}san"   # build-tsan / build-asan
  [ "$san" = address ] && build_dir=build-asan
  [ "$san" = thread ] && build_dir=build-tsan
  echo "=== $san sanitizer ($build_dir) ==="
  cmake -B "$build_dir" -S . -DPNR_SANITIZE="$san" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$build_dir" -j"$(nproc)" --target \
        thread_pool_test sorted_column_cache_test \
        condition_search_oracle_test parallel_determinism_test \
        batch_score_test ingest_test serve_test \
        serve_binary_test serve_metrics_test \
        fault_injection_test serve_fault_test fuzz_replay \
        stratified_cv_test tune_test pnr_cli \
        shard_store_test train_sharded_test
  if [ ${#label_args[@]} -eq 0 ]; then
    cmake --build "$build_dir" -j"$(nproc)"
  fi
  (cd "$build_dir" && ctest "${label_args[@]}" --output-on-failure)
done
echo "sanitizer runs passed"
