#!/usr/bin/env bash
# End-to-end serving smoke: trains a tiny model with the CLI, starts
# `pnr serve --shards 4`, exercises every endpoint over real HTTP, sends
# one binary-protocol request through `pnr probe --binary`, and checks
# that SIGTERM drains gracefully. Run by the CI serving job; needs only
# bash, awk, and curl.
#
# Usage: tools/serve_smoke.sh [build-dir]   (default: build)

set -euo pipefail
cd "$(dirname "$0")/.."
build_dir="${1:-build}"
pnr="$build_dir/tools/pnr"
[ -x "$pnr" ] || { echo "missing $pnr — build first" >&2; exit 2; }

workdir="$(mktemp -d)"
server_pid=""
cleanup() {
  [ -n "$server_pid" ] && kill -9 "$server_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

# A trivially learnable dataset: positive iff x is large.
awk 'BEGIN {
  print "x,y,label";
  for (i = 0; i < 400; ++i) {
    x = (i % 100) / 100.0;
    y = ((i * 7) % 100) / 100.0;
    print x "," y "," (x >= 0.8 ? "pos" : "neg");
  }
}' > "$workdir/train.csv"

echo "== train =="
"$pnr" train --data "$workdir/train.csv" --target pos \
       --model "$workdir/m.txt" > "$workdir/train.log"
grep -q "schema sidecar" "$workdir/train.log"
[ -f "$workdir/m.txt.schema" ] || { echo "no schema sidecar" >&2; exit 1; }

port=18437
echo "== serve (port $port, 4 shards) =="
"$pnr" serve --models m="$workdir/m.txt" --port "$port" --shards 4 \
       > "$workdir/serve.log" &
server_pid=$!

base="http://127.0.0.1:$port"
for _ in $(seq 1 100); do
  curl -sf "$base/healthz" > /dev/null 2>&1 && break
  kill -0 "$server_pid" 2>/dev/null || { cat "$workdir/serve.log"; exit 1; }
  sleep 0.1
done
curl -sf "$base/healthz" | grep -q ok

echo "== endpoints =="
curl -sf "$base/v1/models" | grep -q '"name":"m"'

predict_body='{"model":"m","rows":[{"x":0.95,"y":0.1},{"x":0.05,"y":0.9}]}'
response="$(curl -sf -X POST -d "$predict_body" "$base/v1/predict")"
echo "predict: $response"
echo "$response" | grep -q '"scores"'
echo "$response" | grep -q '"predicted":\[1,0\]'

code="$(curl -s -o /dev/null -w '%{http_code}' -X POST -d 'not json' \
        "$base/v1/predict")"
[ "$code" = 400 ] || { echo "expected 400 for bad JSON, got $code" >&2; exit 1; }

code="$(curl -s -o /dev/null -w '%{http_code}' "$base/nope")"
[ "$code" = 404 ] || { echo "expected 404, got $code" >&2; exit 1; }

metrics="$(curl -sf "$base/metrics")"
echo "$metrics" | grep -q 'pnr_rows_scored_total 2'
echo "$metrics" | grep -q 'pnr_serve_shard_requests_total{shard="0"}'
echo "$metrics" | grep -q 'pnr_serve_shard_requests_total{shard="3"}'

echo "== binary protocol probe =="
probe_out="$("$pnr" probe --port "$port" --model m \
             --row "x=0.95,y=0.1" \
             --schema "$workdir/m.txt.schema" --binary)"
echo "probe: $probe_out"
echo "$probe_out" | grep -q 'binary ok'
echo "$probe_out" | grep -q 'predicted 1'
metrics="$(curl -sf "$base/metrics")"
echo "$metrics" | grep -q 'pnr_rows_scored_total 3'

echo "== graceful drain =="
kill -TERM "$server_pid"
wait "$server_pid"
server_pid=""
grep -q "drained" "$workdir/serve.log"

echo "serve smoke passed"
