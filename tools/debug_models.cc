#include <cstdio>
#include "c45/rules.h"
#include "c45/tree_classifier.h"
#include "ripper/ripper.h"
#include "eval/metrics.h"
#include "synth/sweep.h"
int main(int argc, char** argv) {
  using namespace pnr;
  int idx = argc > 1 ? atoi(argv[1]) : 3;
  NumericModelParams params = NsynParams(idx);
  TrainTestPair data = MakeNumericPair(params, argc > 2 ? (size_t)atoll(argv[2]) : 100000, argc > 3 ? (size_t)atoll(argv[3]) : 50000, 20010521 + (uint64_t)idx);
  CategoryId target = data.train.schema().class_attr().FindCategory("C");

  RipperLearner ripper;
  auto rmodel = ripper.Train(data.train, target);
  printf("=== RIPPER ===\n%s\n", rmodel->Describe(data.train.schema()).c_str());
  printf("test: %s\n\n", EvaluateClassifier(*rmodel, data.test, target).ToString().c_str());

  C45RulesLearner c45r;
  auto cmodel = c45r.Train(data.train, target);
  printf("=== C4.5rules ===\n%s\n", cmodel->Describe(data.train.schema()).c_str());
  printf("test: %s\n", EvaluateClassifier(*cmodel, data.test, target).ToString().c_str());
  return 0;
}
