// Rarity study: how the advantage of two-phase induction depends on how
// rare the target class is (the paper's Table 5, as a library tour).
// Trains PNrule, RIPPER and C4.5rules on the syngen model while the target
// share rises from 0.3% to ~25% by subsampling the non-target class.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/rarity_study

#include <cstdio>

#include "c45/rules.h"
#include "eval/metrics.h"
#include "pnrule/pnrule.h"
#include "ripper/ripper.h"
#include "synth/sweep.h"

int main() {
  using namespace pnr;

  GeneralModelParams params;  // syngen, tr = nr = 0.2
  const TrainTestPair base = MakeGeneralPair(params, /*train_records=*/150000,
                                             /*test_records=*/75000,
                                             /*seed=*/21);
  const CategoryId target =
      base.train.schema().class_attr().FindCategory("C");

  std::printf("%-8s %-6s %-22s %-22s %-22s\n", "ntcfrac", "tc%", "PNrule",
              "RIPPER", "C4.5rules");
  for (double fraction : {1.0, 0.1, 0.05, 0.01}) {
    const TrainTestPair data = SubsamplePair(base, target, fraction, 7);
    const double share =
        static_cast<double>(data.train.CountClass(target)) /
        static_cast<double>(data.train.num_rows());

    auto format = [](const Confusion& c) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "R=%4.2f P=%4.2f F=%.3f", c.recall(),
                    c.precision(), c.f_measure());
      return std::string(buf);
    };

    PnruleConfig config;
    config.min_coverage_fraction = 0.99;
    config.n_recall_lower_limit = 0.95;
    auto pn = PnruleLearner(config).Train(data.train, target);
    auto rip = RipperLearner().Train(data.train, target);
    auto c45 = C45RulesLearner().Train(data.train, target);
    if (!pn.ok() || !rip.ok() || !c45.ok()) {
      std::fprintf(stderr, "training failed\n");
      return 1;
    }
    std::printf("%-8.3f %-6.1f %-22s %-22s %-22s\n", fraction, 100.0 * share,
                format(EvaluateClassifier(*pn, data.test, target)).c_str(),
                format(EvaluateClassifier(*rip, data.test, target)).c_str(),
                format(EvaluateClassifier(*c45, data.test, target)).c_str());
  }
  std::printf(
      "\nExpected shape (paper, Table 5): the rarer the class, the larger\n"
      "PNrule's edge; as the class becomes prevalent the methods converge.\n");
  return 0;
}
