// Quickstart: train a PNrule model on a rare-class synthetic dataset,
// inspect the learned P-rules / N-rules / ScoreMatrix, and evaluate it.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "eval/metrics.h"
#include "pnrule/model_io.h"
#include "pnrule/pnrule.h"
#include "synth/sweep.h"

int main() {
  using namespace pnr;

  // 1. Generate a rare-class dataset: the paper's nsyn3 geometry --
  //    a 0.3% target class whose signatures are 4 tiny peaks in the first
  //    attribute, with two non-target subclasses owning the other two.
  NumericModelParams params = NsynParams(3);
  TrainTestPair data = MakeNumericPair(params, /*train_records=*/60000,
                                       /*test_records=*/30000,
                                       /*seed=*/7);
  const CategoryId target =
      data.train.schema().class_attr().FindCategory("C");
  std::printf("train: %zu records, %zu of class C (%.2f%%)\n",
              data.train.num_rows(), data.train.CountClass(target),
              100.0 * static_cast<double>(data.train.CountClass(target)) /
                  static_cast<double>(data.train.num_rows()));

  // 2. Configure PNrule. rp bounds the recall from above (stop adding
  //    P-rules once 99% of the class is covered); rn bounds it from below
  //    (N-rules may not erase recall beyond 95%).
  PnruleConfig config;
  config.min_coverage_fraction = 0.99;  // rp
  config.n_recall_lower_limit = 0.95;   // rn

  // 3. Train.
  PnruleLearner learner(config);
  PnruleTrainInfo info;
  auto model = learner.TrainOnRows(data.train, data.train.AllRows(), target,
                                   &info);
  if (!model.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }
  std::printf("\nlearned %zu P-rules and %zu N-rules "
              "(P-phase covered %.1f%% of the class)\n\n",
              info.num_p_rules, info.num_n_rules,
              100.0 * info.p_coverage_fraction);

  // 4. Inspect the model: P-rules should be the 4 target peaks in a0,
  //    N-rules the peaks of NC1 / NC2 in a1 / a2.
  std::printf("%s\n", model->Describe(data.train.schema()).c_str());

  // 5. Evaluate on held-out data.
  const Confusion confusion = EvaluateClassifier(*model, data.test, target);
  std::printf("test: %s\n", confusion.ToString().c_str());

  // 6. Persist the model and load it back (attribute names, not ids, are
  //    serialized, so the model works against any schema-compatible data).
  const std::string path = "/tmp/pnrule_quickstart_model.txt";
  if (SavePnruleModel(*model, data.train.schema(), path).ok()) {
    auto reloaded = LoadPnruleModel(path, data.train.schema());
    if (reloaded.ok()) {
      const Confusion again =
          EvaluateClassifier(*reloaded, data.test, target);
      std::printf("reloaded from %s: F=%.4f (identical: %s)\n",
                  path.c_str(), again.f_measure(),
                  again.f_measure() == confusion.f_measure() ? "yes" : "no");
    }
  }
  return 0;
}
