// Fraud scoring: build a rare-class transaction dataset programmatically
// with the data API, train PNrule, and pick an operating threshold from the
// recall/precision curve (fraud review queues usually optimize a
// recall-weighted F2 rather than F1).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/fraud_scoring

#include <cstdio>

#include "common/rng.h"
#include "data/csv.h"
#include "eval/metrics.h"
#include "pnrule/pnrule.h"

namespace {

using namespace pnr;

Schema MakeTransactionSchema() {
  Schema schema;
  schema.AddAttribute(Attribute::Numeric("amount"));
  schema.AddAttribute(Attribute::Numeric("hour"));
  schema.AddAttribute(Attribute::Numeric("velocity_24h"));
  schema.AddAttribute(Attribute::Categorical(
      "merchant", {"grocery", "electronics", "travel", "gaming", "other"}));
  schema.AddAttribute(Attribute::Categorical(
      "country", {"domestic", "neighbor", "highrisk"}));
  schema.AddAttribute(
      Attribute::Categorical("card_present", {"yes", "no"}));
  schema.GetOrAddClass("legit");
  schema.GetOrAddClass("fraud");
  return schema;
}

// 0.5% fraud with two impure signatures:
//  (a) card-not-present electronics/gaming from high-risk countries —
//      but plenty of legitimate cross-border shopping looks the same;
//  (b) high-velocity bursts of small night-time charges — which also
//      happen around holidays for legitimate cards.
Dataset GenerateTransactions(size_t n, uint64_t seed) {
  Rng rng(seed);
  Dataset dataset(MakeTransactionSchema());
  dataset.Reserve(n);
  const Schema& schema = dataset.schema();
  const CategoryId fraud = schema.class_attr().FindCategory("fraud");
  const CategoryId legit = schema.class_attr().FindCategory("legit");
  for (size_t i = 0; i < n; ++i) {
    const RowId row = dataset.AddRow();
    const bool is_fraud = rng.NextBool(0.005);
    dataset.set_label(row, is_fraud ? fraud : legit);
    double amount = rng.NextDouble(5, 300);
    double hour = rng.NextDouble(0, 24);
    double velocity = rng.NextDouble(0, 6);
    int merchant = static_cast<int>(rng.NextBelow(5));
    int country = rng.NextBool(0.85) ? 0 : (rng.NextBool(0.7) ? 1 : 2);
    int card_present = rng.NextBool(0.7) ? 0 : 1;
    if (is_fraud) {
      if (rng.NextBool(0.6)) {
        // Signature (a).
        merchant = rng.NextBool(0.6) ? 1 : 3;
        country = rng.NextBool(0.75) ? 2 : 1;
        card_present = 1;
        amount = rng.NextDouble(80, 900);
      } else {
        // Signature (b).
        velocity = rng.NextDouble(8, 25);
        hour = rng.NextBool(0.8) ? rng.NextDouble(0, 5) : hour;
        amount = rng.NextDouble(1, 25);
      }
    } else {
      // Benign lookalikes keep both signatures impure.
      if (rng.NextBool(0.02)) {
        country = 2;
        card_present = 1;
        amount = rng.NextDouble(50, 600);
      }
      if (rng.NextBool(0.01)) velocity = rng.NextDouble(7, 15);
    }
    dataset.set_numeric(row, 0, amount);
    dataset.set_numeric(row, 1, hour);
    dataset.set_numeric(row, 2, velocity);
    dataset.set_categorical(row, 3, merchant);
    dataset.set_categorical(row, 4, country);
    dataset.set_categorical(row, 5, card_present);
  }
  return dataset;
}

}  // namespace

int main() {
  const Dataset train = GenerateTransactions(120000, 11);
  const Dataset test = GenerateTransactions(60000, 12);
  const CategoryId fraud =
      train.schema().class_attr().FindCategory("fraud");
  std::printf("train: %zu transactions, %zu fraud (%.2f%%)\n",
              train.num_rows(), train.CountClass(fraud),
              100.0 * static_cast<double>(train.CountClass(fraud)) /
                  static_cast<double>(train.num_rows()));

  PnruleConfig config;
  // rp = 0.95 with a 5% support floor keeps the model compact; pushing
  // coverage to 0.99 would fill it with tiny low-accuracy disjuncts (the
  // trade-off the paper describes for the rp parameter).
  config.min_coverage_fraction = 0.95;
  config.min_support_fraction = 0.05;
  config.n_recall_lower_limit = 0.9;
  auto model = PnruleLearner(config).Train(train, fraud);
  if (!model.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }
  std::printf("\nlearned model:\n%s\n",
              model->Describe(train.schema()).c_str());

  // Default 0.5 threshold.
  const Confusion at_half = EvaluateClassifier(*model, test, fraud);
  std::printf("threshold 0.50: %s\n", at_half.ToString().c_str());

  // Sweep thresholds and pick the F2-optimal operating point (recall is
  // worth more than precision when missed fraud is expensive).
  const auto sweep = ThresholdSweep(*model, test, fraud);
  double best_threshold = 0.5;
  double best_f2 = 0.0;
  for (const auto& [threshold, confusion] : sweep) {
    const double f2 = confusion.f_beta(2.0);
    if (f2 > best_f2) {
      best_f2 = f2;
      best_threshold = threshold;
    }
  }
  PnruleClassifier tuned = *model;
  tuned.set_threshold(best_threshold);
  const Confusion at_best = EvaluateClassifier(tuned, test, fraud);
  std::printf("threshold %.2f (F2-optimal): %s\n", best_threshold,
              at_best.ToString().c_str());

  // Persist the scored dataset for downstream tooling.
  const std::string path = "/tmp/fraud_test_set.csv";
  if (WriteCsv(test, path).ok()) {
    std::printf("\nwrote the test split to %s\n", path.c_str());
  }
  return 0;
}
