// Network intrusion detection on the simulated KDD'99 data: learn binary
// signatures for the two rare attack classes the paper studies (probe,
// 0.83% of training; r2l, 0.23%) and compare the ordinary PNrule
// configuration with the paper's "very general P-rules" trick (P-rule
// length 1), which trades training-set purity for robustness against the
// shifted test distribution.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/intrusion_detection

#include <cstdio>

#include "eval/metrics.h"
#include "pnrule/multiclass.h"
#include "pnrule/pnrule.h"
#include "synth/kdd_sim.h"

namespace {

using namespace pnr;

void Report(const char* label, const PnruleClassifier& model,
            const Dataset& test, CategoryId target) {
  const Confusion c = EvaluateClassifier(model, test, target);
  std::printf("  %-28s R=%5.1f%%  P=%5.1f%%  F=%.4f   (%zu P-rules, %zu "
              "N-rules)\n",
              label, 100.0 * c.recall(), 100.0 * c.precision(),
              c.f_measure(), model.p_rules().size(), model.n_rules().size());
}

}  // namespace

int main() {
  // 1. Generate the train/test pair. The test split deliberately has a
  //    different class distribution and novel attack subclasses, mirroring
  //    the real KDDCUP'99 contest data.
  KddSimParams params;
  params.train_records = 80000;
  params.test_records = 40000;
  auto data = GenerateKddSim(params);
  if (!data.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 data.status().ToString().c_str());
    return 1;
  }
  const Dataset& train = data->train;
  const Dataset& test = data->test;

  for (const char* attack : {"probe", "r2l"}) {
    const CategoryId target =
        train.schema().class_attr().FindCategory(attack);
    std::printf("\n=== class %s: %zu/%zu training records (%.2f%%) ===\n",
                attack, train.CountClass(target), train.num_rows(),
                100.0 * static_cast<double>(train.CountClass(target)) /
                    static_cast<double>(train.num_rows()));

    // 2. Standard configuration.
    PnruleConfig standard;
    standard.min_coverage_fraction = 0.95;  // rp
    standard.n_recall_lower_limit = 0.9;    // rn
    auto model = PnruleLearner(standard).Train(train, target);
    if (!model.ok()) {
      std::fprintf(stderr, "training failed: %s\n",
                   model.status().ToString().c_str());
      return 1;
    }
    Report("PNrule", *model, test, target);

    // 3. The paper's section-4 variant: restrict P-rules to one condition
    //    so the first phase stays very general and the N-phase gets all the
    //    false positives at once.
    PnruleConfig general = standard;
    general.max_p_rule_length = 1;
    general.n_recall_lower_limit = 0.95;
    auto p1 = PnruleLearner(general).Train(train, target);
    if (!p1.ok()) {
      std::fprintf(stderr, "training failed: %s\n",
                   p1.status().ToString().c_str());
      return 1;
    }
    Report("PNrule (P-rule length 1)", *p1, test, target);

    // 4. Show the P1 model's rules: broad presence signatures plus the
    //    absence rules that restore precision.
    std::printf("\n%s", p1->Describe(train.schema()).c_str());
  }

  // 5. Full five-class triage: one binary PNrule model per class, highest
  //    score wins (the companion framework's multi-class setting).
  MultiClassPnruleLearner committee_learner;
  auto committee = committee_learner.Train(train);
  if (committee.ok()) {
    std::printf("\n=== five-class committee ===\n");
    std::printf("test accuracy: %.2f%% (majority-class baseline: dos)\n",
                100.0 * MultiClassAccuracy(*committee, test));
  }
  return 0;
}
